#!/usr/bin/env python3
"""Quickstart: simulate one SMT workload mix on the paper's baseline.

Builds the Table 1 system (8-wide SMT core, 64KB/512KB/4MB caches,
2-channel DDR SDRAM, DWarn fetch policy), runs the 2-thread MIX
workload (gzip + mcf), and prints per-thread performance plus the
memory-system statistics the paper reports.

Run:  python examples/quickstart.py
"""

from repro import Runner, SystemConfig, get_mix


def main() -> None:
    config = SystemConfig(
        instructions_per_thread=8000,  # paper uses 100M; scaled system
        warmup_instructions=2000,
        seed=7,
    )
    mix = get_mix("2-MIX")
    print(f"Running {mix.name}: {', '.join(mix.apps)}")
    print(f"System: {config.channels}-channel {config.dram_type.upper()}, "
          f"{config.mapping} mapping, {config.scheduler} scheduler, "
          f"{config.fetch_policy} fetch policy\n")

    runner = Runner()
    result = runner.run_mix(config, mix)

    print(result.core)
    print()

    stats = result.dram
    print(f"DRAM reads/writes:        {stats.reads} / {stats.writes}")
    print(f"Row-buffer hit rate:      {stats.row_hit_rate:.1%}")
    print(f"Avg read latency:         {stats.avg_read_latency:.0f} CPU cycles")
    print(f"Avg queueing delay:       {stats.avg_read_queue_delay:.0f} cycles")
    print(f"P(>=8 requests | busy):   "
          f"{stats.probability_outstanding_at_least(8):.1%}")

    hierarchy = result.hierarchy
    print(f"Cache hit rates:          L1D {hierarchy.l1d_hit_rate:.1%}, "
          f"L2 {hierarchy.l2_hit_rate:.1%}, L3 {hierarchy.l3_hit_rate:.1%}")

    speedup = runner.weighted_speedup(config, mix, result)
    print(f"\nWeighted speedup (vs single-thread baselines): {speedup:.3f}")
    print("(2.0 would be a perfect 2-thread SMT)")


if __name__ == "__main__":
    main()
