#!/usr/bin/env python3
"""Fetch-policy study: how SMT front ends cope with long-latency loads.

Reproduces the Section 5.1 experiment interactively: runs a workload
mix under every fetch policy (round-robin, ICOUNT, Fetch-Stall, DG,
DWarn) and shows how the policies that gate or deprioritize threads
with outstanding long-latency misses protect the shared issue queue.

Run:  python examples/fetch_policy_study.py [mix-name]
      (default mix: 8-MIX, where the effect is clearest)
"""

import sys

from repro import Runner, SystemConfig, get_mix
from repro.cpu.fetch import fetch_policy_names
from repro.experiments.report import format_bars


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "8-MIX"
    mix = get_mix(mix_name)
    print(f"Fetch policies on {mix.name}: {', '.join(mix.apps)}\n")

    runner = Runner()
    base_config = SystemConfig(instructions_per_thread=5000, seed=11)
    # Share single-thread baselines across policies: a fetch policy
    # cannot affect a run with only one thread.
    baseline = base_config.with_(fetch_policy="icount")
    from repro.metrics.speedup import weighted_speedup

    singles = [runner.single_ipc(baseline, app) for app in mix.apps]
    speedups = {}
    for policy in fetch_policy_names():
        config = base_config.with_(fetch_policy=policy)
        result = runner.run_mix(config, mix)
        speedups[policy] = weighted_speedup(result.ipcs, singles)
        slowest = min(result.core.threads, key=lambda t: t.ipc)
        print(f"{policy:<12} throughput={result.throughput:5.2f} IPC   "
              f"slowest thread: {slowest.app_name} ({slowest.ipc:.3f} IPC)")

    print()
    print(format_bars(speedups, title="Weighted speedup by fetch policy"))
    print("\nThe long-latency-aware policies (stall/dg/dwarn) should beat "
          "ICOUNT on memory-heavy 8-thread mixes (paper Figure 2).")


if __name__ == "__main__":
    main()
