#!/usr/bin/env python3
"""Trace workflow: record a synthetic stream, replay it, study memory.

1. Record 2 000 instructions of mcf into a trace file.
2. Replay the trace on the full SMT core (bit-identical workload).
3. Extract its memory accesses and sweep DRAM schedulers with the
   fast memory-only trace driver.

Run:  python examples/trace_workflow.py
"""

import io

from repro.common.rng import child_rng
from repro.experiments.config import SystemConfig
from repro.experiments.tracedriven import TraceDrivenMemory
from repro.workloads.generator import SyntheticStream
from repro.workloads.spec2000 import get_profile
from repro.workloads.trace import (
    TraceStream,
    extract_memory_trace,
    load_trace,
    record_trace,
)


def main() -> None:
    # 1. record
    buffer = io.StringIO()
    source = SyntheticStream(
        get_profile("mcf"), child_rng(3, "mcf"), thread_id=0, scale=8
    )
    count = record_trace(source, 2000, buffer)
    print(f"recorded {count} µops of mcf "
          f"({len(buffer.getvalue()) // 1024} KiB as text)")

    # 2. replay on the full core
    from repro.common.events import EventQueue
    from repro.cache.hierarchy import HierarchyParams, MemoryHierarchy
    from repro.cpu.core import CoreParams, SMTCore
    from repro.dram.system import MemorySystem

    stream = TraceStream.from_text(buffer.getvalue())
    evq = EventQueue()
    memory = MemorySystem.ddr(evq)
    hierarchy = MemoryHierarchy(HierarchyParams(scale=8), evq, memory)
    core = SMTCore(CoreParams(), evq, hierarchy, "dwarn",
                   [("mcf-trace", stream)])
    result = core.run(1500, warmup_instructions=300)
    print(f"replay on the core: IPC {result.threads[0].ipc:.3f}, "
          f"{memory.stats.reads} DRAM reads\n")

    # 3. memory-only scheduler sweep on the extracted access trace
    buffer.seek(0)
    uops, _ = load_trace(buffer)
    accesses = extract_memory_trace(uops)
    print(f"extracted {len(accesses)} memory accesses; "
          f"sweeping schedulers (memory-only driver):")
    for scheduler in ("fcfs", "hit-first", "request-based"):
        driver = TraceDrivenMemory(
            SystemConfig(scale=8, scheduler=scheduler), parallelism=8
        )
        run = driver.run([list(accesses)])
        print(f"  {scheduler:<14} {run.cycles:>7} cycles, "
              f"row-hit {run.dram.row_hit_rate:.0%}, "
              f"avg load latency {run.avg_load_latency:.0f}")


if __name__ == "__main__":
    main()
