#!/usr/bin/env python3
"""Define a custom application profile and co-schedule it with SPEC apps.

Shows the workload-model API: build an :class:`AppProfile` from
scratch (here: a synthetic in-memory key-value store -- pointer-heavy,
DRAM-resident, bursty), then run it next to a compute-bound partner on
a custom memory configuration, bypassing the Table 2 mixes entirely.

Run:  python examples/custom_workload.py
"""

from repro import Runner, SystemConfig
from repro.workloads.profile import AppProfile, Region
from repro.workloads.spec2000 import PROFILES


def make_kvstore_profile() -> AppProfile:
    """A hash-table-style service: random probes over a huge heap."""
    return AppProfile(
        name="kvstore",
        category="MEM",
        mem_frac=0.40,
        store_frac=0.30,
        branch_frac=0.12,
        mispredict_rate=0.04,
        fp_frac=0.0,
        dep_mean=4.0,
        ptr_chase=0.30,   # bucket chains
        cluster=16.0,     # requests arrive in batches
        regions=(
            # hot metadata: fits L1
            Region(size_lines=256, weight=0.45, kind="random"),
            # index: L2/L3 resident
            Region(size_lines=4096, weight=0.25, kind="random", repeats=2),
            Region(size_lines=6144, weight=0.20, kind="random", repeats=2),
            # the heap: DRAM-resident, random probes with a short
            # sequential tail (value read after the key probe)
            Region(size_lines=786432, weight=0.10, kind="random", burst=2),
        ),
    )


def main() -> None:
    kvstore = make_kvstore_profile()
    # Register so the runner can resolve it by name like any SPEC app.
    PROFILES[kvstore.name] = kvstore

    config = SystemConfig(
        channels=4,
        scheduler="request-based",
        instructions_per_thread=6000,
        seed=23,
    )
    apps = ["kvstore", "gzip", "kvstore", "eon"]
    print(f"Running custom mix: {', '.join(apps)}")
    print(f"on a 4-channel DDR system with the {config.scheduler} "
          f"scheduler\n")

    runner = Runner()
    result = runner.run_mix(config, apps)
    print(result.core)

    stats = result.dram
    print(f"\nrow-buffer hit rate: {stats.row_hit_rate:.1%}, "
          f"avg read latency {stats.avg_read_latency:.0f} cycles")
    for t in result.core.threads:
        print(f"  {t.app_name:<8} {t.dram_per_100_instructions:5.2f} DRAM "
              f"accesses / 100 instructions")
    print(f"\nweighted speedup: "
          f"{runner.weighted_speedup(config, apps, result):.3f} "
          f"(ideal = {len(apps)})")


if __name__ == "__main__":
    main()
