#!/usr/bin/env python3
"""Thread-aware DRAM access scheduling (the paper's contribution).

Runs a MEM workload mix under all six access schedulers and breaks the
result down per thread: average DRAM read latency and IPC, showing how
the request-based scheme rescues the serialized, low-MLP thread (mcf)
from waiting behind the flooding thread's bursts.

Run:  python examples/thread_aware_scheduling.py [mix-name]
      (default 4-MEM)
"""

import sys

from repro import Runner, SystemConfig, get_mix
from repro.dram.schedulers import scheduler_names


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "4-MEM"
    mix = get_mix(mix_name)
    runner = Runner()
    base = SystemConfig(instructions_per_thread=6000, seed=3)

    print(f"Access schedulers on {mix.name}: {', '.join(mix.apps)}\n")
    baseline_ws = None
    for scheduler in scheduler_names():
        config = base.with_(scheduler=scheduler)
        result = runner.run_mix(config, mix)
        ws = runner.weighted_speedup(config, mix, result)
        if baseline_ws is None:
            baseline_ws = ws
        gain = 100.0 * (ws / baseline_ws - 1.0)
        stats = result.dram
        per_thread = "  ".join(
            f"{t.app_name}:{stats.avg_read_latency_for(t.thread_id):.0f}cy"
            for t in result.core.threads
        )
        print(f"{scheduler:<14} WS={ws:.3f} ({gain:+5.1f}% vs fcfs)  "
              f"row-hit={stats.row_hit_rate:.1%}")
        print(f"{'':<14} per-thread read latency: {per_thread}")

    print("\nThe thread-aware schemes (request/rob/iq-based) should give "
          "the largest gains on MEM mixes (paper Figure 10, up to ~30%).")


if __name__ == "__main__":
    main()
