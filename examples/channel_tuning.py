#!/usr/bin/env python3
"""Memory-channel tuning: counts and ganging (paper Sections 5.3).

Sweeps the number of DDR channels (2/4/8) and every ganging
organization for a memory-intensive mix, reproducing the paper's
second headline finding: independent channels can beat ganged
organizations by large margins because serving many requests
concurrently matters more than shortening one transfer.

Run:  python examples/channel_tuning.py [mix-name]   (default 4-MEM)
"""

import sys

from repro import Runner, SystemConfig, get_mix
from repro.experiments.report import format_bars


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "4-MEM"
    mix = get_mix(mix_name)
    runner = Runner()
    base = SystemConfig(instructions_per_thread=5000, seed=5)

    print(f"Channel scaling on {mix.name}: {', '.join(mix.apps)}\n")
    scaling = {}
    for channels in (2, 4, 8):
        config = base.with_(channels=channels, gang=1)
        scaling[f"{channels} channels"] = runner.weighted_speedup(config, mix)
    print(format_bars(scaling, title="Weighted speedup vs channel count"))

    print("\nGanging organizations (xC-yG = x physical channels, "
          "y ganged per logical):\n")
    ganging = {}
    for channels, gang in ((2, 1), (2, 2), (4, 1), (4, 2), (4, 4),
                           (8, 1), (8, 2), (8, 4)):
        config = base.with_(channels=channels, gang=gang)
        label = config.organization_name()
        ganging[label] = runner.weighted_speedup(config, mix)
    print(format_bars(ganging, title="Weighted speedup by organization"))
    print("\nIndependent (1G) organizations should win at every channel "
          "count for memory-bound mixes (paper Figure 7).")


if __name__ == "__main__":
    main()
