#!/usr/bin/env python3
"""Command-level DRAM study: watch the controller issue DRAM commands.

Runs the same access pattern through the request-level and
command-level controller models, then prints the command breakdown
(PRECHARGE / ACTIVATE / READ / WRITE) and timing agreement -- a window
into what the row-buffer optimizations of the paper actually do at
the command level.

Run:  python examples/command_level_dram.py
"""

from repro.common.events import EventQueue
from repro.dram.command_controller import Command
from repro.dram.system import MemorySystem


def drive(system, evq):
    """A small mixed pattern: hits, conflicts, and a write burst."""
    done = {}
    lines_per_page = system.geometry.lines_per_page
    banks = system.geometry.banks_per_logical_channel
    channels = system.geometry.logical_channels
    conflict_stride = lines_per_page * banks * channels

    for i in range(4):                       # page-local reads (hits)
        system.read(i, 0, callback=lambda t, r: done.__setitem__(r.req_id, t))
    for i in range(1, 4):                    # same-bank conflicts
        system.read(i * conflict_stride, 1,
                    callback=lambda t, r: done.__setitem__(r.req_id, t))
    for i in range(6):                       # write-backs
        system.write(10_000 + i * conflict_stride, 0)
    evq.run_all()
    return done


def main() -> None:
    for model in ("request", "command"):
        evq = EventQueue()
        system = MemorySystem.ddr(
            evq, channels=2, scheduler="hit-first", controller_model=model
        )
        done = drive(system, evq)
        stats = system.finish()
        print(f"== {model}-level controller ==")
        print(f"  served {stats.reads} reads / {stats.writes} writes, "
              f"row-buffer hit rate {stats.row_hit_rate:.0%}, "
              f"avg read latency {stats.avg_read_latency:.0f} cycles")
        if model == "command":
            for channel in system.channels:
                commands = {
                    c.name: n for c, n in channel.commands_issued.items() if n
                }
                print(f"  channel {channel.channel_id} commands: {commands}")
        print()

    print("The command model spells out why conflicts are expensive: each "
          "one costs\nPRECHARGE + ACTIVATE + READ where a row hit is a "
          "single READ (paper Section 2).")


if __name__ == "__main__":
    main()
