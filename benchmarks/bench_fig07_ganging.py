"""Figure 7: clustering physical channels into logical ones.

Weighted speedup of every xC-yG organization relative to the
independent (xC-1G) organization with the same channel count.
Expected shape (paper): ganging loses performance on memory-bound
mixes -- e.g. 2C-2G loses ~34% on 2-MEM and 8C-4G reaches only ~53%
of 8C-1G for 4-MEM.  Independent channels win throughout.
"""

from conftest import run_and_render
from repro.experiments.figures import figure7


def test_fig07_ganging(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, figure7, config=bench_config, runner=bench_runner
    )
    labels = result.headers[1:]
    rows = {row[0]: row for row in result.rows}
    col = {label: i + 1 for i, label in enumerate(labels)}
    # Ganging both channels of a 2-channel system hurts MEM mixes.
    assert rows["2-MEM"][col["2C-2G"]] < 1.0
    # Fully ganged 8-channel system clearly trails independent.
    assert rows["4-MEM"][col["8C-4G"]] < rows["4-MEM"][col["8C-1G"]]
