"""Figure 3: performance loss due to DRAM accesses.

Weighted speedup on the real 2-channel system as a percentage of the
infinite-L3 (ICOUNT) reference.  Expected shape: ILP mixes lose almost
nothing; MEM mixes lose most of their performance; the DWarn policy
recovers more than ICOUNT on the 8-thread mixes.
"""

from conftest import run_and_render
from repro.experiments.figures import figure3


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_fig03_dram_loss(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, figure3, config=bench_config, runner=bench_runner
    )
    rows = {row[0]: row for row in result.rows}
    # ILP mixes retain most of the reference performance...
    assert _pct(rows["2-ILP"][2]) > 80.0
    # ...while MEM mixes lose most of it (paper: 2-MEM retains ~27%).
    assert _pct(rows["2-MEM"][2]) < 70.0
    assert _pct(rows["4-MEM"][2]) < 70.0
