"""Accuracy and speedup of the sampled engine at a realistic budget.

The exact-engine bench (``bench_engine_speedup.py``) measures at a
tiny budget where cycle-skipping already pays; sampling only pays once
runs are long enough that fast-forward regions dominate detailed
windows, so this bench runs at a much larger budget (default 100k
instructions per thread at the calibration scale 8) and reports, per mix:

* the *aggregate CPI relative error* of the sampled estimate against a
  full reference run — the headline accuracy number of the bounded-
  error contract (``repro engine-diff --candidate sampled``), and
* the wall-clock *speedup* of the sampled run over that reference run.

Error numbers are fully deterministic (both engines are deterministic
simulations of the same seeded workload); only the speedup carries
machine noise.  The committed ``BENCH_sampling.json`` therefore pins
errors exactly and the regression test floors speedup loosely.

The accuracy regime is thread-count dependent (see
docs/performance.md): per-thread window noise averages out across
threads, so the 8-thread memory-bound mix — exactly where sampling is
worth using — meets the 2% bound, while 2-thread mixes do not.  The
floors below gate the headline mix only; the other mixes are recorded
as honest context.

Run as a pytest (marked ``slow``, ~10 minutes — one reference run per
mix) or directly to regenerate the committed snapshot::

    PYTHONPATH=src python benchmarks/bench_sampling.py
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine.sampled import SamplingParams
from repro.experiments.config import SystemConfig
from repro.experiments.runner import run_mix
from repro.workloads.mixes import MIXES

#: The headline mix (floored below) plus context mixes (recorded only).
_HEADLINE_MIX = "8-MEM"
_CONTEXT_MIXES = ("4-MEM",)

#: The sampled engine's accuracy bound, as enforced by the CI lane.
_CPI_ERROR_BOUND = 0.02
#: Wall-clock floor for the headline mix, well under the measured
#: ratio (see BENCH_sampling.json) so machine noise cannot flake CI.
_SPEEDUP_FLOOR = 6.0


def _budget() -> int:
    return int(os.environ.get("REPRO_BENCH_SAMPLING_INSTRUCTIONS", "100000"))


def _config(budget: int, engine: str) -> SystemConfig:
    return SystemConfig(
        scale=8,  # the calibration scale (see conftest.py)
        instructions_per_thread=budget,
        warmup_instructions=budget // 4,
        seed=2005,
        engine=engine,
    )


def _measure(mix: str, budget: int) -> dict:
    apps = MIXES[mix].apps
    t0 = time.perf_counter()
    ref = run_mix(_config(budget, "reference"), apps)
    ref_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    est = run_mix(_config(budget, "sampled"), apps)
    sampled_s = time.perf_counter() - t0
    thread_errs = [
        abs(e.cycles / e.committed - r.cycles / r.committed)
        / (r.cycles / r.committed)
        for e, r in zip(est.core.threads, ref.core.threads)
    ]
    return {
        "ref_s": round(ref_s, 3),
        "sampled_s": round(sampled_s, 3),
        "speedup": round(ref_s / sampled_s, 3),
        "cpi_rel_err": round(
            abs(est.core.cycles - ref.core.cycles) / ref.core.cycles, 5
        ),
        "max_thread_cpi_rel_err": round(max(thread_errs), 5),
        "windows": est.core.extra["sampling"]["windows"],
        "measured_fraction": round(
            est.core.extra["sampling"]["measured_fraction"], 4
        ),
    }


def run_bench(budget: int | None = None, headline_only: bool = False) -> dict:
    budget = budget or _budget()
    mixes = (_HEADLINE_MIX,) if headline_only else (
        _HEADLINE_MIX, *_CONTEXT_MIXES
    )
    p = SamplingParams()
    return {
        "budget_instructions": budget,
        "scale": 8,
        "engine_pair": ["reference", "sampled"],
        "sampling": {
            "detail_instructions": p.detail_instructions,
            "ff_instructions": p.ff_instructions,
            "window_warmup": p.window_warmup,
            "gap_smoothing": p.gap_smoothing,
        },
        "timer": "perf_counter, single shot (errors are deterministic)",
        "cases": {f"mix_{mix}": _measure(mix, budget) for mix in mixes},
    }


def _report(stats: dict) -> str:
    lines = [
        f"sampled engine @ {stats['budget_instructions']} "
        "instructions/thread:"
    ]
    for name, c in stats["cases"].items():
        lines.append(
            f"  {name:<10} ref {c['ref_s']:6.1f}s   "
            f"sampled {c['sampled_s']:6.1f}s   x{c['speedup']:5.1f}   "
            f"cpi err {c['cpi_rel_err'] * 100:5.2f}%   "
            f"({c['windows']} windows)"
        )
    return "\n".join(lines)


@pytest.mark.slow
def test_sampled_accuracy_and_speedup():
    stats = run_bench(headline_only=True)
    print()
    print(_report(stats))
    headline = stats["cases"][f"mix_{_HEADLINE_MIX}"]
    # Deterministic: this is the bounded-error contract, not a noisy
    # measurement — any drift means the estimator itself changed.
    assert headline["cpi_rel_err"] <= _CPI_ERROR_BOUND, headline
    assert headline["speedup"] > _SPEEDUP_FLOOR, headline


if __name__ == "__main__":
    stats = run_bench()
    print(_report(stats))
    out = Path(__file__).resolve().parent.parent / "BENCH_sampling.json"
    out.write_text(json.dumps(stats, indent=2) + "\n")
    print(f"wrote {out}")
