"""Ablation: scheduler x mapping interaction.

The hit-first scheduler exploits the locality the XOR mapping
preserves; this ablation checks how the two compose (paper Sections
5.4/5.5 treat them separately).
"""

from conftest import run_and_render
from repro.experiments.ablations import scheduler_mapping_ablation


def test_abl_scheduler_mapping(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, scheduler_mapping_ablation, config=bench_config,
        runner=bench_runner, mixes=("4-MEM",),
    )
    assert len(result.rows[0]) == 5  # mix + 4 combinations
