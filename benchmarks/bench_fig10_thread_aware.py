"""Figure 10: thread-aware DRAM access scheduling (the contribution).

Weighted speedup of FCFS, hit-first, age-based, and the paper's three
thread-aware schemes (request-, ROB-, IQ-based), normalized to FCFS.
Expected shape (paper): the single-thread-era policies gain a few
percent; the thread-aware schemes gain the most on MEM mixes (up to
~30%), and little on MIX mixes.
"""

from conftest import run_and_render
from repro.experiments.figures import figure10


def test_fig10_thread_aware(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, figure10, config=bench_config, runner=bench_runner
    )
    labels = result.headers[1:]
    rows = {row[0]: row for row in result.rows}
    col = {label: i + 1 for i, label in enumerate(labels)}
    # Thread-aware scheduling helps at least one MEM mix noticeably.
    best_gain = max(
        rows[mix][col[s]]
        for mix in ("2-MEM", "4-MEM", "8-MEM")
        for s in ("request-based", "rob-based", "iq-based")
    )
    assert best_gain > 1.03
    # The request-based scheme beats plain FCFS on 4-MEM.
    assert rows["4-MEM"][col["request-based"]] > 1.0
