"""Figure 9: row-buffer miss rates, page vs XOR mapping, Direct Rambus.

Expected shape (paper): with many independent banks (32/chip) the XOR
mapping has far more freedom to spread conflicting accesses and cuts
miss rates substantially (48.8% -> 32.2% for 4-MEM), more effectively
than on the bank-poor DDR system of Figure 8.
"""

from conftest import run_and_render
from repro.experiments.figures import figure9


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_fig09_mapping_rdram(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, figure9, config=bench_config, runner=bench_runner
    )
    rows = {row[0]: row for row in result.rows}
    # XOR should not hurt, and should help at least one MEM mix.
    improvements = [
        _pct(rows[m][1]) - _pct(rows[m][2])
        for m in ("2-MEM", "4-MEM", "8-MEM")
    ]
    assert max(improvements) > 0.0
    # Many banks -> lower absolute miss rates than the paper's DDR
    # case for the same mixes (cross-check against bank count).
    assert _pct(rows["4-MEM"][2]) < 80.0
