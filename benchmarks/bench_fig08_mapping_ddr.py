"""Figure 8: row-buffer miss rates, page vs XOR mapping, DDR SDRAM.

Expected shape (paper): miss rates rise with the number of threads
(more interleaved access streams); the XOR mapping reduces them
moderately (e.g. 40.1% -> 33.4% for 2-MIX), but rates stay high for
MEM mixes because the DDR system has only 8 independent banks.
"""

from conftest import run_and_render
from repro.experiments.figures import figure8


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_fig08_mapping_ddr(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, figure8, config=bench_config, runner=bench_runner
    )
    rows = {row[0]: row for row in result.rows}
    # Miss rates rise with thread count under the page mapping.
    assert _pct(rows["8-MEM"][1]) > _pct(rows["2-MEM"][1])
    # MEM mixes keep substantial miss rates even under XOR (few banks).
    assert _pct(rows["8-MEM"][2]) > 30.0
