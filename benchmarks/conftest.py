"""Shared fixtures for the benchmark harness.

Every ``bench_fig*.py`` regenerates one figure of the paper at a
reduced instruction budget (the paper uses 100M instructions per
thread on a compiled simulator; the pure-Python reproduction uses the
scaled system described in DESIGN.md).  Budgets are chosen so the
whole harness completes in minutes while preserving the figures'
shapes.

Set ``REPRO_BENCH_INSTRUCTIONS`` to raise the budget for
higher-fidelity runs, e.g.::

    REPRO_BENCH_INSTRUCTIONS=20000 pytest benchmarks/ --benchmark-only -s

``REPRO_BENCH_ENGINE`` selects the execution engine the figures run
under (default: the exact ``fast`` engine).  Every committed ``BENCH_*``
snapshot records the engine(s) it was measured with: numbers taken
under different engines are not comparable — exact engines differ only
in wall time, but ``sampled`` produces estimates — so regression
tooling must refuse to diff snapshots whose engine labels disagree.
"""

import os

import pytest

from repro.engine import ENGINE_NAMES
from repro.experiments.config import SystemConfig
from repro.experiments.runner import Runner


def _budget() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "2500"))


def bench_engine() -> str:
    """The engine label every benchmark in this session measures under."""
    engine = os.environ.get("REPRO_BENCH_ENGINE", "fast")
    if engine not in ENGINE_NAMES:
        raise ValueError(
            f"REPRO_BENCH_ENGINE={engine!r}: choose from "
            f"{', '.join(sorted(ENGINE_NAMES))}"
        )
    return engine


@pytest.fixture(scope="session")
def bench_config() -> SystemConfig:
    return SystemConfig(
        scale=8,  # the calibration scale of the workload profiles
        instructions_per_thread=_budget(),
        warmup_instructions=max(200, _budget() // 4),
        seed=2005,  # HPCA 2005
        engine=bench_engine(),
    )


@pytest.fixture(scope="session")
def bench_runner() -> Runner:
    """One runner for the whole session: single-thread baselines are
    cached across figures that share a configuration."""
    return Runner()


def run_and_render(benchmark, fn, **kwargs):
    """Benchmark one figure driver exactly once and print its table."""
    result = benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    return result
