"""Shared fixtures for the benchmark harness.

Every ``bench_fig*.py`` regenerates one figure of the paper at a
reduced instruction budget (the paper uses 100M instructions per
thread on a compiled simulator; the pure-Python reproduction uses the
scaled system described in DESIGN.md).  Budgets are chosen so the
whole harness completes in minutes while preserving the figures'
shapes.

Set ``REPRO_BENCH_INSTRUCTIONS`` to raise the budget for
higher-fidelity runs, e.g.::

    REPRO_BENCH_INSTRUCTIONS=20000 pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest

from repro.experiments.config import SystemConfig
from repro.experiments.runner import Runner


def _budget() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "2500"))


@pytest.fixture(scope="session")
def bench_config() -> SystemConfig:
    return SystemConfig(
        scale=8,  # the calibration scale of the workload profiles
        instructions_per_thread=_budget(),
        warmup_instructions=max(200, _budget() // 4),
        seed=2005,  # HPCA 2005
    )


@pytest.fixture(scope="session")
def bench_runner() -> Runner:
    """One runner for the whole session: single-thread baselines are
    cached across figures that share a configuration."""
    return Runner()


def run_and_render(benchmark, fn, **kwargs):
    """Benchmark one figure driver exactly once and print its table."""
    result = benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    return result
