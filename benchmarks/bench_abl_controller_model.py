"""Ablation: request-level vs command-level DRAM controller.

The request-level model (default) is calibrated and fast; the
command-level model tracks explicit PRECHARGE/ACTIVATE/READ/WRITE
commands with tRAS/tRRD/command-bus constraints.  This ablation
verifies the two models agree on the experiment-level outcomes
(weighted speedup, row-buffer behaviour) within a modest band.
"""

from repro.workloads.mixes import get_mix


def test_abl_controller_model(benchmark, bench_config, bench_runner):
    mix = get_mix("2-MEM")

    def compare():
        out = {}
        for model in ("request", "command"):
            cfg = bench_config.with_(controller_model=model)
            result = bench_runner.run_mix(cfg, mix)
            out[model] = (
                bench_runner.weighted_speedup(cfg, mix, result),
                result.row_buffer_miss_rate,
                result.dram.avg_read_latency,
            )
        return out

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    for model, (ws, miss, lat) in out.items():
        print(f"{model:<8} WS={ws:.3f} row-miss={miss:.1%} "
              f"avg-read-lat={lat:.0f}cy")
    ws_request, ws_command = out["request"][0], out["command"][0]
    assert ws_command == __import__("pytest").approx(ws_request, rel=0.35)
