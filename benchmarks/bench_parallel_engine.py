"""Serial vs parallel experiment engine on a figure-scale sweep.

Runs the Figure 2 workload set (fetch policies x mixes, plus the
shared single-thread baselines) three ways and reports wall clock and
cache behaviour:

1. serial ``Runner`` (the reference path),
2. ``ParallelRunner(jobs=N)`` with a cold persistent cache,
3. the same sweep again with the warm cache (zero simulations).

On a multi-core machine (2) should approach ``serial / N`` for the
simulation-bound part; (3) should be near-instant with a 100% hit
rate regardless of core count.  Runnable as a pytest (marked ``slow``,
excluded from tier-1) or directly::

    PYTHONPATH=src python benchmarks/bench_parallel_engine.py [jobs]
"""

import os
import shutil
import sys
import tempfile
import time

import pytest

from repro.experiments.config import SystemConfig
from repro.experiments.figures import figure2
from repro.experiments.parallel import ParallelRunner, ResultCache
from repro.experiments.runner import Runner

#: Small figure-scale budget: big enough that pool overhead is noise,
#: small enough that the whole bench stays in tens of seconds.
_MIXES = ("2-MIX", "2-MEM", "4-MIX", "4-MEM")


def _config(instructions: int) -> SystemConfig:
    return SystemConfig(
        scale=8,
        instructions_per_thread=instructions,
        warmup_instructions=max(200, instructions // 4),
        seed=2005,
    )


def run_bench(jobs: int = 4, instructions: int = 1200) -> dict:
    config = _config(instructions)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        t0 = time.perf_counter()
        serial = figure2(config=config, runner=Runner(), mixes=list(_MIXES))
        t1 = time.perf_counter()
        cold_cache = ResultCache(cache_dir)
        parallel = figure2(
            config=config,
            runner=ParallelRunner(jobs=jobs, cache=cold_cache),
            mixes=list(_MIXES),
        )
        t2 = time.perf_counter()
        warm_cache = ResultCache(cache_dir)
        warm = figure2(
            config=config,
            runner=ParallelRunner(jobs=jobs, cache=warm_cache),
            mixes=list(_MIXES),
        )
        t3 = time.perf_counter()
        assert serial.rows == parallel.rows == warm.rows
        total = warm_cache.hits + warm_cache.misses
        return {
            "jobs": jobs,
            "serial_s": t1 - t0,
            "parallel_s": t2 - t1,
            "warm_s": t3 - t2,
            "speedup": (t1 - t0) / max(1e-9, t2 - t1),
            "warm_hit_rate": warm_cache.hits / total if total else 0.0,
            "warm_misses": warm_cache.misses,
            "cached_entries": len(warm_cache),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def _report(stats: dict) -> str:
    return (
        f"figure2 sweep ({len(_MIXES)} mixes): "
        f"serial {stats['serial_s']:.1f}s, "
        f"parallel(jobs={stats['jobs']}) {stats['parallel_s']:.1f}s "
        f"({stats['speedup']:.2f}x), "
        f"warm-cache rerun {stats['warm_s']:.2f}s "
        f"(hit rate {stats['warm_hit_rate']:.0%}, "
        f"{stats['warm_misses']} misses, "
        f"{stats['cached_entries']} entries)"
    )


@pytest.mark.slow
def test_parallel_engine_speedup():
    jobs = min(4, os.cpu_count() or 1)
    stats = run_bench(jobs=jobs)
    print()
    print(_report(stats))
    # Identical rows are asserted inside run_bench; the warm rerun must
    # be pure cache (zero simulations)...
    assert stats["warm_misses"] == 0
    assert stats["warm_hit_rate"] == 1.0
    # ... and on a 4+-core machine the fan-out should win clearly.
    if jobs >= 4:
        assert stats["speedup"] >= 2.0


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else (os.cpu_count() or 1)
    print(_report(run_bench(jobs=n)))
