"""Figure 6: performance as the number of memory channels grows.

Weighted speedup with 2/4/8 independent DDR channels, normalized to
the 2-channel system.  Expected shape (paper): MEM mixes gain hugely
from quadrupling channels (73.7%-153.8%); MIX mixes gain modestly;
ILP mixes are insensitive.
"""

from conftest import run_and_render
from repro.experiments.figures import figure6


def test_fig06_channels(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, figure6, config=bench_config, runner=bench_runner
    )
    rows = {row[0]: row for row in result.rows}
    # MEM mixes gain substantially from 2 -> 8 channels...
    assert rows["4-MEM"][3] > 1.25
    assert rows["8-MEM"][3] > 1.25
    # ...ILP mixes do not.
    assert rows["2-ILP"][3] < 1.15
    # Channel scaling helps MEM more than ILP.
    assert rows["4-MEM"][3] > rows["4-ILP"][3]
