"""Latency and throughput of the simulation service's HTTP surface.

Measures the warm path (``POST /jobs`` answered from the store/LRU
without waking the scheduler), the raw payload download, and the
miss->enqueue path against a live in-process server, plus request
throughput under concurrent clients.  The committed
``BENCH_service.json`` snapshot is machine-normalized: raw
microseconds are recorded for provenance only, the *ratios* are the
numbers that transfer across machines:

- ``*_vs_healthz`` — each endpoint's round trip relative to the
  cheapest possible request (``GET /healthz``), cancelling the
  machine's socket/HTTP overhead.
- ``warm_vs_simulation`` — the headline: how much faster a warm hit
  is than actually running the (tiny) simulation it replaces.
- ``concurrency_speedup`` — warm-submit throughput with concurrent
  clients relative to one serial client.  Clients and server share
  one Python process (and one GIL) in this harness, so the ratio
  cannot exceed ~1; what it guards is that concurrent clients do not
  *collapse* throughput (a contended lock on the warm path would).

Latencies are wall-clock (the request crosses threads, so process
time would under-count) summarized by the median of many samples;
the healthz normalization absorbs constant per-machine cost.

Run as a pytest (marked ``slow``) for the regression floors, or
directly to regenerate the committed snapshot::

    PYTHONPATH=src python benchmarks/bench_service_latency.py
"""

import json
import statistics
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.config import SystemConfig
from repro.experiments.runner import run_mix
from repro.service.api import make_server
from repro.service.client import ServiceClient
from repro.service.scheduler import CampaignScheduler
from repro.service.store import ResultStore

_SAMPLES = 200
_THREADS = 4
_APPS = ("gzip",)


def _config(seed: int = 2005) -> SystemConfig:
    # The bench-harness scale and budget (see conftest.py): large
    # enough that the simulation a warm hit replaces is representative,
    # small enough that seeding the store takes well under a second.
    return SystemConfig(
        scale=8,
        instructions_per_thread=2500,
        warmup_instructions=600,
        seed=seed,
    )


def _median_us(fn, samples: int) -> float:
    times = []
    for _ in range(samples):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e6)
    return statistics.median(times)


def _throughput(fn, threads: int, per_thread: int) -> float:
    """Warm requests per second with ``threads`` concurrent clients."""
    barrier = threading.Barrier(threads + 1)

    def client():
        barrier.wait()
        for _ in range(per_thread):
            fn()

    pool = [threading.Thread(target=client) for _ in range(threads)]
    for t in pool:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in pool:
        t.join()
    return threads * per_thread / (time.perf_counter() - t0)


def run_bench(samples: int = _SAMPLES, threads: int = _THREADS) -> dict:
    config = _config()
    t0 = time.process_time()
    result = run_mix(config, _APPS)
    simulation_s = time.process_time() - t0

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp))
        store.put(config, _APPS, result)
        # The scheduler is deliberately never started: every measured
        # request must be answered by the API layer alone, and a miss
        # must cost exactly one enqueue (no simulation behind it).
        scheduler = CampaignScheduler(store)
        server = make_server(scheduler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(url=server.url)
        key = store.key_for(config, _APPS)
        try:
            healthz_us = _median_us(client.health, samples)
            warm_us = _median_us(
                lambda: client.submit(config, _APPS), samples
            )
            payload_us = _median_us(
                lambda: client.fetch_bytes(key), samples
            )
            misses = iter(range(1000, 1000 + samples))
            miss_us = _median_us(
                lambda: client.submit(_config(seed=next(misses)), _APPS),
                samples,
            )
            serial_rps = samples / _timed(
                lambda: [client.submit(config, _APPS)
                         for _ in range(samples)]
            )
            # Each thread issues the full sample count: too few
            # requests per thread and handler-thread churn dominates
            # the measurement instead of steady-state throughput.
            concurrent_rps = _throughput(
                lambda: client.submit(config, _APPS), threads, samples
            )
        finally:
            server.shutdown()
            server.server_close()
            scheduler.stop()
            thread.join(5)

    return {
        "samples": samples,
        "threads": threads,
        # Engine label: the simulation_s baseline (and hence the
        # warm_vs_simulation ratio) is engine-dependent; snapshots
        # taken under different engines must not be diffed.
        "engine": config.engine,
        "timer": "perf_counter, median of N; healthz-normalized ratios",
        "raw": {
            "healthz_us": round(healthz_us, 1),
            "warm_submit_us": round(warm_us, 1),
            "payload_fetch_us": round(payload_us, 1),
            "miss_enqueue_us": round(miss_us, 1),
            "simulation_s": round(simulation_s, 3),
            "serial_rps": round(serial_rps, 1),
            "concurrent_rps": round(concurrent_rps, 1),
        },
        "ratios": {
            "warm_vs_healthz": round(warm_us / healthz_us, 2),
            "payload_vs_healthz": round(payload_us / healthz_us, 2),
            "miss_vs_healthz": round(miss_us / healthz_us, 2),
            "warm_vs_simulation": round(simulation_s * 1e6 / warm_us, 1),
            "concurrency_speedup": round(concurrent_rps / serial_rps, 2),
        },
    }


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _report(stats: dict) -> str:
    raw, ratios = stats["raw"], stats["ratios"]
    return "\n".join([
        f"service latency (median of {stats['samples']}):",
        f"  healthz      {raw['healthz_us']:8.0f}us   (normalizer)",
        f"  warm submit  {raw['warm_submit_us']:8.0f}us   "
        f"x{ratios['warm_vs_healthz']:.1f} healthz, "
        f"x{ratios['warm_vs_simulation']:.0f} faster than simulating",
        f"  payload      {raw['payload_fetch_us']:8.0f}us   "
        f"x{ratios['payload_vs_healthz']:.1f} healthz",
        f"  miss enqueue {raw['miss_enqueue_us']:8.0f}us   "
        f"x{ratios['miss_vs_healthz']:.1f} healthz",
        f"  throughput   {raw['serial_rps']:8.0f} rps serial, "
        f"{raw['concurrent_rps']:.0f} rps x{stats['threads']} clients "
        f"(x{ratios['concurrency_speedup']:.2f})",
    ])


@pytest.mark.slow
def test_service_latency():
    stats = run_bench(samples=60, threads=4)
    print()
    print(_report(stats))
    ratios = stats["ratios"]
    # Regression floors, deliberately loose (see BENCH_service.json for
    # the measured values) so CI machine noise cannot flake the lane:
    # the warm path must stay within an order of magnitude of a bare
    # healthz round trip and must dwarf the simulation it replaces.
    assert ratios["warm_vs_healthz"] < 10
    assert ratios["payload_vs_healthz"] < 10
    assert ratios["miss_vs_healthz"] < 25  # fsync'd enqueue is pricier
    assert ratios["warm_vs_simulation"] > 10
    assert ratios["concurrency_speedup"] > 0.5  # no warm-path contention


if __name__ == "__main__":
    stats = run_bench()
    print(_report(stats))
    out = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    out.write_text(json.dumps(stats, indent=2) + "\n")
    print(f"wrote {out}")
