"""Figure 1: CPI breakdown of the 26 SPEC2000 applications.

Regenerates the paper's Figure 1: each application runs
single-threaded on the real system and on systems with perfect
L3/L2/L1 caches; the CPI differences attribute time to the processor,
L2, L3, and main memory.  Expected shape: the MEM applications
(facerec ... mcf) dominate the right of the figure, with mcf's CPI_mem
the largest by a wide margin.
"""

from conftest import run_and_render
from repro.experiments.figures import figure1


def test_fig01_cpi_breakdown(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, figure1, config=bench_config, runner=bench_runner
    )
    by_app = {row[0]: row for row in result.rows}
    # Paper shape: mcf is the most memory-bound application.
    assert result.rows[-1][0] == "mcf"
    # MEM apps have larger CPI_mem than ILP apps.
    assert by_app["swim"][4] > by_app["gzip"][4]
    assert by_app["ammp"][4] > by_app["eon"][4]
