"""Figure 4: outstanding memory requests while the DRAM system is busy.

Time-weighted distribution of the number of outstanding requests.
Expected shape (paper): MEM workloads concentrate at 8+ outstanding
requests (95.3% above 8 for 4-MEM); ILP workloads sit at 1-2; the
probability of large request groups grows with the thread count.
"""

from conftest import run_and_render
from repro.experiments.figures import figure4


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_fig04_concurrency(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, figure4, config=bench_config, runner=bench_runner
    )
    rows = {row[0]: row for row in result.rows}
    labels = result.headers[1:]
    hi = [labels.index("8-15") + 1, labels.index("16+") + 1]
    heavy = lambda row: sum(_pct(row[i]) for i in hi)
    # MEM mixes live at >=8 outstanding far more than ILP mixes.
    assert heavy(rows["4-MEM"]) > heavy(rows["4-ILP"]) + 20.0
    # Heavy concurrency grows with thread count for MEM mixes.
    assert heavy(rows["8-MEM"]) >= heavy(rows["2-MEM"])
