"""Speedup of the fast (and sampled) engines over the reference.

Measures ``run_mix`` under all three engines on the figure-10 mixes and
(optionally) the full figure-10 sweep, and reports *ratios* — the
committed ``BENCH_engine.json`` snapshot is machine-normalized: raw
seconds are recorded for provenance only, the speedup ratios are the
numbers that transfer across machines.

Methodology: reference and fast measurements are interleaved and each
case keeps the best of N ``time.process_time()`` samples.  Process
time ignores scheduler preemption; interleaving cancels slow thermal /
frequency drift that would otherwise bias whichever engine ran second.

Run as a pytest (marked ``slow``) for the regression floors, or
directly to regenerate the committed snapshot::

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py

The fast engine wins most where the reference spends cycles ticking
stalled threads: memory-bound mixes at high thread counts.  MIX mixes
are dominated by per-µop work both engines share (the paper's ILP
threads rarely stall long enough to skip), so their ratio is close
to 1 — see docs/performance.md for the full breakdown.
"""

import dataclasses
import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.config import SystemConfig
from repro.experiments.figures import figure10
from repro.experiments.runner import Runner, run_mix
from repro.workloads.mixes import MIXES

#: Mixes measured individually: the memory-bound column of figure 10
#: (where cycle-skipping pays) plus the ILP-heavy worst case.
_CASE_MIXES = ("2-MEM", "4-MEM", "8-MEM", "8-MIX")
_REPEATS = 3


def _budget() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "2500"))


def _config(instructions: int, engine: str) -> SystemConfig:
    return SystemConfig(
        scale=8,
        instructions_per_thread=instructions,
        warmup_instructions=max(200, instructions // 4),
        seed=2005,
        engine=engine,
    )


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.process_time()
        fn()
        best = min(best, time.process_time() - t0)
    return best


def _measure_pair(ref_fn, fast_fn, repeats: int, sampled_fn=None) -> dict:
    """Interleave single-sample measurements of the engines."""
    ref_best = fast_best = sampled_best = float("inf")
    for _ in range(repeats):
        t0 = time.process_time()
        ref_fn()
        ref_best = min(ref_best, time.process_time() - t0)
        t0 = time.process_time()
        fast_fn()
        fast_best = min(fast_best, time.process_time() - t0)
        if sampled_fn is not None:
            t0 = time.process_time()
            sampled_fn()
            sampled_best = min(sampled_best, time.process_time() - t0)
    stats = {
        "ref_s": round(ref_best, 3),
        "fast_s": round(fast_best, 3),
        "speedup": round(ref_best / fast_best, 3),
    }
    if sampled_fn is not None:
        stats["sampled_s"] = round(sampled_best, 3)
        stats["sampled_speedup"] = round(ref_best / sampled_best, 3)
    return stats


def run_bench(
    instructions: int | None = None,
    repeats: int = _REPEATS,
    full_fig10: bool = False,
) -> dict:
    budget = instructions or _budget()
    cases = {}
    for mix in _CASE_MIXES:
        apps = MIXES[mix].apps
        ref_cfg = _config(budget, "reference")
        fast_cfg = _config(budget, "fast")
        sampled_cfg = _config(budget, "sampled")
        # At this tiny budget the sampled engine degenerates to nearly
        # all-detailed windows, so its ratio tracks the fast engine's;
        # BENCH_sampling.json measures it at a budget where fast-forward
        # regions dominate.  Recorded here so all three engines share
        # one table.
        cases[f"mix_{mix}"] = _measure_pair(
            lambda: run_mix(ref_cfg, apps),
            lambda: run_mix(fast_cfg, apps),
            repeats,
            sampled_fn=lambda: run_mix(sampled_cfg, apps),
        )
    if full_fig10:
        # Fresh Runner per run: the result cache deliberately ignores
        # the engine (bit-identity contract), so a shared runner would
        # hand the second engine the first engine's cached results.
        cases["fig10_end_to_end"] = _measure_pair(
            lambda: figure10(
                config=_config(budget, "reference"), runner=Runner()
            ),
            lambda: figure10(config=_config(budget, "fast"), runner=Runner()),
            repeats=1,
        )
    return {
        "budget_instructions": budget,
        "repeats": repeats,
        "timer": "process_time, interleaved best-of-N",
        "cases": cases,
    }


def _report(stats: dict) -> str:
    lines = [
        f"engine speedup @ {stats['budget_instructions']} "
        f"instructions/thread (best of {stats['repeats']}):"
    ]
    for name, c in stats["cases"].items():
        line = (
            f"  {name:<18} ref {c['ref_s'] * 1e3:7.0f}ms   "
            f"fast {c['fast_s'] * 1e3:7.0f}ms   x{c['speedup']:.2f}"
        )
        if "sampled_s" in c:
            line += (
                f"   sampled {c['sampled_s'] * 1e3:7.0f}ms"
                f"   x{c['sampled_speedup']:.2f}"
            )
        lines.append(line)
    return "\n".join(lines)


@pytest.mark.slow
def test_engine_speedup():
    stats = run_bench()
    print()
    print(_report(stats))
    cases = stats["cases"]
    # Regression floors, deliberately below the measured ratios (see
    # BENCH_engine.json) so machine noise cannot flake the lane: the
    # fast engine must clearly win where stalls dominate and must
    # never lose elsewhere.
    assert cases["mix_8-MEM"]["speedup"] > 1.2
    assert cases["mix_4-MEM"]["speedup"] > 1.0
    for name, c in cases.items():
        assert c["speedup"] > 0.85, f"{name}: fast engine regressed ({c})"


if __name__ == "__main__":
    stats = run_bench(full_fig10=True)
    print(_report(stats))
    out = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    out.write_text(json.dumps(stats, indent=2) + "\n")
    print(f"wrote {out}")
