"""Component throughput: full-system simulated cycles per second.

Runs the complete stack (SMT core + caches + DRAM) on the 2-MIX
workload and reports simulation speed; the benchmark value tracks the
end-to-end cost of one simulated run.
"""

from repro.experiments.runner import run_mix
from repro.workloads.mixes import get_mix


def test_component_full_system(benchmark, bench_config):
    config = bench_config.with_(instructions_per_thread=1500,
                                warmup_instructions=300)

    def simulate():
        return run_mix(config, get_mix("2-MIX").apps)

    result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print(f"\nsimulated {result.core.cycles} cycles, "
          f"throughput {result.throughput:.3f} IPC")
    assert result.core.cycles > 0
