"""Ablation: MSHR capacity sensitivity.

The MSHR file bounds the memory-level parallelism an SMT core can
expose; DESIGN.md documents the default of 32 (Table 1 lists 16 per
cache across several caches).  Expected: MEM-mix *throughput* rises
with MSHR capacity and saturates.  (Throughput, not weighted speedup:
the WS baselines would shift with the capacity under study.)
"""

from conftest import run_and_render
from repro.experiments.ablations import mshr_ablation


def test_abl_mshr_capacity(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, mshr_ablation, config=bench_config, runner=bench_runner,
        mixes=("4-MEM",),
    )
    row = result.rows[0]
    # Severely capped MLP must cost throughput vs the default.
    assert row[1] < max(row[3], row[4])
