"""Ablation: the Table 1 stride prefetcher.

Table 1 lists 4 prefetch MSHR entries per cache; the reproduction's
stride prefetcher is off by default (profiles calibrated without it).
Expected: streaming-heavy mixes gain throughput; pointer-chasing
traffic is unaffected (no stable stride to learn).
"""

from conftest import run_and_render
from repro.experiments.ablations import prefetch_ablation


def test_abl_prefetch(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, prefetch_ablation, config=bench_config,
        runner=bench_runner,
    )
    assert len(result.rows) == 2
