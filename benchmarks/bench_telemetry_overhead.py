"""Wall-clock cost of the telemetry subsystem on a figure-scale mix.

Runs the same 2-thread memory-bound mix three ways and reports wall
clock per configuration:

1. telemetry off (the tier-1 / figure path — no ``telemetry=`` at all),
2. metrics only (``Telemetry()`` — registry live, no tracer),
3. metrics + full event trace (``Telemetry(tracer=EventTracer())``).

The contract under test: (1) pays nothing for the subsystem existing —
the null-instrument fast path keeps it within noise of the seed
simulator — and every configuration produces bit-identical cycle
counts.  Runnable as a pytest (marked ``slow``, excluded from tier-1)
or directly::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
"""

import dataclasses
import os
import statistics
import time

import pytest

from repro.experiments.config import SystemConfig
from repro.experiments.runner import run_mix
from repro.telemetry import EventTracer, Telemetry
from repro.workloads.mixes import MIXES

_APPS = MIXES["2-MEM"].apps
_REPEATS = 5


def _config(instructions: int) -> SystemConfig:
    return SystemConfig(
        scale=8,
        instructions_per_thread=instructions,
        warmup_instructions=max(200, instructions // 4),
        seed=2005,
    )


def _time(fn, repeats: int = _REPEATS) -> tuple[float, object]:
    """Median-of-N wall time; medians shrug off scheduler noise that
    would dominate a single-shot measurement at this scale."""
    samples = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples), result


def run_bench(instructions: int = 2500) -> dict:
    config = _config(instructions)
    off_s, off = _time(lambda: run_mix(config, _APPS))
    metrics_s, metrics = _time(
        lambda: run_mix(config, _APPS, telemetry=Telemetry())
    )

    def traced():
        telemetry = Telemetry(tracer=EventTracer())
        result = run_mix(config, _APPS, telemetry=telemetry)
        return result, telemetry.tracer

    trace_s, (trace_result, tracer) = _time(traced)
    assert off.core.cycles == metrics.core.cycles == trace_result.core.cycles
    assert off.ipcs == metrics.ipcs == trace_result.ipcs
    return {
        "off_s": off_s,
        "metrics_s": metrics_s,
        "trace_s": trace_s,
        "metrics_overhead": metrics_s / off_s - 1.0,
        "trace_overhead": trace_s / off_s - 1.0,
        "events": tracer.emitted,
        "cycles": off.core.cycles,
    }


def _report(stats: dict) -> str:
    return (
        f"2-MEM mix ({stats['cycles']} cycles): "
        f"off {stats['off_s'] * 1e3:.0f}ms, "
        f"metrics {stats['metrics_s'] * 1e3:.0f}ms "
        f"(+{stats['metrics_overhead']:.0%}), "
        f"metrics+trace {stats['trace_s'] * 1e3:.0f}ms "
        f"(+{stats['trace_overhead']:.0%}, "
        f"{stats['events']} events)"
    )


def test_disabled_path_is_zero_cost(monkeypatch):
    """With telemetry off, the simulation must make *zero* instrument
    calls — not even no-op calls on the null singletons.

    The hot paths (core tick, fetch policies, DRAM issue) hoist their
    telemetry checks so a disabled run never touches an instrument;
    this pins that audit by counting invocations on the null-instrument
    classes during an untelemetered fast-engine run.
    """
    from repro.telemetry import registry as reg

    calls = {"n": 0}

    def counting(name):
        def method(self, *args, **kwargs):
            calls["n"] += 1
        method.__name__ = name
        return method

    monkeypatch.setattr(reg._NullCounter, "add", counting("add"))
    monkeypatch.setattr(reg._NullGauge, "set", counting("set"))
    monkeypatch.setattr(reg._NullHistogram, "observe", counting("observe"))
    monkeypatch.setattr(reg._NullSeries, "record", counting("record"))

    for engine in ("fast", "reference"):
        calls["n"] = 0
        config = dataclasses.replace(_config(600), engine=engine)
        result = run_mix(config, _APPS)
        assert result.core.cycles > 0
        assert calls["n"] == 0, (
            f"{engine} engine made {calls['n']} instrument calls "
            "with telemetry disabled"
        )


@pytest.mark.slow
def test_telemetry_overhead():
    budget = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "2500"))
    stats = run_bench(instructions=budget)
    print()
    print(_report(stats))
    # Bit-identical results are asserted inside run_bench; the enabled
    # paths must stay affordable enough to leave on during debugging.
    assert stats["metrics_overhead"] < 0.50
    assert stats["trace_overhead"] < 1.00
    assert stats["events"] > 0


if __name__ == "__main__":
    print(_report(run_bench()))
