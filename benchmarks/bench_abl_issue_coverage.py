"""Section 5.1 statistic: integer-issue coverage by fetch policy.

The paper explains ICOUNT's collapse on 8-MIX with this number: the
processor can issue >= 1 integer instruction during 92.2% of cycles
under DWarn but only 43.8% under ICOUNT.  Expected shape here: DWarn
coverage exceeds ICOUNT coverage on the 8-thread mixed workload.
"""

from conftest import run_and_render
from repro.experiments.figures import issue_coverage


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_abl_issue_coverage(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, issue_coverage, config=bench_config, runner=bench_runner
    )
    rows = {row[0]: row for row in result.rows}
    assert _pct(rows["8-MIX"][2]) >= _pct(rows["8-MIX"][1])
