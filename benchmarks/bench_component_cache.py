"""Component throughput: cache accesses per second."""

from repro.cache.cache import SetAssocCache


def test_component_cache_throughput(benchmark):
    cache = SetAssocCache("bench", 512 * 1024, 2, 64)

    def hammer():
        for i in range(20_000):
            cache.access((i * 97) % 16384)
        return cache.stats.total

    total = benchmark(hammer)
    assert total >= 20_000
