"""Figure 5: how many threads contribute concurrent requests.

Expected shape (paper): for ILP mixes, concurrent requests usually
come from a single thread; for MEM mixes they come from (almost) all
threads (76.4%/79.0% from all threads for 2-/4-MEM).
"""

from conftest import run_and_render
from repro.experiments.figures import figure5


def _pct(cell: str) -> float:
    return 0.0 if cell == "-" else float(cell.rstrip("%"))


def test_fig05_thread_concurrency(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, figure5, config=bench_config, runner=bench_runner
    )
    rows = {row[0]: row for row in result.rows}
    # For 4-MEM, most multi-request time involves >= 3 threads.
    many = _pct(rows["4-MEM"][3]) + _pct(rows["4-MEM"][4])
    assert many > 50.0
