"""Figure 2: weighted speedup of four fetch policies.

Regenerates the paper's Figure 2 on the 2-channel DDR system.
Expected shape: the four policies are comparable on ILP mixes, while
the long-latency-aware policies (Fetch-Stall, DG, DWarn) clearly beat
ICOUNT on the memory-heavy 8-thread mixes.
"""

from conftest import run_and_render
from repro.experiments.figures import figure2


def test_fig02_fetch_policies(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, figure2, config=bench_config, runner=bench_runner
    )
    rows = {row[0]: row for row in result.rows}
    policies = result.headers[1:]
    icount = policies.index("icount") + 1
    dg = policies.index("dg") + 1
    # Paper shape: clog-avoiding policies beat ICOUNT on 8-MIX.
    assert rows["8-MIX"][dg] > rows["8-MIX"][icount]
