"""Ablation: open vs close page mode (paper Section 2).

Not a paper figure, but a design choice DESIGN.md calls out: the open
page mode bets on row-buffer locality, the close page mode removes
the precharge from the conflict path.  With the MEM mixes' high
conflict rates, close page can be competitive -- the printout shows
where each wins.
"""

from conftest import run_and_render
from repro.experiments.ablations import page_mode_ablation


def test_abl_page_mode(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, page_mode_ablation, config=bench_config,
        runner=bench_runner,
    )
    assert all(row[1] > 0 and row[2] > 0 for row in result.rows)
