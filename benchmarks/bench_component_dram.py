"""Component throughput: raw DRAM-model request rate.

Measures simulator performance (requests simulated per second), not
modelled bandwidth.  Useful to track the cost of the event-driven
controller when optimizing.
"""

from repro.common.events import EventQueue
from repro.dram.system import MemorySystem


def test_component_dram_throughput(benchmark):
    def serve_10k():
        evq = EventQueue()
        system = MemorySystem.ddr(evq, channels=2, scheduler="hit-first")
        outstanding = [0]

        def feeder(line=[0]):
            if line[0] >= 10_000:
                return
            line[0] += 1
            system.read(line[0] * 7, line[0] % 4, callback=lambda t, r: feeder())

        for _ in range(16):
            feeder()
        evq.run_all()
        return system.stats.reads

    reads = benchmark(serve_10k)
    assert reads >= 10_000
