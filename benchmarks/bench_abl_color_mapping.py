"""Ablation: the thread-color mapping extension.

Section 5.4 observes XOR is less effective under SMT because row
conflicts come from multiple threads, and calls for mappings that
take this into account.  The color-xor extension folds thread-color
address bits into the bank permutation; this ablation compares its
row-buffer miss rates against page and xor.
"""

from conftest import run_and_render
from repro.experiments.ablations import color_mapping_ablation


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_abl_color_mapping(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, color_mapping_ablation, config=bench_config,
        runner=bench_runner,
    )
    for row in result.rows:
        assert 0.0 <= _pct(row[3]) <= 100.0
