"""Ablation: OS page-allocation policies (Section 5.4 direction).

The paper's simulation uses bin hopping; its Section 5.4 suggests
page coloring to reduce row-buffer conflicts between threads.  This
ablation compares no-translation, bin hopping, page coloring, and
random allocation on a MEM mix.
"""

from conftest import run_and_render
from repro.experiments.ablations import vm_policy_ablation


def test_abl_vm_policy(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, vm_policy_ablation, config=bench_config,
        runner=bench_runner,
    )
    assert len(result.rows[0]) == 5
