"""Ablation: criticality-based scheduling (Section 3.1's fourth policy).

The paper lists criticality-based scheduling among the known
single-thread policies but does not evaluate it; this ablation runs
the ROB-occupancy approximation implemented as an extension next to
FCFS, hit-first and the request-based scheme.
"""

from conftest import run_and_render
from repro.experiments.ablations import critical_scheduler_ablation


def test_abl_critical_scheduler(benchmark, bench_config, bench_runner):
    result = run_and_render(
        benchmark, critical_scheduler_ablation, config=bench_config,
        runner=bench_runner, mixes=("4-MEM",),
    )
    assert result.rows[0][1] == 1.0  # fcfs normalized to itself
