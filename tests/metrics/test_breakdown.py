"""Tests for the CPI-breakdown methodology."""

import pytest

from repro.metrics.breakdown import CpiBreakdown, cpi_breakdown


class TestBreakdown:
    def test_components_sum_to_overall(self):
        b = cpi_breakdown("mcf", 9.0, 2.0, 1.0, 0.6)
        assert b.total == pytest.approx(9.0)
        assert b.cpi_mem == pytest.approx(7.0)
        assert b.cpi_l3 == pytest.approx(1.0)
        assert b.cpi_l2 == pytest.approx(0.4)
        assert b.cpi_proc == pytest.approx(0.6)

    def test_negative_differences_clamped(self):
        # Finite windows can make a perfect-cache run marginally slower.
        b = cpi_breakdown("eon", 0.50, 0.51, 0.50, 0.50)
        assert b.cpi_mem == 0.0
        assert b.cpi_l2 == 0.0

    def test_nonpositive_cpi_rejected(self):
        with pytest.raises(ValueError):
            cpi_breakdown("x", 0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            cpi_breakdown("x", 1.0, 1.0, 1.0, -2.0)

    def test_as_row(self):
        b = CpiBreakdown("gzip", 0.4, 0.1, 0.05, 0.01)
        row = b.as_row()
        assert row[0] == "gzip"
        assert row[-1] == pytest.approx(b.total)
