"""Tests for Figure 4/5 bucketing helpers."""

import pytest

from repro.metrics.concurrency import (
    OUTSTANDING_BUCKETS,
    bucket_outstanding,
    bucket_thread_counts,
)


class TestBucketOutstanding:
    def test_labels(self):
        buckets = bucket_outstanding({})
        assert list(buckets) == ["1", "2-3", "4-7", "8-15", "16+"]

    def test_probability_preserved(self):
        dist = {1: 0.2, 3: 0.3, 9: 0.1, 40: 0.4}
        buckets = bucket_outstanding(dist)
        assert buckets["1"] == pytest.approx(0.2)
        assert buckets["2-3"] == pytest.approx(0.3)
        assert buckets["8-15"] == pytest.approx(0.1)
        assert buckets["16+"] == pytest.approx(0.4)
        assert sum(buckets.values()) == pytest.approx(1.0)

    def test_default_edges_match_constant(self):
        assert OUTSTANDING_BUCKETS == (1, 2, 4, 8, 16)


class TestBucketThreadCounts:
    def test_one_bin_per_thread(self):
        buckets = bucket_thread_counts({1: 0.25, 4: 0.75}, num_threads=4)
        assert list(buckets) == ["1", "2", "3", "4"]
        assert buckets["1"] == 0.25
        assert buckets["2"] == 0.0
        assert buckets["4"] == 0.75
