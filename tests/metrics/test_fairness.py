"""Tests for the fairness metrics."""

import pytest

from repro.metrics.fairness import fairness_index, max_slowdown, slowdowns


class TestFairnessIndex:
    def test_even_slowdown_is_one(self):
        assert fairness_index([1.0, 0.5], [2.0, 1.0]) == pytest.approx(1.0)

    def test_uneven_slowdown_below_one(self):
        assert fairness_index([2.0, 0.2], [2.0, 2.0]) == pytest.approx(0.1)

    def test_stalled_thread_is_zero(self):
        assert fairness_index([0.0, 1.0], [1.0, 1.0]) == 0.0


class TestSlowdowns:
    def test_values(self):
        assert slowdowns([1.0, 0.5], [2.0, 2.0]) == [
            pytest.approx(2.0), pytest.approx(4.0)
        ]

    def test_stalled_is_inf(self):
        assert slowdowns([0.0], [1.0]) == [float("inf")]

    def test_max_slowdown(self):
        assert max_slowdown([1.0, 0.5], [2.0, 2.0]) == pytest.approx(4.0)
