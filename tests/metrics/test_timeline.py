"""Tests for timeline sampling and interval-IPC post-processing."""

import sys

import pytest

sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parents[1]))
from cpu.test_core import build_core  # noqa: E402

from repro.cpu.core import CoreParams  # noqa: E402
from repro.metrics.timeline import (  # noqa: E402
    aggregate_interval_ipcs,
    burstiness,
    dedupe_timeline,
    interval_ipcs,
    timeline_from_metrics,
)


class TestSampling:
    def test_disabled_by_default(self):
        core, _, _ = build_core(["gzip"])
        core.run(300, warmup_instructions=50)
        assert core.timeline == []

    def test_samples_recorded_at_interval(self):
        core, _, _ = build_core(
            ["gzip"], params=CoreParams(sample_interval=50)
        )
        core.run(600, warmup_instructions=0)
        assert len(core.timeline) >= 3
        cycles = [c for c, _ in core.timeline]
        assert cycles == sorted(cycles)
        # committed counts are monotone
        committed = [sum(x) for _, x in core.timeline]
        assert committed == sorted(committed)

    def test_per_thread_tuples(self):
        core, _, _ = build_core(
            ["gzip", "eon"], params=CoreParams(sample_interval=50)
        )
        core.run(400, warmup_instructions=0)
        assert all(len(x) == 2 for _, x in core.timeline)


class TestPostprocessing:
    def test_interval_ipcs(self):
        timeline = [(0, (0,)), (100, (50,)), (200, (150,))]
        series = interval_ipcs(timeline)
        assert series == [(100, [0.5]), (200, [1.0])]

    def test_aggregate(self):
        timeline = [(0, (0, 0)), (100, (50, 30))]
        assert aggregate_interval_ipcs(timeline) == [(100, 0.8)]

    def test_burstiness_zero_for_constant(self):
        timeline = [(i * 100, (i * 80,)) for i in range(5)]
        assert burstiness(timeline) == pytest.approx(0.0)

    def test_burstiness_positive_for_phases(self):
        timeline = [
            (0, (0,)), (100, (100,)), (200, (110,)), (300, (210,)),
        ]
        assert burstiness(timeline) > 0.3

    def test_short_timelines_handled(self):
        assert interval_ipcs([]) == []
        assert burstiness([(0, (0,))]) == 0.0

    def test_real_mem_run_is_bursty(self):
        core, _, _ = build_core(
            ["mcf"], params=CoreParams(sample_interval=200)
        )
        core.run(1500, warmup_instructions=0)
        assert burstiness(core.timeline) > 0.1


class TestSameCycleSamples:
    """Satellite fix: zero-span samples were silently skipped, losing
    the instructions committed in the final partial interval."""

    def test_duplicate_cycle_keeps_last_sample(self):
        # trailing phase-end sample lands on the same cycle as the last
        # periodic one but carries newer committed counts
        timeline = [(0, (0,)), (100, (50,)), (100, (60,))]
        series = interval_ipcs(timeline)
        assert series == [(100, [0.6])]

    def test_dedupe_helper(self):
        timeline = [(0, (0,)), (0, (1,)), (50, (10,)), (50, (12,))]
        assert dedupe_timeline(timeline) == [(0, (1,)), (50, (12,))]

    def test_trailing_partial_interval_counted(self):
        # a short run: one full interval plus a 30-cycle tail
        timeline = [(0, (0,)), (100, (80,)), (130, (110,))]
        series = interval_ipcs(timeline)
        assert series == [(100, [0.8]), (130, [1.0])]

    def test_core_emits_trailing_sample(self):
        core, _, _ = build_core(
            ["gzip"], params=CoreParams(sample_interval=50)
        )
        core.run(310, warmup_instructions=0)
        final_cycle, final_committed = core.timeline[-1]
        assert final_cycle == core.cycle
        assert sum(final_committed) >= 310
        # every instruction committed after the first sample lands in
        # some interval (the trailing partial one included)
        deduped = dedupe_timeline(core.timeline)
        total_ipc_cycles = sum(
            ipc[0] * span
            for (c0, _), (c1, ipc) in zip(deduped, interval_ipcs(core.timeline))
            for span in [c1 - c0]
        )
        expected = sum(final_committed) - sum(deduped[0][1])
        assert total_ipc_cycles == pytest.approx(expected)


class TestTimelineFromMetrics:
    def test_rebuilds_per_thread_timeline(self):
        snapshot = {
            "series": {
                "cpu.t0.committed": [(100, 10), (200, 30)],
                "cpu.t1.committed": [(100, 5), (200, 25)],
            }
        }
        assert timeline_from_metrics(snapshot) == [
            (100, (10, 5)), (200, (30, 25)),
        ]

    def test_empty_snapshot(self):
        assert timeline_from_metrics({}) == []
        assert timeline_from_metrics({"series": {}}) == []

    def test_matches_core_timeline_through_run_mix(self, quick_config):
        from repro.experiments.runner import run_mix
        from repro.telemetry import Telemetry

        # no sample_interval configured: registry-driven sampling uses
        # its own default cadence, so the series still materialize
        telemetry = Telemetry()
        result = run_mix(quick_config, ["gzip", "mcf"], telemetry=telemetry)
        rebuilt = timeline_from_metrics(result.metrics)
        assert rebuilt
        assert all(len(x) == 2 for _, x in rebuilt)
        assert burstiness(rebuilt) >= 0.0
