"""Tests for timeline sampling and interval-IPC post-processing."""

import sys

import pytest

sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parents[1]))
from cpu.test_core import build_core  # noqa: E402

from repro.cpu.core import CoreParams  # noqa: E402
from repro.metrics.timeline import (  # noqa: E402
    aggregate_interval_ipcs,
    burstiness,
    interval_ipcs,
)


class TestSampling:
    def test_disabled_by_default(self):
        core, _, _ = build_core(["gzip"])
        core.run(300, warmup_instructions=50)
        assert core.timeline == []

    def test_samples_recorded_at_interval(self):
        core, _, _ = build_core(
            ["gzip"], params=CoreParams(sample_interval=50)
        )
        core.run(600, warmup_instructions=0)
        assert len(core.timeline) >= 3
        cycles = [c for c, _ in core.timeline]
        assert cycles == sorted(cycles)
        # committed counts are monotone
        committed = [sum(x) for _, x in core.timeline]
        assert committed == sorted(committed)

    def test_per_thread_tuples(self):
        core, _, _ = build_core(
            ["gzip", "eon"], params=CoreParams(sample_interval=50)
        )
        core.run(400, warmup_instructions=0)
        assert all(len(x) == 2 for _, x in core.timeline)


class TestPostprocessing:
    def test_interval_ipcs(self):
        timeline = [(0, (0,)), (100, (50,)), (200, (150,))]
        series = interval_ipcs(timeline)
        assert series == [(100, [0.5]), (200, [1.0])]

    def test_aggregate(self):
        timeline = [(0, (0, 0)), (100, (50, 30))]
        assert aggregate_interval_ipcs(timeline) == [(100, 0.8)]

    def test_burstiness_zero_for_constant(self):
        timeline = [(i * 100, (i * 80,)) for i in range(5)]
        assert burstiness(timeline) == pytest.approx(0.0)

    def test_burstiness_positive_for_phases(self):
        timeline = [
            (0, (0,)), (100, (100,)), (200, (110,)), (300, (210,)),
        ]
        assert burstiness(timeline) > 0.3

    def test_short_timelines_handled(self):
        assert interval_ipcs([]) == []
        assert burstiness([(0, (0,))]) == 0.0

    def test_real_mem_run_is_bursty(self):
        core, _, _ = build_core(
            ["mcf"], params=CoreParams(sample_interval=200)
        )
        core.run(1500, warmup_instructions=0)
        assert burstiness(core.timeline) > 0.1
