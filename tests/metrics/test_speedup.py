"""Tests for SMT performance metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.speedup import (
    harmonic_mean_speedup,
    relative_ipcs,
    throughput,
    weighted_speedup,
)


class TestRelativeIpcs:
    def test_basic(self):
        assert relative_ipcs([1.0, 2.0], [2.0, 2.0]) == [0.5, 1.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            relative_ipcs([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            relative_ipcs([], [])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_ipcs([1.0], [0.0])


class TestWeightedSpeedup:
    def test_ideal_smt_equals_thread_count(self):
        assert weighted_speedup([2.0, 1.0, 0.5], [2.0, 1.0, 0.5]) == 3.0

    def test_paper_semantics(self):
        # two threads each at half their solo speed: WS = 1.0
        assert weighted_speedup([1.0, 0.25], [2.0, 0.5]) == pytest.approx(1.0)

    def test_zero_progress_thread_allowed(self):
        assert weighted_speedup([0.0, 1.0], [1.0, 1.0]) == 1.0


class TestHarmonicMean:
    def test_equal_relatives(self):
        assert harmonic_mean_speedup([1.0, 1.0], [2.0, 2.0]) == pytest.approx(0.5)

    def test_punishes_imbalance(self):
        balanced = harmonic_mean_speedup([1.0, 1.0], [2.0, 2.0])
        skewed = harmonic_mean_speedup([1.9, 0.1], [2.0, 2.0])
        assert skewed < balanced

    def test_zero_progress_yields_zero(self):
        assert harmonic_mean_speedup([0.0, 1.0], [1.0, 1.0]) == 0.0


class TestThroughput:
    def test_sum(self):
        assert throughput([1.5, 0.5]) == 2.0


class TestProperties:
    @given(
        st.lists(st.floats(0.01, 10), min_size=1, max_size=8),
        st.lists(st.floats(0.01, 10), min_size=1, max_size=8),
    )
    def test_ws_nonnegative_and_bounded_by_sum(self, multi, single):
        n = min(len(multi), len(single))
        multi, single = multi[:n], single[:n]
        ws = weighted_speedup(multi, single)
        assert ws >= 0
        assert ws == pytest.approx(
            sum(m / s for m, s in zip(multi, single))
        )

    @given(st.lists(st.floats(0.01, 10), min_size=1, max_size=8))
    def test_hmean_at_most_amean(self, rel):
        single = [1.0] * len(rel)
        hmean = harmonic_mean_speedup(rel, single)
        amean = weighted_speedup(rel, single) / len(rel)
        assert hmean <= amean + 1e-9
