"""Tests for SARIF 2.1.0 output.

Full fidelity against the published schema needs the schema file (not
vendored); these tests validate the structural subset that matters —
required top-level members, rule catalog completeness, result shape,
and codeFlow traces — via :mod:`jsonschema` with an embedded schema
capturing SARIF 2.1.0's structural requirements.
"""

import json

import pytest

from repro.analysis.fs_rules import FS_RULES
from repro.analysis.linter import Finding, Severity, all_rules
from repro.analysis.sarif import SARIF_VERSION, rule_catalog, to_sarif
from repro.analysis.taint_rules import TNT_RULES

jsonschema = pytest.importorskip("jsonschema")

#: The load-bearing subset of the SARIF 2.1.0 schema: everything a
#: consumer (code host, CI annotator) requires to ingest the log.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation"
                                                ],
                                            }
                                        },
                                    },
                                },
                                "codeFlows": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["threadFlows"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def deep_finding():
    return Finding(
        path="src/m.py", line=3, col=1, code="TNT001",
        message="wall-clock reaches cache key",
        severity=Severity.ERROR, anchor="wall-clock",
        trace=(
            ("src/m.py", 3, "wall-clock time.time()"),
            ("src/m.py", 4, "t = ..."),
            ("src/n.py", 9, "cache-key computation"),
        ),
    )


def shallow_finding():
    return Finding(
        path="src/m.py", line=1, col=1, code="DET001",
        message="raw random import", severity=Severity.ERROR,
    )


class TestDocument:
    def test_validates_against_subset_schema(self):
        doc = to_sarif([deep_finding(), shallow_finding()])
        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)

    def test_empty_report_validates(self):
        jsonschema.validate(to_sarif([]), SARIF_SUBSET_SCHEMA)

    def test_version_and_json_serializable(self):
        doc = to_sarif([deep_finding()])
        assert doc["version"] == SARIF_VERSION
        json.dumps(doc)  # no sets, enums, or other non-JSON types

    def test_rule_catalog_covers_every_family(self):
        ids = {rule["id"] for rule in rule_catalog()}
        assert {r.code for r in all_rules()} <= ids
        assert set(TNT_RULES) <= ids
        assert set(FS_RULES) <= ids
        assert "DET000" in ids

    def test_result_carries_fingerprint_and_level(self):
        doc = to_sarif([deep_finding()])
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "TNT001"
        assert result["level"] == "error"
        assert result["partialFingerprints"]["reproLint/v1"] == (
            deep_finding().fingerprint
        )

    def test_trace_becomes_code_flow(self):
        doc = to_sarif([deep_finding()])
        (result,) = doc["runs"][0]["results"]
        locations = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(locations) == 3
        first = locations[0]["location"]["physicalLocation"]
        assert first["artifactLocation"]["uri"] == "src/m.py"
        assert first["region"]["startLine"] == 3

    def test_shallow_finding_has_no_code_flow(self):
        doc = to_sarif([shallow_finding()])
        (result,) = doc["runs"][0]["results"]
        assert "codeFlows" not in result
