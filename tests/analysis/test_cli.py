"""Tests for the ``repro lint`` command-line front end."""

import io
import json

import pytest

from repro.analysis.cli import main as lint_main
from repro.experiments.cli import main as repro_main


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text("def f(xs):\n    return sorted(xs)\n")
    return path


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text("import random\nimport time\nt = time.time()\n")
    return path


class TestExitCodes:
    def test_clean_exits_zero(self, clean_file):
        assert lint_main([str(clean_file)]) == 0

    def test_findings_exit_one(self, dirty_file):
        assert lint_main([str(dirty_file)]) == 1

    def test_missing_path_exits_two(self):
        assert lint_main(["/no/such/path.py"]) == 2

    def test_syntax_error_exits_two(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert lint_main([str(bad)]) == 2

    def test_no_paths_exits_two(self):
        assert lint_main([]) == 2

    def test_unknown_select_code_exits_two(self, clean_file):
        assert lint_main([str(clean_file), "--select", "DET999"]) == 2


class TestOutput:
    def run(self, argv):
        import argparse

        from repro.analysis.cli import add_lint_arguments, run_lint

        parser = argparse.ArgumentParser()
        add_lint_arguments(parser)
        out = io.StringIO()
        code = run_lint(parser.parse_args(argv), out=out)
        return code, out.getvalue()

    def test_json_document(self, dirty_file):
        code, text = self.run([str(dirty_file), "--format", "json"])
        assert code == 1
        doc = json.loads(text)
        assert doc["files_checked"] == 1
        assert doc["errors"] == []
        found = {f["code"] for f in doc["findings"]}
        assert found == {"DET001", "DET002"}
        for f in doc["findings"]:
            assert set(f) == {
                "path", "line", "col", "code", "message", "severity",
            }

    def test_human_summary_line(self, dirty_file):
        code, text = self.run([str(dirty_file)])
        assert code == 1
        assert "2 finding(s), 0 error(s) in 1 file" in text
        assert "DET001" in text and "DET002" in text

    def test_select_filters_rules(self, dirty_file):
        code, text = self.run([str(dirty_file), "--select", "DET002"])
        assert code == 1
        assert "DET002" in text and "DET001" not in text

    def test_list_rules(self):
        code, text = self.run(["--list-rules"])
        assert code == 0
        for i in range(1, 9):
            assert f"DET00{i}" in text


class TestMainCliIntegration:
    def test_lint_subcommand_registered(self, dirty_file, capsys):
        assert repro_main(["lint", str(dirty_file)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_lint_clean_tree(self, clean_file, capsys):
        assert repro_main(["lint", str(clean_file)]) == 0
        capsys.readouterr()

    def test_deep_flag_reaches_analyzer(self, clean_file, capsys):
        assert repro_main(["lint", "--deep", str(clean_file)]) == 0
        capsys.readouterr()


@pytest.fixture
def taint_pkg(tmp_path):
    """Cross-file wall-clock -> cache payload flow (TNT002 + DET002)."""
    pkg = tmp_path / "taintpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "clock.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n"
    )
    (pkg / "runner.py").write_text(
        "from taintpkg.clock import stamp\n\n\n"
        "def run(cache, cfg):\n"
        "    cache.put(cfg, {'when': stamp()})\n"
    )
    return pkg


class TestDeepMode:
    def run(self, argv):
        import argparse

        from repro.analysis.cli import add_lint_arguments, run_lint

        parser = argparse.ArgumentParser()
        add_lint_arguments(parser)
        out = io.StringIO()
        code = run_lint(parser.parse_args(argv), out=out)
        return code, out.getvalue()

    def test_deep_clean_exits_zero(self, clean_file):
        assert self.run(["--deep", str(clean_file)])[0] == 0

    def test_deep_findings_exit_one_with_trace(self, taint_pkg):
        code, text = self.run(["--deep", str(taint_pkg)])
        assert code == 1
        assert "TNT002" in text
        assert "cache.put" in text  # the rendered source->sink trace

    def test_deep_missing_path_exits_two(self):
        assert self.run(["--deep", "/no/such/path.py"])[0] == 2

    def test_deep_syntax_error_exits_two(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert self.run(["--deep", str(bad)])[0] == 2

    def test_select_with_deep_exits_two(self, clean_file):
        # Path first: --select is greedy (nargs="+").
        code, text = self.run(
            [str(clean_file), "--deep", "--select", "DET001"]
        )
        assert code == 2
        assert "--select" in text

    def test_sarif_output_parses(self, taint_pkg):
        code, text = self.run(["--deep", "--format", "sarif", str(taint_pkg)])
        assert code == 1
        doc = json.loads(text)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert any(r["ruleId"] == "TNT002" for r in results)

    def test_json_output_includes_trace(self, taint_pkg):
        code, text = self.run(["--deep", "--format", "json", str(taint_pkg)])
        doc = json.loads(text)
        deep = [f for f in doc["findings"] if f["code"] == "TNT002"]
        assert deep and deep[0]["trace"]

    def test_cache_dir_speeds_warm_run(self, taint_pkg, tmp_path):
        cache_dir = str(tmp_path / "lintcache")
        argv = ["--deep", "--cache-dir", cache_dir, str(taint_pkg)]
        cold_code, cold_text = self.run(argv)
        warm_code, warm_text = self.run(argv)
        assert cold_code == warm_code == 1
        # Identical findings either way.
        assert [
            line for line in cold_text.splitlines() if "TNT" in line
        ] == [line for line in warm_text.splitlines() if "TNT" in line]


class TestBaselineWorkflow:
    def run(self, argv):
        import argparse

        from repro.analysis.cli import add_lint_arguments, run_lint

        parser = argparse.ArgumentParser()
        add_lint_arguments(parser)
        out = io.StringIO()
        code = run_lint(parser.parse_args(argv), out=out)
        return code, out.getvalue()

    def test_update_then_gate(self, taint_pkg, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        # Accept current findings...
        code, text = self.run(
            ["--deep", "--baseline", baseline, "--update-baseline",
             str(taint_pkg)]
        )
        assert code == 0 and "fingerprint(s)" in text
        # ...then the gate passes while nothing new appears.
        code, text = self.run(
            ["--deep", "--baseline", baseline, str(taint_pkg)]
        )
        assert code == 0
        assert "baselined" in text

    def test_new_finding_still_fails(self, taint_pkg, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        self.run(
            ["--deep", "--baseline", baseline, "--update-baseline",
             str(taint_pkg)]
        )
        (taint_pkg / "extra.py").write_text("import random\n")
        code, text = self.run(
            ["--deep", "--baseline", baseline, str(taint_pkg)]
        )
        assert code == 1
        assert "DET001" in text

    def test_fixed_finding_reported_stale(self, taint_pkg, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        self.run(
            ["--deep", "--baseline", baseline, "--update-baseline",
             str(taint_pkg)]
        )
        (taint_pkg / "clock.py").write_text(
            "def stamp():\n    return 0.0\n"
        )
        code, text = self.run(
            ["--deep", "--baseline", baseline, str(taint_pkg)]
        )
        assert code == 0
        assert "stale" in text

    def test_corrupt_baseline_exits_two(self, clean_file, tmp_path):
        baseline = tmp_path / "corrupt.json"
        baseline.write_text("{broken")
        code, text = self.run(
            ["--deep", "--baseline", str(baseline), str(clean_file)]
        )
        assert code == 2
        assert "error" in text
