"""Tests for the ``repro lint`` command-line front end."""

import io
import json

import pytest

from repro.analysis.cli import main as lint_main
from repro.experiments.cli import main as repro_main


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text("def f(xs):\n    return sorted(xs)\n")
    return path


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text("import random\nimport time\nt = time.time()\n")
    return path


class TestExitCodes:
    def test_clean_exits_zero(self, clean_file):
        assert lint_main([str(clean_file)]) == 0

    def test_findings_exit_one(self, dirty_file):
        assert lint_main([str(dirty_file)]) == 1

    def test_missing_path_exits_two(self):
        assert lint_main(["/no/such/path.py"]) == 2

    def test_syntax_error_exits_two(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert lint_main([str(bad)]) == 2

    def test_no_paths_exits_two(self):
        assert lint_main([]) == 2

    def test_unknown_select_code_exits_two(self, clean_file):
        assert lint_main([str(clean_file), "--select", "DET999"]) == 2


class TestOutput:
    def run(self, argv):
        import argparse

        from repro.analysis.cli import add_lint_arguments, run_lint

        parser = argparse.ArgumentParser()
        add_lint_arguments(parser)
        out = io.StringIO()
        code = run_lint(parser.parse_args(argv), out=out)
        return code, out.getvalue()

    def test_json_document(self, dirty_file):
        code, text = self.run([str(dirty_file), "--format", "json"])
        assert code == 1
        doc = json.loads(text)
        assert doc["files_checked"] == 1
        assert doc["errors"] == []
        found = {f["code"] for f in doc["findings"]}
        assert found == {"DET001", "DET002"}
        for f in doc["findings"]:
            assert set(f) == {
                "path", "line", "col", "code", "message", "severity",
            }

    def test_human_summary_line(self, dirty_file):
        code, text = self.run([str(dirty_file)])
        assert code == 1
        assert "2 finding(s), 0 error(s) in 1 file" in text
        assert "DET001" in text and "DET002" in text

    def test_select_filters_rules(self, dirty_file):
        code, text = self.run([str(dirty_file), "--select", "DET002"])
        assert code == 1
        assert "DET002" in text and "DET001" not in text

    def test_list_rules(self):
        code, text = self.run(["--list-rules"])
        assert code == 0
        for i in range(1, 9):
            assert f"DET00{i}" in text


class TestMainCliIntegration:
    def test_lint_subcommand_registered(self, dirty_file, capsys):
        assert repro_main(["lint", str(dirty_file)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_lint_clean_tree(self, clean_file, capsys):
        assert repro_main(["lint", str(clean_file)]) == 0
        capsys.readouterr()
