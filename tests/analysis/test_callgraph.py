"""Tests for the syntactic module/class/call-graph index."""

import ast
import textwrap

from repro.analysis.callgraph import (
    ProgramIndex,
    import_map,
    index_module,
    module_qname,
)


def module_info(source, path):
    """Index ``source`` as if it lived at ``path`` (qname = stem,
    since no package dirs exist on disk for these fixtures)."""
    tree = ast.parse(textwrap.dedent(source))
    return index_module(tree, path)


class TestModuleQname:
    def test_packaged_file(self, tmp_path):
        pkg = tmp_path / "top" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "top" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("")
        assert module_qname(pkg / "mod.py") == "top.sub.mod"
        assert module_qname(pkg / "__init__.py") == "top.sub"

    def test_bare_file(self, tmp_path):
        (tmp_path / "script.py").write_text("")
        assert module_qname(tmp_path / "script.py") == "script"


class TestImportMap:
    def test_plain_and_aliased(self):
        tree = ast.parse(
            "import os\nimport os.path\nimport numpy as np\n"
            "from a.b import c\nfrom a.b import c as d\n"
        )
        mapping = import_map(tree, "pkg.mod")
        assert mapping["os"] == "os"
        assert mapping["np"] == "numpy"
        assert mapping["c"] == "a.b.c"
        assert mapping["d"] == "a.b.c"

    def test_relative_import(self):
        tree = ast.parse("from .sibling import helper\n")
        mapping = import_map(tree, "pkg.mod")
        assert mapping["helper"] == "pkg.sibling.helper"

    def test_two_level_relative(self):
        tree = ast.parse("from ..other import helper\n")
        mapping = import_map(tree, "pkg.sub.mod")
        assert mapping["helper"] == "pkg.other.helper"


class TestResolveCall:
    def make_index(self):
        a = module_info(
            """
            def helper(x):
                return x

            class Base:
                def shared(self):
                    pass

            class Impl(Base):
                def __init__(self):
                    pass

                def own(self):
                    pass
            """,
            path="a.py",
        )
        b = module_info(
            """
            from a import helper, Impl
            import a as alias

            def caller():
                pass
            """,
            path="b.py",
        )
        return ProgramIndex([a, b]), a, b

    def test_local_function(self):
        index, a, b = self.make_index()
        assert index.resolve_call("helper", a) == ("a.helper",)

    def test_imported_function(self):
        index, a, b = self.make_index()
        assert index.resolve_call("helper", b) == ("a.helper",)

    def test_module_alias_attribute(self):
        index, a, b = self.make_index()
        assert index.resolve_call("alias.helper", b) == ("a.helper",)

    def test_constructor_resolves_to_init(self):
        index, a, b = self.make_index()
        assert index.resolve_call("Impl", b) == ("a.Impl.__init__",)

    def test_self_method_with_inheritance(self):
        index, a, b = self.make_index()
        assert index.resolve_call(
            "self.shared", a, class_qname="a.Impl"
        ) == ("a.Base.shared",)
        assert index.resolve_call(
            "self.own", a, class_qname="a.Impl"
        ) == ("a.Impl.own",)

    def test_unresolvable_object_call(self):
        index, a, b = self.make_index()
        assert index.resolve_call("cache.put", b) == ()
        assert index.resolve_call("unknown", b) == ()
