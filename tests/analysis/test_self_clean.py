"""The simulator's own source tree must pass its determinism linter.

This is the tree-level gate CI runs as ``repro lint src/``; keeping a
test-suite copy means a plain ``pytest`` run catches regressions too.
"""

from pathlib import Path

from repro.analysis.linter import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src"


def test_source_tree_is_lint_clean():
    report = lint_paths([SRC])
    assert report.files_checked > 50
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"unsuppressed findings:\n{rendered}\n{report.errors}"
