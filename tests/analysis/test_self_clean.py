"""The simulator's own source tree must pass its determinism linter.

This is the tree-level gate CI runs as ``repro lint src/``; keeping a
test-suite copy means a plain ``pytest`` run catches regressions too.
"""

from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE, apply_baseline, load_baseline
from repro.analysis.dataflow import analyze_paths
from repro.analysis.linter import lint_paths

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"


def test_source_tree_is_lint_clean():
    report = lint_paths([SRC])
    assert report.files_checked > 50
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"unsuppressed findings:\n{rendered}\n{report.errors}"


def test_source_tree_is_deep_clean():
    """The whole-program analysis must pass against the committed
    baseline — new taint flows or filesystem races fail the suite."""
    report = analyze_paths([SRC])
    assert report.files_checked > 50
    baseline = load_baseline(ROOT / DEFAULT_BASELINE)
    new, _suppressed, _stale = apply_baseline(report.findings, baseline)
    rendered = "\n".join(
        f.render() + "\n" + "\n".join(f.render_trace()) for f in new
    )
    assert not new and not report.errors, (
        f"non-baselined deep findings:\n{rendered}\n{report.errors}"
    )
