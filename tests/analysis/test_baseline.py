"""Tests for the lint baseline ratchet (.repro-lint-baseline.json)."""

import json

import pytest

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.linter import Finding, Severity


def make_finding(line=10, path="src/m.py", code="TNT001", message="boom at 10"):
    return Finding(
        path=path, line=line, col=1, code=code, message=message,
        severity=Severity.ERROR, anchor="m.f",
    )


class TestFingerprint:
    def test_stable_across_line_shifts(self):
        a = make_finding(line=10, message="flow reaches sink at src/m.py:12")
        b = make_finding(line=99, message="flow reaches sink at src/m.py:101")
        # Same code/path/anchor, digits normalized out of the message.
        assert a.fingerprint == b.fingerprint

    def test_changes_with_code_path_anchor(self):
        base = make_finding()
        assert base.fingerprint != make_finding(code="TNT002").fingerprint
        assert base.fingerprint != make_finding(path="src/n.py").fingerprint
        moved = Finding(
            path=base.path, line=base.line, col=1, code=base.code,
            message=base.message, severity=base.severity, anchor="m.other",
        )
        assert base.fingerprint != moved.fingerprint


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        target = tmp_path / "baseline.json"
        findings = [make_finding(), make_finding(code="FS001")]
        assert write_baseline(target, findings) == 2
        loaded = load_baseline(target)
        assert set(loaded) == {f.fingerprint for f in findings}
        for entry in loaded.values():
            assert {"code", "path", "anchor", "message"} <= set(entry)

    def test_write_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        findings = [make_finding(code="FS001"), make_finding()]
        write_baseline(a, findings)
        write_baseline(b, list(reversed(findings)))
        assert a.read_bytes() == b.read_bytes()

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_malformed_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_wrong_schema_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/9", "fingerprints": {}}))
        with pytest.raises(BaselineError):
            load_baseline(bad)


class TestApply:
    def test_splits_new_from_baselined(self, tmp_path):
        old = make_finding()
        new = make_finding(code="FS002")
        target = tmp_path / "b.json"
        write_baseline(target, [old])
        kept, suppressed, stale = apply_baseline(
            [old, new], load_baseline(target)
        )
        assert [f.code for f in kept] == ["FS002"]
        assert suppressed == 1
        assert stale == []

    def test_stale_entries_reported(self, tmp_path):
        fixed = make_finding()
        target = tmp_path / "b.json"
        write_baseline(target, [fixed])
        kept, suppressed, stale = apply_baseline([], load_baseline(target))
        assert kept == [] and suppressed == 0
        assert stale == [fixed.fingerprint]
