"""Tests for the determinism linter: framework and every rule.

Each rule gets a positive fixture (the hazard is found), a negative
fixture (legitimate code stays clean), and a pragma fixture (the
finding is suppressed by ``# repro: allow(...)``).
"""

import textwrap

from repro.analysis.linter import (
    Severity,
    all_rules,
    lint_paths,
    lint_source,
    pragmas_for_source,
)


def codes(source: str, path: str = "<test>") -> list[str]:
    """Rule codes found in ``source``, in report order."""
    return [f.code for f in lint_source(textwrap.dedent(source), path)]


class TestFramework:
    def test_all_rules_catalog(self):
        rules = all_rules()
        assert [r.code for r in rules] == [
            f"DET00{i}" for i in range(1, 9)
        ]
        for rule in rules:
            assert rule.summary
            assert rule.node_types

    def test_findings_sorted_by_location(self):
        findings = lint_source(
            "import os\nx = os.listdir('.')\nimport random\n"
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_finding_render_and_dict(self):
        (finding,) = lint_source("import random\n", path="mod.py")
        assert finding.render().startswith("mod.py:1:1: DET001")
        d = finding.to_dict()
        assert d["code"] == "DET001"
        assert d["severity"] == "error"

    def test_pragma_parsing_multiple_codes(self):
        allowed = pragmas_for_source(
            "x = 1  # repro: allow(DET001, DET006) because reasons\n"
        )
        assert allowed == {1: frozenset({"DET001", "DET006"})}

    def test_pragma_only_suppresses_named_code(self):
        # The pragma names DET006 but the line trips DET001: DET001 is
        # reported, and the DET006 suppression is flagged as unused.
        findings = lint_source("import random  # repro: allow(DET006)\n")
        assert [f.code for f in findings] == ["DET000", "DET001"]

    def test_unused_pragma_flagged(self):
        findings = lint_source("x = 1  # repro: allow(DET002) stale\n")
        assert [f.code for f in findings] == ["DET000"]
        assert "DET002" in findings[0].message

    def test_used_pragma_not_flagged_unused(self):
        assert codes("import random  # repro: allow(DET001) ok\n") == []

    def test_unran_codes_never_flagged_unused(self):
        # A TNT pragma survives a shallow run untouched: the taint
        # rules didn't execute, so "unused" cannot be determined.
        assert codes("x = 1  # repro: allow(TNT001) deep-only\n") == []

    def test_docstring_pragma_example_ignored(self):
        # A pragma *mentioned* in a docstring or quoting comment is
        # neither a suppression nor an unused-pragma finding.
        source = '"""Example: # repro: allow(DET001)."""\nimport random\n'
        findings = lint_source(source)
        assert [f.code for f in findings] == ["DET001"]

    def test_quoting_comment_not_a_pragma(self):
        # The pragma must start the comment; prose quoting the syntax
        # (like linter.py's own docs) does not count.
        assert codes("x = 1  #: use ``# repro: allow(DET001)`` here\n") == []

    def test_rule_subset_selection(self):
        rules = [r for r in all_rules() if r.code == "DET002"]
        source = "import random\nimport time\nt = time.time()\n"
        findings = lint_source(source, rules=rules)
        assert [f.code for f in findings] == ["DET002"]

    def test_lint_paths_reports_missing_path(self):
        report = lint_paths(["/no/such/dir"])
        assert report.errors
        assert not report.ok

    def test_lint_paths_reports_syntax_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([str(bad)])
        assert report.files_checked == 1
        assert any("bad.py" in e for e in report.errors)

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("import random\n")
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 2
        assert [f.code for f in report.findings] == ["DET001"]


class TestRawRandom:  # DET001
    def test_import_flagged(self):
        assert codes("import random\n") == ["DET001"]

    def test_from_import_flagged(self):
        assert codes("from random import Random\n") == ["DET001"]

    def test_call_flagged(self):
        assert "DET001" in codes(
            "import random  # repro: allow(DET001)\nx = random.random()\n"
        )

    def test_severity_is_error(self):
        (finding,) = lint_source("import random\n")
        assert finding.severity is Severity.ERROR

    def test_rng_module_exempt(self):
        assert codes("import random\n", path="src/repro/common/rng.py") == []

    def test_deterministic_rng_clean(self):
        assert codes(
            "from repro.common.rng import DeterministicRng\n"
            "rng = DeterministicRng(1)\n"
        ) == []

    def test_pragma_suppresses(self):
        assert codes("import random  # repro: allow(DET001) typing\n") == []


class TestWallClock:  # DET002
    def test_time_time_flagged(self):
        assert codes("import time\nt = time.time()\n") == ["DET002"]

    def test_datetime_now_flagged(self):
        assert codes(
            "import datetime\nd = datetime.datetime.now()\n"
        ) == ["DET002"]

    def test_perf_counter_clean(self):
        assert codes("import time\nt = time.perf_counter()\n") == []

    def test_pragma_suppresses(self):
        assert codes(
            "import time\n"
            "t = time.time()  # repro: allow(DET002) provenance stamp\n"
        ) == []


class TestUnorderedIteration:  # DET003
    def test_for_over_set_literal_flagged(self):
        assert codes("for x in {1, 2, 3}:\n    print(x)\n") == ["DET003"]

    def test_comprehension_over_set_call_flagged(self):
        assert codes("out = [x for x in set(range(3))]\n") == ["DET003"]

    def test_for_over_list_clean(self):
        assert codes("for x in [1, 2, 3]:\n    print(x)\n") == []

    def test_for_over_sorted_set_clean(self):
        assert codes("for x in sorted({1, 2}):\n    print(x)\n") == []

    def test_pragma_suppresses(self):
        assert codes(
            "for x in {1, 2}:  # repro: allow(DET003) order-free\n"
            "    print(x)\n"
        ) == []


class TestModuleState:  # DET004
    def test_global_counter_flagged(self):
        source = """\
        _count = 0

        def bump():
            global _count
            _count += 1
        """
        assert "DET004" in codes(source)

    def test_module_level_mutable_literal_flagged(self):
        assert codes("_registry = []\n") == ["DET004"]

    def test_dunder_all_exempt(self):
        assert codes('__all__ = ["x", "y"]\n') == []

    def test_uppercase_constant_exempt(self):
        assert codes("KNOWN = []\n_TABLE = {}\n") == []

    def test_function_local_clean(self):
        assert codes("def f():\n    acc = []\n    return acc\n") == []

    def test_pragma_suppresses(self):
        assert codes(
            "_registry = []  # repro: allow(DET004) populated at import\n"
        ) == []


class TestHeapTiebreak:  # DET005
    def test_tuple_without_tiebreaker_flagged(self):
        source = """\
        from heapq import heappush  # noqa

        def push(heap, when, payload):
            heappush(heap, (when, payload))
        """
        assert "DET005" in codes(source)

    def test_sequence_tiebreaker_clean(self):
        source = """\
        from heapq import heappush  # noqa

        def push(heap, when, seq, payload):
            heappush(heap, (when, seq, payload))
        """
        assert "DET005" not in codes(source)

    def test_pragma_suppresses(self):
        source = """\
        from heapq import heappush  # noqa

        def push(heap, when, payload):
            heappush(heap, (when, payload))  # repro: allow(DET005) total order
        """
        assert "DET005" not in codes(source)


class TestUnsortedListing:  # DET006
    def test_listdir_flagged(self):
        assert codes("import os\nnames = os.listdir('.')\n") == ["DET006"]

    def test_glob_method_flagged(self):
        assert "DET006" in codes(
            "def entries(path):\n    return list(path.glob('*.pkl'))\n"
        )

    def test_sorted_listing_clean(self):
        assert codes("import os\nnames = sorted(os.listdir('.'))\n") == []

    def test_sorted_glob_clean(self):
        assert codes(
            "def entries(path):\n    return sorted(path.glob('*.pkl'))\n"
        ) == []

    def test_pragma_suppresses(self):
        assert codes(
            "import os\n"
            "n = len(os.listdir('.'))  # repro: allow(DET006) count only\n"
        ) == []


class TestFloatSetReduction:  # DET007
    def test_sum_over_set_flagged(self):
        assert codes("total = sum({0.1, 0.2, 0.3})\n") == ["DET007"]

    def test_sum_over_list_clean(self):
        assert codes("total = sum([0.1, 0.2, 0.3])\n") == []

    def test_pragma_suppresses(self):
        assert codes(
            "total = sum({0.1, 0.2})  # repro: allow(DET007) exact halves\n"
        ) == []


class TestIdOrdering:  # DET008
    def test_id_call_flagged(self):
        assert codes("def key(obj):\n    return id(obj)\n") == ["DET008"]

    def test_method_named_id_clean(self):
        assert codes("def key(obj):\n    return obj.id(1)\n") == []

    def test_pragma_suppresses(self):
        assert codes(
            "def key(obj):\n"
            "    return id(obj)  # repro: allow(DET008) debug repr only\n"
        ) == []
