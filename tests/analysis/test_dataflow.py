"""Tests for the whole-program taint + filesystem analysis (--deep).

The fixtures are small on-disk packages (module resolution is
path-based), each encoding one flow the analysis must catch — or must
*not* catch, for the sanitized negatives.  Two of them reproduce bugs
this repo actually shipped: the non-atomic cache publish (FS001/FS003)
and a wall-clock value reaching run identity (TNT001).
"""

import textwrap

import pytest

from repro.analysis.dataflow import (
    ANALYZER_VERSION,
    Program,
    SummaryCache,
    analyze_paths,
    extract_module,
    source_digest,
)


def write_pkg(root, name, files):
    """Create package ``name`` under ``root`` from {module: source}."""
    pkg = root / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for module, source in files.items():
        (pkg / f"{module}.py").write_text(textwrap.dedent(source))
    return pkg


def run_deep(path, **kwargs):
    report = analyze_paths([path], **kwargs)
    assert not report.errors, report.errors
    return report


def finding_codes(report):
    return [f.code for f in report.findings]


class TestCrossFileTaint:
    def test_wall_clock_through_helper_into_cache_payload(self, tmp_path):
        """time.time() -> helper return -> dict -> cache.put: TNT002."""
        pkg = write_pkg(tmp_path, "flowpkg", {
            "clock": """
                import time

                def stamp():
                    return time.time()
            """,
            "runner": """
                from flowpkg.clock import stamp

                def run(cache, cfg):
                    payload = {"cfg": cfg, "when": stamp()}
                    cache.put(cfg, payload)
            """,
        })
        report = run_deep(pkg)
        # DET002 still fires per-line on the time.time() call; the
        # deep pass adds the flow finding.
        assert sorted(finding_codes(report)) == ["DET002", "TNT002"]
        (finding,) = [f for f in report.findings if f.code == "TNT002"]
        # Anchored at the *source*, traced to the sink.
        assert finding.path.endswith("clock.py")
        assert finding.anchor == "wall-clock"
        trace_files = {step[0].rsplit("/", 1)[-1] for step in finding.trace}
        assert trace_files == {"clock.py", "runner.py"}
        assert "cache.put" in finding.trace[-1][2]

    def test_wall_clock_seed_into_config_kwarg(self, tmp_path):
        """int(time.time()) -> SystemConfig(seed=...): the PR-3-class
        run-identity poisoning, caught as TNT001."""
        pkg = write_pkg(tmp_path, "seedpkg", {
            "config": """
                class SystemConfig:
                    def __init__(self, seed=0, channels=1):
                        self.seed = seed
                        self.channels = channels
            """,
            "driver": """
                import time
                from seedpkg.config import SystemConfig

                def fresh_config(channels):
                    seed = int(time.time())
                    return SystemConfig(seed=seed, channels=channels)
            """,
        })
        report = run_deep(pkg)
        assert "TNT001" in finding_codes(report)
        (finding,) = [f for f in report.findings if f.code == "TNT001"]
        assert finding.severity.value == "error"
        assert "seed" in " ".join(step[2] for step in finding.trace)

    def test_pid_into_journal_record(self, tmp_path):
        pkg = write_pkg(tmp_path, "jpkg", {
            "journal": """
                import os

                class BatchJournal:
                    def record_complete(self, doc):
                        self._write_line(doc)

                    def _write_line(self, doc):
                        pass

                def note(journal):
                    journal.record_complete({"worker": os.getpid()})
            """,
        })
        report = run_deep(pkg)
        assert "TNT003" in finding_codes(report)

    def test_sorted_listing_is_clean(self, tmp_path):
        """sorted(os.listdir()) into a cache key: order laundered."""
        pkg = write_pkg(tmp_path, "cleanpkg", {
            "keys": """
                import os

                def cache_key(parts):
                    return hash(tuple(parts))

                def key_of(d):
                    return cache_key(sorted(os.listdir(d)))
            """,
        })
        assert finding_codes(run_deep(pkg)) == []

    def test_unsorted_listing_into_key_flagged_as_warning(self, tmp_path):
        pkg = write_pkg(tmp_path, "orderpkg", {
            "keys": """
                import os

                def cache_key(parts):
                    return hash(tuple(parts))

                def key_of(d):
                    return cache_key(os.listdir(d))
            """,
        })
        report = run_deep(pkg)
        # DET006 (per-line) and TNT001 (flow) both see it; the order
        # taint is heuristic, so the TNT finding is a warning.
        tnt = [f for f in report.findings if f.code == "TNT001"]
        assert len(tnt) == 1
        assert tnt[0].severity.value == "warning"

    def test_sorting_does_not_launder_value_taint(self, tmp_path):
        pkg = write_pkg(tmp_path, "valpkg", {
            "keys": """
                import time

                def cache_key(parts):
                    return hash(tuple(parts))

                def key_of():
                    return cache_key(sorted([time.time()]))
            """,
        })
        assert "TNT001" in finding_codes(run_deep(pkg))

    def test_taint_through_instance_attribute(self, tmp_path):
        pkg = write_pkg(tmp_path, "attrpkg", {
            "worker": """
                import time

                def cache_key(x):
                    return hash(x)

                class Worker:
                    def __init__(self):
                        self.stamp = time.time()

                    def key(self):
                        return cache_key(self.stamp)
            """,
        })
        assert "TNT001" in finding_codes(run_deep(pkg))

    def test_deferred_default_factory_source(self, tmp_path):
        pkg = write_pkg(tmp_path, "facpkg", {
            "manifest": """
                import time
                from dataclasses import dataclass, field

                @dataclass
                class Manifest:
                    created: float = field(default_factory=time.time)

                    def log(self, journal):
                        journal.record_complete({"created": self.created})
            """,
        })
        report = run_deep(pkg)
        assert "TNT003" in finding_codes(report)
        (finding,) = [f for f in report.findings if f.code == "TNT003"]
        assert "deferred" in finding.message


class TestFilesystemRules:
    def test_pr6_shape_nonatomic_publish(self, tmp_path):
        """exists() then a direct write into cache_dir: the shipped
        publish-race bug shape — FS001 (torn write) + FS003 (TOCTOU)."""
        pkg = write_pkg(tmp_path, "fspkg", {
            "cache": """
                import json

                def publish(cache_dir, name, payload):
                    path = cache_dir / name
                    if path.exists():
                        return False
                    with open(path, "w") as fh:
                        json.dump(payload, fh)
                    return True
            """,
        })
        report = run_deep(pkg)
        assert sorted(finding_codes(report)) == ["FS001", "FS003"]

    def test_atomic_publish_is_clean(self, tmp_path):
        pkg = write_pkg(tmp_path, "fsok", {
            "cache": """
                import json
                import os

                def publish(cache_dir, name, payload):
                    path = cache_dir / name
                    if path.exists():
                        return False
                    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
                    with open(tmp, "w") as fh:
                        json.dump(payload, fh)
                        fh.flush()
                        os.fsync(fh.fileno())
                    try:
                        os.link(tmp, path)
                    except FileExistsError:
                        return False
                    finally:
                        os.unlink(tmp)
                    return True
            """,
        })
        assert finding_codes(run_deep(pkg)) == []

    def test_replace_without_fsync(self, tmp_path):
        pkg = write_pkg(tmp_path, "fsr", {
            "index": """
                import json
                import os

                def save_index(index_path, doc):
                    tmp = index_path.with_name(
                        f"{index_path.name}.{os.getpid()}.tmp")
                    with open(tmp, "w") as fh:
                        json.dump(doc, fh)
                    os.replace(tmp, index_path)
            """,
        })
        assert finding_codes(run_deep(pkg)) == ["FS002"]

    def test_collidable_shared_tempfile(self, tmp_path):
        pkg = write_pkg(tmp_path, "fst", {
            "spool": """
                def stage(store_dir, payload):
                    tmp = store_dir / "staging.tmp"
                    tmp.write_text(payload)
            """,
        })
        report = run_deep(pkg)
        assert "FS004" in finding_codes(report)

    def test_unshared_write_is_clean(self, tmp_path):
        pkg = write_pkg(tmp_path, "fsu", {
            "export": """
                def export_csv(out_path, rows):
                    with open(out_path, "w") as fh:
                        for row in rows:
                            fh.write(row + "\\n")
            """,
        })
        assert finding_codes(run_deep(pkg)) == []


class TestPragmas:
    def test_suppression_at_source_line(self, tmp_path):
        pkg = write_pkg(tmp_path, "prag1", {
            "mod": """
                import time

                def cache_key(x):
                    return hash(x)

                def key():
                    t = time.time()  # repro: allow(TNT001, DET002) fixture
                    return cache_key(t)
            """,
        })
        assert finding_codes(run_deep(pkg)) == []

    def test_suppression_at_sink_line(self, tmp_path):
        pkg = write_pkg(tmp_path, "prag2", {
            "mod": """
                import time

                def cache_key(x):
                    return hash(x)

                def key():
                    t = time.time()  # repro: allow(DET002) fixture
                    return cache_key(t)  # repro: allow(TNT001) fixture
            """,
        })
        assert finding_codes(run_deep(pkg)) == []

    def test_unused_tnt_pragma_reported_in_deep_run(self, tmp_path):
        pkg = write_pkg(tmp_path, "prag3", {
            "mod": """
                def f(x):  # repro: allow(TNT001) nothing here
                    return x
            """,
        })
        report = run_deep(pkg)
        assert finding_codes(report) == ["DET000"]


class TestSummaryCache:
    def test_warm_run_hits_for_every_file(self, tmp_path):
        pkg = write_pkg(tmp_path, "cpkg", {
            "a": "def f(x):\n    return x\n",
            "b": "def g(x):\n    return x\n",
        })
        cache = SummaryCache(tmp_path / "cache")
        cold = analyze_paths([pkg], cache=cache)
        assert cold.cache_misses == 3  # __init__, a, b
        assert cold.cache_hits == 0
        warm = analyze_paths([pkg], cache=cache)
        assert warm.cache_hits == cold.cache_misses + cold.cache_hits
        assert warm.cache_misses == cold.cache_misses  # counter carries over

    def test_edit_invalidates_only_that_file(self, tmp_path):
        pkg = write_pkg(tmp_path, "epkg", {
            "clock": """
                import time

                def stamp():
                    return 0.0
            """,
            "runner": """
                from epkg.clock import stamp

                def run(cache, cfg):
                    cache.put(cfg, {"when": stamp()})
            """,
        })
        cache = SummaryCache(tmp_path / "cache")
        first = analyze_paths([pkg], cache=cache)
        assert finding_codes(first) == []
        # Introduce the bug in one file; the other two stay cached.
        (pkg / "clock.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        cache.hits = cache.misses = 0
        second = analyze_paths([pkg], cache=cache)
        assert cache.hits == 2 and cache.misses == 1
        # The cross-file finding appears even though runner.py came
        # from cache: the solve is global.
        assert sorted(finding_codes(second)) == ["DET002", "TNT002"]

    def test_digest_covers_analyzer_version(self, tmp_path):
        source = "x = 1\n"
        d1 = source_digest(source, "m.py")
        assert d1 == source_digest(source, "m.py")
        assert d1 != source_digest(source + "\n", "m.py")
        assert d1 != source_digest(source, "other.py")
        assert f"{ANALYZER_VERSION}:" in f"{ANALYZER_VERSION}:m.py:"

    def test_summary_roundtrips_through_cache(self, tmp_path):
        source = (
            "import time\n\n"
            "def cache_key(x):\n    return hash(x)\n\n"
            "def key():\n    return cache_key(time.time())\n"
        )
        summary = extract_module(source, "rt.py")
        cache = SummaryCache(tmp_path)
        cache.put(summary)
        loaded = cache.get(summary.digest)
        assert loaded is not None
        # Findings from the reloaded summary match the fresh one.
        fresh = [f.render() for f in Program([summary]).solve()]
        reloaded = [f.render() for f in Program([loaded]).solve()]
        assert fresh == reloaded and fresh


class TestReportShape:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = analyze_paths([bad])
        assert report.errors and not report.ok

    def test_det_rules_included_in_deep_run(self, tmp_path):
        pkg = write_pkg(tmp_path, "detpkg", {
            "mod": "import random\n",
        })
        assert "DET001" in finding_codes(run_deep(pkg))

    def test_deterministic_output_order(self, tmp_path):
        pkg = write_pkg(tmp_path, "ordpkg", {
            "m1": "import random\nimport time\nt = time.time()\n",
            "m2": "import random\n",
        })
        first = [f.render() for f in run_deep(pkg).findings]
        second = [f.render() for f in run_deep(pkg).findings]
        assert first == second
        assert first == sorted(first)


@pytest.mark.parametrize("source,expected", [
    # Conservative passthrough: unresolved call with tainted arg.
    (
        "import time\n\n"
        "def cache_key(x):\n    return hash(x)\n\n"
        "def key(fmt):\n    return cache_key(fmt(time.time()))\n",
        ["TNT001"],
    ),
    # Taint dies when not passed anywhere.
    (
        "import time\n\n"
        "def cache_key(x):\n    return hash(x)\n\n"
        "def key(v):\n    t = time.time()\n    return cache_key(v)\n",
        [],
    ),
])
def test_propagation_edges(tmp_path, source, expected):
    path = tmp_path / "edge.py"
    path.write_text(source)
    report = analyze_paths([path])
    tnt = [f.code for f in report.findings if f.code.startswith("TNT")]
    assert tnt == expected
