"""Tests for the runtime simulation sanitizer."""

import pytest

from repro.analysis.sanitizer import (
    SanitizedEventQueue,
    SanitizerError,
    SimSanitizer,
)
from repro.cache.mshr import MSHRFile, MSHRStatus
from repro.experiments.runner import build_system, run_mix
from repro.telemetry import EventTracer


class TestViolationSink:
    def test_starts_clean(self):
        checker = SimSanitizer()
        assert checker.ok
        assert "0 violations" in checker.report()
        checker.raise_if_violations()  # no-op when clean

    def test_record_and_raise(self):
        checker = SimSanitizer()
        checker.record(42, "protocol", "bad thing", channel=1)
        assert not checker.ok
        assert "[cycle 42] protocol: bad thing channel=1" in checker.report()
        with pytest.raises(SanitizerError):
            checker.raise_if_violations()

    def test_violations_land_in_tracer(self):
        tracer = EventTracer()
        tracer.emit(10, "dram.pick", "dram.sched", 0)
        checker = SimSanitizer(tracer=tracer)
        checker.record(11, "tRCD", "too soon")
        names = [e.name for e in tracer.events()]
        assert "sanitize.tRCD" in names
        (violation,) = checker.violations
        assert violation.context["trace_context"][0]["name"] == "dram.pick"


class TestSanitizedEventQueue:
    def test_same_semantics_as_plain_queue(self):
        q = SanitizedEventQueue(SimSanitizer())
        fired = []
        for tag in ("a", "b", "c"):
            q.schedule(7, fired.append, tag)
        q.schedule(3, fired.append, "early")
        q.run_until(7)
        assert fired == ["early", "a", "b", "c"]
        assert q.now == 7

    def test_run_all_drains(self):
        q = SanitizedEventQueue(SimSanitizer())
        fired = []
        for t in (5, 1, 9):
            q.schedule(t, fired.append, t)
        assert q.run_all() == 9
        assert fired == [1, 5, 9]

    def test_monotonicity_violation_recorded(self):
        checker = SimSanitizer()
        q = checker.make_event_queue()
        q._check_fire(10)
        q._check_fire(4)
        assert not checker.ok
        assert checker.violations[0].check == "event-time"


class TestMshrAccounting:
    def test_completion_without_entry_flagged(self):
        checker = SimSanitizer()
        mshr = MSHRFile(entries=4)

        class _Hierarchy:
            pass

        hierarchy = _Hierarchy()
        hierarchy.mshr = mshr
        checker.attach_hierarchy(hierarchy)
        # The model itself raises on the bogus completion; the
        # sanitizer has already localized the violation by then.
        with pytest.raises(KeyError):
            mshr.complete(0x40, finish=10)
        assert any(v.check == "mshr" for v in checker.violations)

    def test_leak_detected_at_finish(self):
        checker = SimSanitizer()
        mshr = MSHRFile(entries=4)

        class _Hierarchy:
            pass

        hierarchy = _Hierarchy()
        hierarchy.mshr = mshr
        checker.attach_hierarchy(hierarchy)
        assert mshr.register(0x40, 0) is MSHRStatus.NEW
        checker.finish()
        checks = [v.check for v in checker.violations]
        assert checks.count("mshr-leak") == 2  # live entry + imbalance

    def test_balanced_traffic_is_clean(self):
        checker = SimSanitizer()
        mshr = MSHRFile(entries=4)

        class _Hierarchy:
            pass

        hierarchy = _Hierarchy()
        hierarchy.mshr = mshr
        checker.attach_hierarchy(hierarchy)
        mshr.register(0x40, 0)
        mshr.complete(0x40, finish=10)
        checker.finish()
        assert checker.ok


class TestEndToEnd:
    @pytest.mark.parametrize("controller", ["request", "command"])
    def test_full_run_is_clean_and_bit_identical(
        self, quick_config, controller
    ):
        config = quick_config.with_(controller_model=controller)
        apps = ("mcf", "art")
        plain = run_mix(config, apps)
        checker = SimSanitizer()
        checked = run_mix(config, apps, sanitizer=checker)
        assert checker.ok, checker.report()
        assert checker.checks_run > 0
        assert checked.core == plain.core
        assert checked.hierarchy == plain.hierarchy
        assert checked.ipcs == plain.ipcs
        assert checked.dram.reads == plain.dram.reads
        assert checked.dram.writes == plain.dram.writes
        assert checked.dram.row_miss_rate == plain.dram.row_miss_rate
        assert checked.dram.read_latency_sum == plain.dram.read_latency_sum

    def test_close_page_command_model_clean(self, tiny_config):
        config = tiny_config.with_(
            controller_model="command", page_mode="close"
        )
        checker = SimSanitizer()
        run_mix(config, ("mcf", "gzip"), sanitizer=checker)
        assert checker.ok, checker.report()

    def test_build_system_attaches_everything(self, tiny_config, sanitizer):
        core, memory, hierarchy = build_system(
            tiny_config, ("mcf",), sanitizer=sanitizer
        )
        assert isinstance(core.event_queue, SanitizedEventQueue)
        core.run(tiny_config.instructions_per_thread, warmup_instructions=0)
        assert sanitizer.checks_run > 0
        # teardown of the `sanitizer` fixture drains and asserts clean

    def test_env_var_opt_in(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        result = run_mix(tiny_config, ("mcf",))
        assert result.core.cycles > 0

    def test_runner_sanitize_flag(self, tiny_config):
        from repro.experiments.runner import Runner

        runner = Runner(sanitize=True)
        result = runner.run_mix(tiny_config, ("mcf", "art"))
        assert result.core.cycles > 0
