"""Public API surface tests: the documented entry points exist."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_experiment_registry_complete(self):
        assert {"fig1", "fig2", "fig3", "fig4", "fig5",
                "fig6", "fig7", "fig8", "fig9", "fig10"} <= set(
            repro.EXPERIMENTS
        )

    def test_mix_and_profile_lookups(self):
        assert repro.get_mix("2-MEM").apps == ("mcf", "ammp")
        assert repro.get_profile("mcf").category == "MEM"
        assert len(repro.profile_names()) == 26
        assert len(repro.all_mix_names()) == 9


class TestSubpackageExports:
    def test_dram(self):
        from repro.dram import (
            DRAMGeometry, MemorySystem, make_mapping, make_scheduler,
        )
        assert MemorySystem and DRAMGeometry
        assert make_scheduler("hit-first").name == "hit-first"
        assert callable(make_mapping)

    def test_cache(self):
        from repro.cache import MemoryHierarchy, MSHRFile, SetAssocCache, TLB
        assert all((MemoryHierarchy, MSHRFile, SetAssocCache, TLB))

    def test_cpu(self):
        from repro.cpu import CoreParams, SMTCore, make_fetch_policy
        assert make_fetch_policy("dwarn").name == "dwarn"
        assert CoreParams().rob_size == 256
        assert SMTCore

    def test_workloads(self):
        from repro.workloads import (
            AppProfile, MIXES, PROFILES, Region, SyntheticStream,
        )
        assert len(PROFILES) == 26
        assert len(MIXES) == 9
        assert all((AppProfile, Region, SyntheticStream))

    def test_metrics(self):
        from repro.metrics import (
            cpi_breakdown, fairness_index, weighted_speedup,
        )
        assert weighted_speedup([1.0], [1.0]) == 1.0
        assert fairness_index([1.0], [1.0]) == 1.0
        assert cpi_breakdown

    def test_common(self):
        from repro.common import (
            EventQueue, MemRequest, OpClass, SlotCalendar, child_rng,
        )
        assert all((EventQueue, MemRequest, OpClass, SlotCalendar))
        assert child_rng(1, "x")


class TestReadmeQuickstart:
    """The README quickstart snippet must actually run."""

    def test_quickstart_snippet(self):
        from repro import Runner, SystemConfig, get_mix

        config = SystemConfig(
            scale=32, instructions_per_thread=200, warmup_instructions=50
        )
        runner = Runner()
        mix = get_mix("2-MIX")
        result = runner.run_mix(config, mix)
        assert result.dram.row_hit_rate >= 0.0
        assert runner.weighted_speedup(config, mix, result) > 0

    def test_config_with_snippet(self):
        from repro import SystemConfig

        fast = SystemConfig().with_(channels=8, scheduler="request-based")
        assert fast.channels == 8
        assert fast.scheduler == "request-based"
