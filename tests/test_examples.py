"""Smoke tests: the shipped examples must run end to end.

Only the quick examples run here (the policy/channel studies take
minutes at their default budgets and are exercised by the benchmark
harness instead).
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_examples_directory_complete(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "fetch_policy_study.py",
            "channel_tuning.py",
            "thread_aware_scheduling.py",
            "custom_workload.py",
            "command_level_dram.py",
            "trace_workflow.py",
        } <= names

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Weighted speedup" in out
        assert "Row-buffer hit rate" in out

    def test_command_level_dram(self):
        out = run_example("command_level_dram.py")
        assert "ACTIVATE" in out
        assert "request-level controller" in out

    def test_trace_workflow(self):
        out = run_example("trace_workflow.py")
        assert "recorded 2000" in out
        assert "sweeping schedulers" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "kvstore" in out
        assert "weighted speedup" in out
