"""Tests for API admission control, graceful degradation, idempotent
submits, and the client's circuit breaker / retry machinery."""

import threading

import pytest

from repro.experiments.resilience import RetryPolicy
from repro.experiments.runner import run_mix
from repro.service.api import (
    AdmissionPolicy,
    ServiceApp,
    make_server,
)
from repro.service.client import (
    CircuitBreaker,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    write_server_info,
)
from repro.service.jobs import config_to_dict
from repro.service.scheduler import CampaignScheduler
from repro.service.store import ResultStore, job_key


def _app(tmp_path, admission=None, **sched_kw):
    sched_kw.setdefault("supervise", False)
    scheduler = CampaignScheduler(ResultStore(tmp_path), **sched_kw)
    return ServiceApp(scheduler, admission=admission), scheduler


def _job_body(config, apps=("gzip",)):
    return {"config": config_to_dict(config), "apps": list(apps)}


class TestAdmissionControl:
    def test_full_queue_sheds_with_429(self, tiny_config, tmp_path):
        app, scheduler = _app(
            tmp_path, admission=AdmissionPolicy(max_queue_depth=1)
        )
        first = app.submit(_job_body(tiny_config))
        assert first[0] == 202
        other = tiny_config.with_(scheduler="fcfs")
        status, payload, headers = app.submit(_job_body(other))
        assert status == 429
        assert "Retry-After" in headers
        assert payload["max_queue_depth"] == 1
        assert scheduler.sup_stats.shed == 1
        scheduler.stop()

    def test_shed_campaign_whole(self, tiny_config, tmp_path):
        app, scheduler = _app(
            tmp_path, admission=AdmissionPolicy(max_queue_depth=0)
        )
        status, payload, headers = app.submit(
            {"campaign": {"experiment": "fig1"}}
        )
        assert status == 429 and "Retry-After" in headers
        assert scheduler.queue_depth == 0  # nothing partially admitted
        scheduler.stop()

    def test_warm_hit_admitted_even_when_full(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        store.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        app, scheduler = _app(
            tmp_path, admission=AdmissionPolicy(max_queue_depth=0)
        )
        answer = app.submit(_job_body(tiny_config))
        assert answer[0] == 200 and answer[1]["source"] == "warm"
        scheduler.stop()

    def test_unmeetable_deadline_refused(self, tiny_config, tmp_path):
        app, scheduler = _app(
            tmp_path, admission=AdmissionPolicy(deadline_floor_s=5.0)
        )
        status, payload, headers = app.submit(
            _job_body(tiny_config), headers={"X-Deadline-S": "1.0"}
        )
        assert status == 503 and "Retry-After" in headers
        assert scheduler.sup_stats.deadline_rejections == 1
        # A generous deadline is admitted.
        assert app.submit(
            _job_body(tiny_config), headers={"X-Deadline-S": "600"}
        )[0] == 202
        # Garbage deadline is a client error.
        assert app.submit(
            _job_body(tiny_config), headers={"X-Deadline-S": "soon"}
        )[0] == 400
        scheduler.stop()

    def test_header_lookup_is_case_insensitive(self, tiny_config, tmp_path):
        app, scheduler = _app(tmp_path)
        key = job_key(tiny_config, ("gzip",))
        answer = app.submit(
            _job_body(tiny_config), headers={"x-idempotency-key": key}
        )
        assert answer[0] == 202
        scheduler.stop()


class TestIdempotency:
    def test_matching_key_accepted(self, tiny_config, tmp_path):
        app, scheduler = _app(tmp_path)
        key = job_key(tiny_config, ("gzip",))
        status, payload = app.submit(
            _job_body(tiny_config), headers={"X-Idempotency-Key": key}
        )
        assert status == 202 and payload["key"] == key
        # Retrying the same submit lands on the same ticket.
        again = app.submit(
            _job_body(tiny_config), headers={"X-Idempotency-Key": key}
        )
        assert again[1]["key"] == key
        assert scheduler.queue_depth == 1
        scheduler.stop()

    def test_mismatched_key_is_409(self, tiny_config, tmp_path):
        app, scheduler = _app(tmp_path)
        status, payload = app.submit(
            _job_body(tiny_config),
            headers={"X-Idempotency-Key": "ab" * 32},
        )
        assert status == 409
        assert payload["key"] == job_key(tiny_config, ("gzip",))
        assert scheduler.queue_depth == 0  # nothing enqueued
        scheduler.stop()

    def test_client_sends_derived_key(self, tiny_config, tmp_path):
        """The typed client derives the same key the server does."""
        assert job_key(tiny_config, ("gzip",)) == ResultStore(
            tmp_path
        ).key_for(tiny_config, ("gzip",))


class TestGracefulDegradation:
    def test_crash_flips_to_read_only(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        store.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        app, scheduler = _app(tmp_path)
        scheduler._crashed = True
        assert app.read_only
        # Warm reads stay up.
        warm = app.submit(_job_body(tiny_config))
        assert warm[0] == 200 and warm[1]["source"] == "warm"
        key = store.key_for(tiny_config, ("gzip",))
        assert app.result_payload(key)[0] == 200
        # Cold writes fail fast with Retry-After.
        other = tiny_config.with_(scheduler="fcfs")
        status, payload, headers = app.submit(_job_body(other))
        assert status == 503 and payload["read_only"]
        assert "Retry-After" in headers
        assert scheduler.sup_stats.read_only_rejections == 1
        scheduler.stop()

    def test_healthz_reports_degraded_state(self, tiny_config, tmp_path):
        app, scheduler = _app(tmp_path)
        status, doc = app.healthz()
        assert status == 200 and doc["status"] == "ok"
        assert set(doc) >= {"leases", "store", "jobs", "supervision"}
        scheduler._crashed = True
        status, doc = app.healthz()
        assert status == 200  # liveness: still serving
        assert doc["status"] == "read-only"
        scheduler.stop()

    def test_readyz_503_while_degraded_or_full(self, tiny_config, tmp_path):
        app, scheduler = _app(
            tmp_path, admission=AdmissionPolicy(max_queue_depth=1)
        )
        assert app.readyz()[0] == 200
        app.submit(_job_body(tiny_config))
        status, doc, headers = app.readyz()
        assert status == 503 and "Retry-After" in headers
        assert any("full" in r for r in doc["reasons"])
        scheduler.stop()


class TestCircuitBreaker:
    def test_deterministic_cooldowns(self):
        a = CircuitBreaker(seed=42)
        b = CircuitBreaker(seed=42)
        assert [a.cooldown_s(t) for t in (1, 2, 3)] == [
            b.cooldown_s(t) for t in (1, 2, 3)
        ]
        c = CircuitBreaker(seed=43)
        assert a.cooldown_s(1) != c.cooldown_s(1)

    def test_cooldowns_grow_and_cap(self):
        breaker = CircuitBreaker(base_s=0.1, cap_s=1.0, seed=1)
        cooldowns = [breaker.cooldown_s(t) for t in range(1, 10)]
        assert cooldowns == sorted(cooldowns)
        assert cooldowns[-1] == 1.0

    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(threshold=3, base_s=60.0, seed=0)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.seconds_until_probe() > 0
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_reopens_longer(self):
        breaker = CircuitBreaker(threshold=1, base_s=0.0, seed=0)
        breaker.record_failure()
        assert breaker.trips == 1
        assert breaker.state in ("open", "half-open")
        breaker.record_failure()  # failed probe
        assert breaker.trips == 2


class TestClientResilience:
    def test_backoff_is_deterministic_and_honors_hint(self, tmp_path):
        a = ServiceClient(url="http://127.0.0.1:1", seed=5)
        b = ServiceClient(url="http://127.0.0.1:1", seed=5)
        assert [a._backoff_s(i, None) for i in range(4)] == [
            b._backoff_s(i, None) for i in range(4)
        ]
        assert a._backoff_s(0, 1.5) >= 1.5

    def test_nothing_listening_raises_transient(self):
        client = ServiceClient(url="http://127.0.0.1:1", retries=1, timeout=2)
        with pytest.raises(ServiceUnavailable):
            client.health()
        assert client.breaker.failures >= 2

    def test_survives_a_service_restart(self, tiny_config, tmp_path):
        """Kill the server, restart on a NEW port: the client follows
        the fresh advertisement and completes its request."""
        store = ResultStore(tmp_path / "store")
        store.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        scheduler = CampaignScheduler(store, supervise=False)
        server = make_server(scheduler)
        write_server_info(tmp_path / "store", server.url)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            store_dir=tmp_path / "store", retries=6, timeout=5
        )
        assert client.health()["status"] == "ok"
        server.shutdown()
        server.server_close()
        thread.join(5)

        # Restart on a different ephemeral port, advertise it, and let
        # the client's retry loop re-discover.
        server2 = make_server(scheduler)
        assert server2.url != server.url
        write_server_info(tmp_path / "store", server2.url)
        thread2 = threading.Thread(target=server2.serve_forever, daemon=True)
        thread2.start()
        try:
            key = store.key_for(tiny_config, ("gzip",))
            status = client.result(key)
            assert status["state"] == "done"
            assert client.url == server2.url  # followed the restart
        finally:
            server2.shutdown()
            server2.server_close()
            scheduler.stop()
            thread2.join(5)

    def test_submit_post_retry_is_idempotent(self, tiny_config, tmp_path):
        """Retrying a submit (idempotency key attached) never enqueues
        a duplicate -- the second POST lands on the same ticket."""
        scheduler = CampaignScheduler(ResultStore(tmp_path), supervise=False)
        server = make_server(scheduler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(url=server.url, retries=2)
            first = client.submit(tiny_config, ("gzip",))
            second = client.submit(tiny_config, ("gzip",))  # the "retry"
            assert first["key"] == second["key"]
            assert scheduler.queue_depth == 1
        finally:
            server.shutdown()
            server.server_close()
            scheduler.stop()
            thread.join(5)

    def test_wait_job_tolerates_outage_within_deadline(
        self, tiny_config, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        scheduler = CampaignScheduler(store, supervise=False)
        key = store.key_for(tiny_config, ("gzip",))
        client = ServiceClient(
            url="http://127.0.0.1:1",
            store_dir=tmp_path / "store",
            retries=0,
            timeout=2,
        )

        def come_up_late():
            store.put(
                tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",))
            )
            server = make_server(scheduler)
            write_server_info(tmp_path / "store", server.url)
            threading.Thread(target=server.serve_forever, daemon=True).start()

        starter = threading.Timer(0.5, come_up_late)
        starter.start()
        try:
            status = client.wait_job(key, timeout=60, poll_s=0.1)
            assert status["state"] == "done"
        finally:
            starter.cancel()
            scheduler.stop()

    def test_hard_errors_are_not_retried(self, tmp_path):
        scheduler = CampaignScheduler(ResultStore(tmp_path), supervise=False)
        server = make_server(scheduler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(url=server.url, retries=3)
            with pytest.raises(ServiceError, match="404") as err:
                client.result("ab" * 32)
            assert not isinstance(err.value, ServiceUnavailable)
        finally:
            server.shutdown()
            server.server_close()
            scheduler.stop()
            thread.join(5)
