"""Tests for the campaign scheduler: exactly-once, resume, campaigns."""

import json
import threading

from repro.experiments.resilience import RetryPolicy
from repro.experiments.runner import run_mix
from repro.service.jobs import campaign_jobs
from repro.service.scheduler import CampaignScheduler
from repro.service.store import ResultStore
from repro.telemetry.manifest import run_id


def _journal_lines(scheduler):
    path = scheduler.journal.path
    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def _enqueue_records(store_dir):
    path = store_dir / "service" / "queue.jsonl"
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip() and json.loads(line).get("event") == "enqueue"
    ]


class TestSubmission:
    def test_store_hit_answers_done_without_queueing(
        self, tiny_config, tmp_path
    ):
        store = ResultStore(tmp_path)
        store.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        scheduler = CampaignScheduler(store)  # never started
        status = scheduler.submit_job(tiny_config, ("gzip",))
        assert status["state"] == "done" and status["source"] == "store"
        assert scheduler.queue_depth == 0
        assert not _enqueue_records(tmp_path)
        scheduler.stop()

    def test_miss_enqueues_once(self, tiny_config, tmp_path):
        scheduler = CampaignScheduler(ResultStore(tmp_path))
        first = scheduler.submit_job(tiny_config, ("gzip",))
        second = scheduler.submit_job(tiny_config, ("gzip",))
        assert first["state"] == "queued"
        assert second["key"] == first["key"]
        assert len(_enqueue_records(tmp_path)) == 1
        assert scheduler.queue_depth == 1
        scheduler.stop()

    def test_concurrent_submissions_exactly_once(self, tiny_config, tmp_path):
        """N concurrent submissions of one config -> one queue entry,
        one simulation, one journal 'complete' line, N identical keys."""
        store = ResultStore(tmp_path)
        scheduler = CampaignScheduler(store, policy=RetryPolicy()).start()
        results = []
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait()
            results.append(scheduler.submit_job(tiny_config, ("gzip",)))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert scheduler.drain(timeout=120)
        scheduler.stop()
        assert len({r["key"] for r in results}) == 1
        assert len(_enqueue_records(tmp_path)) == 1
        rid = run_id(tiny_config, ("gzip",))
        completes = [
            r for r in _journal_lines(scheduler)
            if r.get("event") == "complete" and r.get("job") == rid
        ]
        assert len(completes) == 1
        key = results[0]["key"]
        assert store.has(key)
        assert scheduler.job_status(key)["state"] == "done"

    def test_executes_and_matches_direct_run(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        with CampaignScheduler(store, policy=RetryPolicy()) as scheduler:
            status = scheduler.submit_job(tiny_config, ("gzip",))
            assert scheduler.drain(timeout=120)
            served = store.get_by_key(status["key"])
        direct = run_mix(tiny_config, ("gzip",))
        assert served.ipcs == direct.ipcs
        assert served.core.cycles == direct.core.cycles


class TestResume:
    def test_queued_jobs_survive_a_crash(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        dead = CampaignScheduler(store)  # worker never started = "crash"
        other = tiny_config.with_(scheduler="fcfs")
        dead.submit_job(tiny_config, ("gzip",))
        dead.submit_job(other, ("gzip",))
        # Simulate the kill: no stop(), no drain -- just abandon it and
        # satisfy one of the two jobs out of band.
        store.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))

        resumed = CampaignScheduler(ResultStore(tmp_path), resume=True)
        done_key = store.key_for(tiny_config, ("gzip",))
        pending_key = store.key_for(other, ("gzip",))
        assert resumed.job_status(done_key)["state"] == "done"
        assert resumed.job_status(pending_key)["state"] == "queued"
        assert resumed.queue_depth == 1
        resumed.start()
        assert resumed.drain(timeout=120)
        resumed.stop()
        assert resumed.job_status(pending_key)["state"] == "done"
        dead.stop()

    def test_fresh_start_truncates_queue(self, tiny_config, tmp_path):
        first = CampaignScheduler(ResultStore(tmp_path))
        first.submit_job(tiny_config, ("gzip",))
        first.stop()
        fresh = CampaignScheduler(ResultStore(tmp_path))  # no resume
        assert fresh.queue_depth == 0
        assert not _enqueue_records(tmp_path)
        fresh.stop()

    def test_campaigns_survive_resume(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        dead = CampaignScheduler(store, policy=RetryPolicy()).start()
        status = dead.submit_campaign("fig1", tiny_config)
        assert dead.drain(timeout=300)
        resumed = CampaignScheduler(ResultStore(tmp_path), resume=True)
        again = resumed.campaign_status(status["campaign"])
        assert again is not None
        assert again["complete"]  # every key found in the store
        resumed.stop()
        dead.stop()


class TestCampaigns:
    def test_campaign_runs_to_completion(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        with CampaignScheduler(store, policy=RetryPolicy()) as scheduler:
            status = scheduler.submit_campaign(
                "fig10", tiny_config, mixes=["2-MEM"]
            )
            jobs = campaign_jobs("fig10", tiny_config, mixes=["2-MEM"])
            assert status["jobs"] == len(jobs)
            assert scheduler.drain(timeout=600)
            final = scheduler.campaign_status(status["campaign"])
        assert final["complete"]
        assert final["counts"] == {"done": len(jobs)}
        assert all(store.has(k) for k in final["states"])

    def test_resubmission_is_idempotent(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        with CampaignScheduler(store, policy=RetryPolicy()) as scheduler:
            first = scheduler.submit_campaign("fig1", tiny_config)
            assert scheduler.drain(timeout=300)
            enqueues = len(_enqueue_records(tmp_path))
            second = scheduler.submit_campaign("fig1", tiny_config)
            assert second["campaign"] == first["campaign"]
            assert second["complete"]
            assert len(_enqueue_records(tmp_path)) == enqueues  # no re-run

    def test_unknown_campaign_status_is_none(self, tmp_path):
        scheduler = CampaignScheduler(ResultStore(tmp_path))
        assert scheduler.campaign_status("deadbeef") is None
        scheduler.stop()

    def test_manifest_records_served_runs(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        with CampaignScheduler(store, policy=RetryPolicy()) as scheduler:
            status = scheduler.submit_job(tiny_config, ("gzip",))
            assert scheduler.drain(timeout=120)
            manifest = scheduler.manifest()
            record = scheduler.record_for(status["run_id"])
        assert record is not None and record.source == "service"
        assert [r.run_id for r in manifest.records] == [status["run_id"]]
