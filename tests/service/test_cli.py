"""Tests for the service CLI verbs: cache maintenance, submit/fetch."""

import json
import threading

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.resilience import RetryPolicy
from repro.experiments.runner import run_mix
from repro.service.api import make_server
from repro.service.scheduler import CampaignScheduler
from repro.service.store import ResultStore


@pytest.fixture(autouse=True)
def _manifests_in_tmp(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path / "manifests"))


@pytest.fixture
def service(tmp_path):
    store = ResultStore(tmp_path / "store")
    scheduler = CampaignScheduler(store, policy=RetryPolicy()).start()
    server = make_server(scheduler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.url, store
    finally:
        server.shutdown()
        server.server_close()
        scheduler.stop()
        thread.join(5)


class TestParser:
    def test_service_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--store", "x", "--workers", "3"])
        assert args.command == "serve" and args.workers == 3
        args = parser.parse_args(["cache", "stats", "x"])
        assert args.command == "cache" and args.action == "stats"
        args = parser.parse_args(
            ["submit", "--url", "http://h:1", "--mix", "2-MEM", "--wait"]
        )
        assert args.command == "submit" and args.wait

    def test_submit_needs_exactly_one_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--url", "http://h:1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["submit", "--url", "u", "--store", "s", "--mix", "2-MEM"]
            )

    def test_remote_flags_on_figure_commands(self):
        args = build_parser().parse_args(
            ["fig10", "--remote-store", "somewhere"]
        )
        assert args.remote_store == "somewhere"


class TestCacheCommand:
    def test_stats_on_populated_store(self, tiny_config, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        assert main(["cache", "stats", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == 1 and doc["indexed"] == 1

    def test_verify_clean_and_corrupt(self, tiny_config, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        assert main(["cache", "verify", str(tmp_path)]) == 0
        key = store.key_for(tiny_config, ("gzip",))
        store.path_for_key(key).write_bytes(b"garbage")
        assert main(["cache", "verify", str(tmp_path)]) == 1
        doc = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert doc["corrupt"] == [key]

    def test_gc_empties_quarantine(self, tiny_config, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        key = store.key_for(tiny_config, ("gzip",))
        store.path_for_key(key).write_bytes(b"garbage")
        assert store.get_bytes(key) is None  # -> quarantine
        assert main(["cache", "gc", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["quarantined_removed"] == 1
        assert not any(ResultStore(tmp_path).quarantine_dir.iterdir())


class TestRemoteCommands:
    def test_submit_wait_and_fetch(self, service, tmp_path, capsys):
        url, store = service
        code = main(
            ["submit", "--url", url, "--apps", "gzip",
             "--instructions", "300", "--warmup", "100", "--seed", "99",
             "--scale", "32", "--wait", "--poll-timeout", "120"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert doc["state"] == "done"
        out_path = tmp_path / "result.pkl"
        assert main(
            ["fetch", doc["key"], "--url", url, "--out", str(out_path)]
        ) == 0
        assert out_path.read_bytes() == store.get_bytes(doc["key"])
        assert main(["fetch", doc["key"], "--url", url]) == 0
        summary = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert summary["apps"] == ["gzip"]
        assert summary["throughput_ipc"] > 0

    def test_campaign_submit_and_wait(self, service, capsys):
        url, _ = service
        code = main(
            ["submit", "--url", url, "--experiment", "fig1",
             "--instructions", "300", "--warmup", "100", "--seed", "99",
             "--scale", "32", "--wait", "--poll-timeout", "300"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert doc["complete"] is True
        assert main(
            ["campaign", "status", doc["campaign"], "--url", url]
        ) == 0

    def test_unknown_mix_is_an_error(self, service, capsys):
        url, _ = service
        assert main(["submit", "--url", url, "--mix", "9-MEM"]) == 2

    def test_unreachable_service_exits_3(self, capsys):
        assert main(
            ["fetch", "ab" * 32, "--url", "http://127.0.0.1:9"]
        ) == 3

    def test_figure_against_service_matches_local(
        self, service, tmp_path, capsys
    ):
        """--remote-store transparency: same CSV bytes as a local run."""
        url, store = service
        from repro.service.client import write_server_info

        write_server_info(store.cache_dir, url)
        common = ["fig1", "--instructions", "300", "--warmup", "100",
                  "--seed", "99", "--scale", "32"]
        local_csv = tmp_path / "local.csv"
        served_csv = tmp_path / "served.csv"
        assert main([*common, "--csv", str(local_csv)]) == 0
        assert main(
            [*common, "--remote-store", str(store.cache_dir),
             "--csv", str(served_csv)]
        ) == 0
        assert served_csv.read_bytes() == local_csv.read_bytes()
