"""Unit tests for the service API logic (no sockets: ServiceApp direct)."""

import pickle

from repro.experiments.resilience import RetryPolicy
from repro.experiments.runner import run_mix
from repro.service.api import PayloadLRU, ServiceApp
from repro.service.jobs import config_to_dict
from repro.service.scheduler import CampaignScheduler
from repro.service.store import ResultStore, payload_digest


def _app(tmp_path, **kwargs) -> ServiceApp:
    store = ResultStore(tmp_path)
    return ServiceApp(
        CampaignScheduler(store, policy=RetryPolicy()), **kwargs
    )


def _seed(app: ServiceApp, config, apps=("gzip",)) -> str:
    result = run_mix(config, apps)
    app.store.put(config, apps, result)
    return app.store.key_for(config, apps)


class TestPayloadLRU:
    def test_hit_miss_and_eviction(self):
        lru = PayloadLRU(max_entries=2)
        lru.put("a", b"1")
        lru.put("b", b"2")
        assert lru.get("a") == b"1"  # refreshes a
        lru.put("c", b"3")  # evicts b (least recent)
        assert lru.get("b") is None
        assert lru.get("a") == b"1" and lru.get("c") == b"3"
        assert lru.hits == 3 and lru.misses == 1

    def test_zero_capacity_stores_nothing(self):
        lru = PayloadLRU(max_entries=0)
        lru.put("a", b"1")
        assert lru.get("a") is None and len(lru) == 0


class TestEndpoints:
    def test_healthz(self, tmp_path):
        status, doc = _app(tmp_path).healthz()
        assert status == 200
        assert doc["status"] == "ok" and doc["queue_depth"] == 0

    def test_metrics_prometheus_text(self, tiny_config, tmp_path):
        app = _app(tmp_path)
        key = _seed(app, tiny_config)
        assert app.payload(key) is not None
        status, text = app.metrics()
        assert status == 200
        assert "# TYPE repro_service_hits_store_total counter" in text
        assert "repro_service_hits_store_total 1" in text
        assert "repro_service_store_misses 0" in text

    def test_result_envelope_done(self, tiny_config, tmp_path):
        app = _app(tmp_path)
        key = _seed(app, tiny_config)
        data = app.store.get_bytes(key)
        status, doc = app.result_envelope(key)
        assert status == 200
        assert doc["state"] == "done"
        assert doc["sha256"] == payload_digest(data)
        assert doc["size"] == len(data)
        assert doc["payload"] == f"/results/{key}/payload"

    def test_result_envelope_unknown(self, tmp_path):
        status, doc = _app(tmp_path).result_envelope("ab" * 32)
        assert status == 404 and "error" in doc

    def test_result_payload_roundtrip(self, tiny_config, tmp_path):
        app = _app(tmp_path)
        key = _seed(app, tiny_config)
        status, data = app.result_payload(key)
        assert status == 200
        direct = run_mix(tiny_config, ("gzip",))
        assert pickle.loads(data).ipcs == direct.ipcs

    def test_manifest_unknown(self, tmp_path):
        status, _ = _app(tmp_path).manifest("ab" * 32)
        assert status == 404

    def test_campaign_unknown(self, tmp_path):
        status, _ = _app(tmp_path).campaign("feedface")
        assert status == 404


class TestSubmit:
    def test_warm_hit_never_reaches_the_scheduler(self, tiny_config, tmp_path):
        app = _app(tmp_path)
        key = _seed(app, tiny_config)
        status, doc = app.submit(
            {"config": config_to_dict(tiny_config), "apps": ["gzip"]}
        )
        assert status == 200
        assert doc["state"] == "done" and doc["source"] == "warm"
        assert doc["key"] == key
        # The scheduler never saw the job: no ticket, no queue entry.
        assert app.scheduler._jobs == {}
        assert app.scheduler.queue_depth == 0

    def test_miss_enqueues_with_202(self, tiny_config, tmp_path):
        app = _app(tmp_path)  # worker not started: job stays queued
        status, doc = app.submit(
            {"config": config_to_dict(tiny_config), "apps": ["gzip"]}
        )
        assert status == 202
        assert doc["state"] == "queued"
        assert app.scheduler.queue_depth == 1

    def test_bad_job_spec_is_400(self, tmp_path):
        app = _app(tmp_path)
        for body in (
            {"apps": []},
            {"config": {"bogus_field": 1}, "apps": ["gzip"]},
            {"config": {}, "apps": ["gzip", 7]},
            [],
        ):
            status, doc = app.submit(body)
            assert status == 400 and "error" in doc

    def test_bad_campaign_spec_is_400(self, tmp_path):
        app = _app(tmp_path)
        status, doc = app.submit({"campaign": {"mixes": ["2-MEM"]}})
        assert status == 400 and "known" in doc
        status, doc = app.submit({"campaign": {"experiment": "fig99"}})
        assert status == 400

    def test_routing(self, tiny_config, tmp_path):
        app = _app(tmp_path)
        key = _seed(app, tiny_config)
        assert app.handle_get("/healthz")[0] == 200
        assert app.handle_get("/metrics")[0] == 200
        assert app.handle_get(f"/results/{key}")[0] == 200
        assert app.handle_get(f"/results/{key}/payload")[0] == 200
        assert app.handle_get("/nope")[0] == 404
        assert app.handle_post("/nope", {})[0] == 404
