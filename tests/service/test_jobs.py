"""Tests for the job/campaign wire format and driver-based expansion."""

import pickle

import pytest

from repro.experiments.config import SystemConfig
from repro.service.jobs import (
    JobSpec,
    campaign_id,
    campaign_jobs,
    campaign_names,
    config_from_dict,
    config_to_dict,
)


class TestConfigCodec:
    def test_round_trip_preserves_identity(self, tiny_config):
        rebuilt = config_from_dict(config_to_dict(tiny_config))
        assert rebuilt == tiny_config
        assert rebuilt.cache_key() == tiny_config.cache_key()

    def test_round_trip_preserves_pickle_bytes(self, tiny_config):
        """The served-result bit-identity guarantee starts here: a
        config that crossed the JSON boundary must pickle to the same
        bytes as the locally built one (enum-ordered latency table,
        interned strings)."""
        rebuilt = config_from_dict(config_to_dict(tiny_config))
        assert pickle.dumps(rebuilt, protocol=pickle.HIGHEST_PROTOCOL) == (
            pickle.dumps(tiny_config, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_non_default_fields_survive(self):
        config = SystemConfig(
            scheduler="fcfs", channels=4, fetch_policy="icount", seed=7
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt.scheduler == "fcfs"
        assert rebuilt.channels == 4
        assert rebuilt.cache_key() == config.cache_key()

    def test_sparse_override_dict(self):
        rebuilt = config_from_dict({"scheduler": "fcfs"})
        assert rebuilt == SystemConfig(scheduler="fcfs")

    def test_unknown_field_is_loud(self):
        with pytest.raises(ValueError, match="unknown SystemConfig"):
            config_from_dict({"shedualer": "fcfs"})

    def test_unknown_core_field_is_loud(self, tiny_config):
        doc = config_to_dict(tiny_config)
        doc["core"]["robb_size"] = 9
        with pytest.raises(ValueError, match="unknown CoreParams"):
            config_from_dict(doc)

    def test_unknown_latency_op_is_loud(self, tiny_config):
        doc = config_to_dict(tiny_config)
        doc["core"]["latencies"]["WARP_SHUFFLE"] = 3
        with pytest.raises(ValueError, match="unknown latency op"):
            config_from_dict(doc)


class TestJobSpec:
    def test_round_trip(self, tiny_config):
        spec = JobSpec.of(tiny_config, ["mcf", "gzip"])
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.run_id == spec.run_id

    def test_empty_apps_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="non-empty"):
            JobSpec.from_dict({"config": {}, "apps": []})
        with pytest.raises(ValueError, match="non-empty"):
            JobSpec.from_dict({"config": {}, "apps": ["mcf", 3]})


class TestCampaignExpansion:
    def test_names_cover_figures_and_ablations(self):
        names = campaign_names()
        assert "fig10" in names and "fig1" in names

    def test_fig10_expands_without_simulating(self, tiny_config):
        jobs = campaign_jobs("fig10", tiny_config, mixes=["2-MEM"])
        # 8 schedulers x 1 mix + baselines; exact count belongs to the
        # driver -- what matters here: multiple jobs, zero simulations,
        # all at the submitted budget.
        assert len(jobs) > 8
        assert all(
            c.instructions_per_thread == tiny_config.instructions_per_thread
            or c.instructions_per_thread
            % tiny_config.instructions_per_thread == 0
            for c, _ in jobs
        )

    def test_jobs_are_deduplicated(self, tiny_config):
        jobs = campaign_jobs("fig10", tiny_config, mixes=["2-MEM", "4-MEM"])
        identities = [(c.cache_key(), a) for c, a in jobs]
        assert len(identities) == len(set(identities))

    def test_fig1_takes_no_mixes(self, tiny_config):
        jobs = campaign_jobs("fig1", tiny_config, mixes=["2-MEM"])
        assert jobs  # mixes ignored for fig1, not an error

    def test_unknown_experiment_is_loud(self, tiny_config):
        with pytest.raises(KeyError, match="unknown campaign"):
            campaign_jobs("fig99", tiny_config)

    def test_campaign_id_stable_and_order_free(self, tiny_config):
        jobs = campaign_jobs("fig10", tiny_config, mixes=["2-MEM"])
        assert campaign_id("fig10", jobs) == campaign_id(
            "fig10", list(reversed(jobs))
        )
        assert campaign_id("fig10", jobs) != campaign_id("fig11", jobs)
