"""Tests for the content-addressed ResultStore (and the cache CAS fix)."""

import pickle
import threading

from repro.experiments.parallel import ResultCache
from repro.experiments.runner import run_mix
from repro.service.store import ResultStore, payload_digest


def _payload(config, apps=("gzip",)):
    return pickle.dumps(
        run_mix(config, apps), protocol=pickle.HIGHEST_PROTOCOL
    )


class TestKeys:
    def test_key_matches_cache_file_naming(self, tiny_config, tmp_path):
        """A store over an old --cache-dir serves old cache entries."""
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        assert store.path_for_key(key) == ResultCache(tmp_path).path_for(
            tiny_config, ("gzip",)
        )

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "../escape", "ABCDEF", "deadbeef/../../x"):
            try:
                store.path_for_key(bad)
            except ValueError:
                continue
            raise AssertionError(f"malformed key accepted: {bad!r}")


class TestPublish:
    def test_first_writer_wins(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        data = _payload(tiny_config)
        assert store.publish(key, data) is True
        assert store.publish(key, data) is False
        assert store.get_bytes(key) == data

    def test_put_returns_publish_outcome(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        assert store.put(tiny_config, ("gzip",), result) is True
        assert store.put(tiny_config, ("gzip",), result) is False

    def test_concurrent_writers_single_entry(self, tiny_config, tmp_path):
        """Regression: two runners sharing a cache dir race on one key.

        Before compare-and-publish, both writers staged to the *same*
        pid-named temp file; interleaved writes could tear it.  Now
        each stages privately and exactly one hard-link publishes
        (link(2) fails on an existing name, so there is no
        check-then-act window).
        """
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        data = _payload(tiny_config)
        outcomes = []
        barrier = threading.Barrier(8)

        def writer():
            barrier.wait()
            outcomes.append(store.publish(key, data))

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(outcomes) == 1  # exactly one publish succeeded
        assert store.get_bytes(key) == data
        assert not list(tmp_path.glob("*.tmp"))  # losers cleaned up

    def test_concurrent_cache_writers_two_instances(
        self, tiny_config, tmp_path
    ):
        """Two independent ResultCache objects over one directory."""
        a, b = ResultCache(tmp_path), ResultCache(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        outcomes = []
        barrier = threading.Barrier(2)

        def writer(cache):
            barrier.wait()
            outcomes.append(cache.put(tiny_config, ("gzip",), result))

        threads = [
            threading.Thread(target=writer, args=(c,)) for c in (a, b)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(outcomes) == 1
        loaded = ResultCache(tmp_path).get(tiny_config, ("gzip",))
        assert loaded is not None and loaded.ipcs == result.ipcs


class TestIntegrity:
    def test_index_written_and_verified(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        data = _payload(tiny_config)
        store.publish(key, data)
        record = store.index_record(key)
        assert record == {"sha256": payload_digest(data), "size": len(data)}
        report = store.verify()
        assert report.clean and report.ok == 1

    def test_tampered_entry_quarantined(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        store.publish(key, _payload(tiny_config))
        store.path_for_key(key).write_bytes(b"flipped bits")
        assert store.get_bytes(key) is None  # digest mismatch -> miss
        assert store.corrupt == 1
        assert store.index_record(key) is None  # de-indexed
        assert (store.quarantine_dir / f"{key}.pkl").exists()

    def test_unindexed_cache_entry_healed(self, tiny_config, tmp_path):
        """Entries written by a plain ResultCache get indexed on read."""
        cache = ResultCache(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        cache.put(tiny_config, ("gzip",), result)
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        assert store.index_record(key) is None
        loaded = store.get_by_key(key)
        assert loaded is not None and loaded.ipcs == result.ipcs
        assert store.index_record(key) is not None

    def test_unindexed_garbage_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" * 32
        store.path_for_key(key).write_bytes(b"not a pickle")
        assert store.get_bytes(key) is None
        assert store.corrupt == 1

    def test_verify_heals_and_reports_missing(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        data = _payload(tiny_config)
        store.publish(key, data)
        # Foreign (unindexed) entry from a plain cache writer.
        other = tiny_config.with_(scheduler="fcfs")
        ResultCache(tmp_path).put(other, ("gzip",), run_mix(other, ("gzip",)))
        # Indexed entry whose file vanished.
        ghost = "cd" * 32
        store._entries[ghost] = {"sha256": "0" * 64, "size": 1}
        report = store.verify()
        assert report.ok == 1 and report.healed == 1
        assert report.missing == [ghost]
        assert not report.clean
        assert store.verify().clean  # second pass: everything indexed

    def test_reindex_rebuilds_from_payloads(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        store.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        store.index_path.unlink()
        fresh = ResultStore(tmp_path)
        assert fresh.index_record(store.key_for(tiny_config, ("gzip",))) is None
        assert fresh.reindex() == 1
        assert fresh.verify().clean


class TestMaintenance:
    def test_stats(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        data = _payload(tiny_config)
        store.publish(store.key_for(tiny_config, ("gzip",)), data)
        stats = store.stats()
        assert stats.entries == 1 and stats.indexed == 1
        assert stats.bytes == len(data)
        assert stats.quarantined == 0 and stats.stale_tmp == 0

    def test_gc_drains_quarantine_and_prunes(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        store.publish(key, _payload(tiny_config))
        store.path_for_key(key).write_bytes(b"junk")
        assert store.get_bytes(key) is None  # quarantines + removes file
        (tmp_path / "leftover.pkl.123.456.tmp").write_bytes(b"")
        report = store.gc()
        assert report.quarantined_removed == 1
        assert report.tmp_removed == 1
        assert report.index_pruned == 0  # de-indexed at quarantine time
        assert store.stats().quarantined == 0

    def test_gc_prunes_orphan_index_rows(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        store.publish(key, _payload(tiny_config))
        store.path_for_key(key).unlink()  # vanished outside the store
        assert store.gc().index_pruned == 1
        assert store.index_record(key) is None
