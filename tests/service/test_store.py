"""Tests for the content-addressed ResultStore (and the cache CAS fix)."""

import os
import pickle
import threading
import time

from repro.experiments.parallel import STALE_TMP_SECONDS, ResultCache
from repro.experiments.runner import run_mix
from repro.service.store import ResultStore, job_key, payload_digest


def _payload(config, apps=("gzip",)):
    return pickle.dumps(
        run_mix(config, apps), protocol=pickle.HIGHEST_PROTOCOL
    )


class TestKeys:
    def test_key_matches_cache_file_naming(self, tiny_config, tmp_path):
        """A store over an old --cache-dir serves old cache entries."""
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        assert store.path_for_key(key) == ResultCache(tmp_path).path_for(
            tiny_config, ("gzip",)
        )

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "../escape", "ABCDEF", "deadbeef/../../x"):
            try:
                store.path_for_key(bad)
            except ValueError:
                continue
            raise AssertionError(f"malformed key accepted: {bad!r}")


class TestPublish:
    def test_first_writer_wins(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        data = _payload(tiny_config)
        assert store.publish(key, data) is True
        assert store.publish(key, data) is False
        assert store.get_bytes(key) == data

    def test_put_returns_publish_outcome(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        assert store.put(tiny_config, ("gzip",), result) is True
        assert store.put(tiny_config, ("gzip",), result) is False

    def test_concurrent_writers_single_entry(self, tiny_config, tmp_path):
        """Regression: two runners sharing a cache dir race on one key.

        Before compare-and-publish, both writers staged to the *same*
        pid-named temp file; interleaved writes could tear it.  Now
        each stages privately and exactly one hard-link publishes
        (link(2) fails on an existing name, so there is no
        check-then-act window).
        """
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        data = _payload(tiny_config)
        outcomes = []
        barrier = threading.Barrier(8)

        def writer():
            barrier.wait()
            outcomes.append(store.publish(key, data))

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(outcomes) == 1  # exactly one publish succeeded
        assert store.get_bytes(key) == data
        assert not list(tmp_path.glob("*.tmp"))  # losers cleaned up

    def test_concurrent_cache_writers_two_instances(
        self, tiny_config, tmp_path
    ):
        """Two independent ResultCache objects over one directory."""
        a, b = ResultCache(tmp_path), ResultCache(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        outcomes = []
        barrier = threading.Barrier(2)

        def writer(cache):
            barrier.wait()
            outcomes.append(cache.put(tiny_config, ("gzip",), result))

        threads = [
            threading.Thread(target=writer, args=(c,)) for c in (a, b)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(outcomes) == 1
        loaded = ResultCache(tmp_path).get(tiny_config, ("gzip",))
        assert loaded is not None and loaded.ipcs == result.ipcs


class TestIntegrity:
    def test_index_written_and_verified(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        data = _payload(tiny_config)
        store.publish(key, data)
        record = store.index_record(key)
        assert record == {"sha256": payload_digest(data), "size": len(data)}
        report = store.verify()
        assert report.clean and report.ok == 1

    def test_tampered_entry_quarantined(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        store.publish(key, _payload(tiny_config))
        store.path_for_key(key).write_bytes(b"flipped bits")
        assert store.get_bytes(key) is None  # digest mismatch -> miss
        assert store.corrupt == 1
        assert store.index_record(key) is None  # de-indexed
        assert (store.quarantine_dir / f"{key}.pkl").exists()

    def test_unindexed_cache_entry_healed(self, tiny_config, tmp_path):
        """Entries written by a plain ResultCache get indexed on read."""
        cache = ResultCache(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        cache.put(tiny_config, ("gzip",), result)
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        assert store.index_record(key) is None
        loaded = store.get_by_key(key)
        assert loaded is not None and loaded.ipcs == result.ipcs
        assert store.index_record(key) is not None

    def test_unindexed_garbage_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" * 32
        store.path_for_key(key).write_bytes(b"not a pickle")
        assert store.get_bytes(key) is None
        assert store.corrupt == 1

    def test_verify_heals_and_reports_missing(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        data = _payload(tiny_config)
        store.publish(key, data)
        # Foreign (unindexed) entry from a plain cache writer.
        other = tiny_config.with_(scheduler="fcfs")
        ResultCache(tmp_path).put(other, ("gzip",), run_mix(other, ("gzip",)))
        # Indexed entry whose file vanished.
        ghost = "cd" * 32
        store._entries[ghost] = {"sha256": "0" * 64, "size": 1}
        report = store.verify()
        assert report.ok == 1 and report.healed == 1
        assert report.missing == [ghost]
        assert not report.clean
        assert store.verify().clean  # second pass: everything indexed

    def test_reindex_rebuilds_from_payloads(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        store.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        store.index_path.unlink()
        fresh = ResultStore(tmp_path)
        assert fresh.index_record(store.key_for(tiny_config, ("gzip",))) is None
        assert fresh.reindex() == 1
        assert fresh.verify().clean


class TestMaintenance:
    def test_stats(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        data = _payload(tiny_config)
        store.publish(store.key_for(tiny_config, ("gzip",)), data)
        stats = store.stats()
        assert stats.entries == 1 and stats.indexed == 1
        assert stats.bytes == len(data)
        assert stats.quarantined == 0 and stats.stale_tmp == 0

    def test_gc_drains_quarantine_and_prunes(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        store.publish(key, _payload(tiny_config))
        store.path_for_key(key).write_bytes(b"junk")
        assert store.get_bytes(key) is None  # quarantines + removes file
        leftover = tmp_path / "leftover.pkl.123.456.tmp"
        leftover.write_bytes(b"")
        # Backdate it: only *stale* tmp files are orphans — a young one
        # may belong to a writer mid-publish and must be left alone.
        old = time.time() - 2 * STALE_TMP_SECONDS
        os.utime(leftover, (old, old))
        fresh = tmp_path / "inflight.pkl.789.012.tmp"
        fresh.write_bytes(b"")
        report = store.gc()
        assert report.quarantined_removed == 1
        assert report.tmp_removed == 1
        assert fresh.exists()  # in-flight writer's tmp survives
        fresh.unlink()
        assert report.index_pruned == 0  # de-indexed at quarantine time
        assert store.stats().quarantined == 0

    def test_gc_prunes_orphan_index_rows(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        store.publish(key, _payload(tiny_config))
        store.path_for_key(key).unlink()  # vanished outside the store
        assert store.gc().index_pruned == 1
        assert store.index_record(key) is None


class TestModuleLevelKey:
    def test_job_key_matches_store_derivation(self, tiny_config, tmp_path):
        """The client-side key (no store instance) is the store's key."""
        store = ResultStore(tmp_path)
        for apps in (("gzip",), ("mcf", "art")):
            assert job_key(tiny_config, apps) == store.key_for(
                tiny_config, apps
            )

    def test_integrity_summary_is_cheap_and_accurate(
        self, tiny_config, tmp_path
    ):
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        store.publish(key, _payload(tiny_config))
        assert store.integrity() == {
            "entries": 1, "indexed": 1, "quarantined": 0, "corrupt_reads": 0,
        }
        store.path_for_key(key).write_bytes(b"junk")
        assert store.get_bytes(key) is None
        summary = store.integrity()
        assert summary["entries"] == 0 and summary["quarantined"] == 1
        assert summary["corrupt_reads"] == 1


class TestConcurrentMaintenance:
    """Satellite: verify/gc racing live writers and quarantine collisions."""

    def _payloads(self, tiny_config, n):
        configs = [
            tiny_config.with_(instructions_per_thread=300 + 10 * i)
            for i in range(n)
        ]
        return [
            (job_key(c, ("gzip",)), _payload(c)) for c in configs
        ]

    def test_verify_under_concurrent_writers(self, tiny_config, tmp_path):
        """verify() racing publishers must neither crash nor quarantine
        a good entry; once writers finish, the store verifies clean."""
        store = ResultStore(tmp_path)
        jobs = self._payloads(tiny_config, 6)
        barrier = threading.Barrier(7)
        errors = []

        def writer(key, data):
            barrier.wait()
            try:
                store.publish(key, data)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        def verifier():
            barrier.wait()
            try:
                for _ in range(5):
                    report = store.verify()
                    assert not report.corrupt
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=job) for job in jobs
        ] + [threading.Thread(target=verifier)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        final = store.verify()
        assert final.clean and final.ok == len(jobs)
        for key, data in jobs:
            assert store.get_bytes(key) == data

    def test_gc_under_concurrent_writers(self, tiny_config, tmp_path):
        """gc() draining quarantine/tmp while publishers land new
        entries must not eat a freshly published result."""
        store = ResultStore(tmp_path)
        (store.quarantine_dir).mkdir(exist_ok=True)
        (store.quarantine_dir / "old.pkl").write_bytes(b"junk")
        jobs = self._payloads(tiny_config, 6)
        barrier = threading.Barrier(7)
        errors = []

        def writer(key, data):
            barrier.wait()
            try:
                store.publish(key, data)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        def collector():
            barrier.wait()
            try:
                for _ in range(5):
                    store.gc()
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=job) for job in jobs
        ] + [threading.Thread(target=collector)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        store.gc()
        assert store.stats().quarantined == 0
        for key, data in jobs:
            assert store.get_bytes(key) == data
        assert store.verify().clean

    def test_quarantine_directory_collision(self, tiny_config, tmp_path):
        """A file squatting on the quarantine *path* must not crash a
        read of a corrupt entry -- the store degrades to counting the
        sighting and reporting a miss."""
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        store.publish(key, _payload(tiny_config))
        store.path_for_key(key).write_bytes(b"flipped bits")
        store.quarantine_dir.parent.mkdir(exist_ok=True)
        (tmp_path / "quarantine").write_bytes(b"not a directory")
        assert store.get_bytes(key) is None  # miss, not an exception
        assert store.corrupt == 1
        # The corrupt file stayed put (couldn't be moved), so the next
        # read pays the check again but still degrades gracefully.
        assert store.get_bytes(key) is None

    def test_concurrent_quarantine_of_one_entry(self, tiny_config, tmp_path):
        """Two readers hitting the same corrupt entry race to
        quarantine it; the loser's os.replace fails and both report a
        miss."""
        store = ResultStore(tmp_path)
        key = store.key_for(tiny_config, ("gzip",))
        store.publish(key, _payload(tiny_config))
        store.path_for_key(key).write_bytes(b"flipped bits")
        barrier = threading.Barrier(4)
        outcomes = []

        def reader():
            barrier.wait()
            outcomes.append(store.get_bytes(key))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes == [None] * 4
        assert (store.quarantine_dir / f"{key}.pkl").exists()
