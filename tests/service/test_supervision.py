"""Tests for lease-based supervision: the log, the supervisor, and the
scheduler's recovery paths (expiry -> requeue, crash -> read-only,
orphan reclamation on resume, clean shutdown records)."""

import json
import threading

import pytest

from repro.experiments.resilience import RetryPolicy
from repro.experiments.runner import run_mix
from repro.faults import FaultPlan, FaultSpec
from repro.service.scheduler import CampaignScheduler
from repro.service.store import ResultStore
from repro.service.supervision import (
    LeaseLog,
    Supervisor,
    SupervisionStats,
)


def _queue_events(store_dir):
    path = store_dir / "service" / "queue.jsonl"
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestLeaseLog:
    def test_grant_release_roundtrip(self, tmp_path):
        log = LeaseLog(tmp_path / "leases.jsonl")
        lease = log.grant("k1", "run-1", "batch-1", attempt=0, now=100.0)
        assert log.held("k1")
        assert not lease.expired(100.0 + lease.lease_s - 1)
        assert lease.expired(100.0 + lease.lease_s)
        assert log.release("k1", "done") is True
        assert log.release("k1", "done") is False  # already gone
        assert log.completions() == {"k1": 1}

    def test_release_validates_outcome(self, tmp_path):
        log = LeaseLog(tmp_path / "leases.jsonl")
        log.grant("k1", "run-1", "b", attempt=0)
        with pytest.raises(ValueError, match="outcome"):
            log.release("k1", "exploded")

    def test_renewal_pushes_deadline(self, tmp_path):
        log = LeaseLog(tmp_path / "leases.jsonl")
        log.grant("k1", "r", "b", attempt=0, lease_s=10.0, now=0.0)
        assert log.expired(now=10.0) != []
        assert log.renew("k1", now=10.0)
        assert log.expired(now=10.0) == []
        assert log.expired(now=20.0) != []
        assert not log.renew("missing")

    def test_reclaim_writes_reason(self, tmp_path):
        log = LeaseLog(tmp_path / "leases.jsonl")
        log.grant("k1", "r", "b", attempt=2)
        taken = log.reclaim("k1", "lease-expired")
        assert taken is not None and taken.attempt == 2
        assert log.reclaim("k1", "lease-expired") is None
        events = log.history()
        assert events[-1]["event"] == "reclaim"
        assert events[-1]["reason"] == "lease-expired"
        # Only release/done counts as a completion.
        assert log.completions() == {}

    def test_orphaned_grants_reclaimed_on_resume(self, tmp_path):
        path = tmp_path / "leases.jsonl"
        first = LeaseLog(path)
        first.grant("done-key", "r1", "b", attempt=0)
        first.release("done-key", "done")
        first.grant("orphan-key", "r2", "b", attempt=0)
        # kill -9: no release, no close.
        stats = SupervisionStats()
        resumed = LeaseLog(path, resume=True, stats=stats)
        assert stats.orphans_recovered == 1
        assert not resumed.held("orphan-key")
        reclaims = [
            e for e in resumed.history() if e["event"] == "reclaim"
        ]
        assert [r["key"] for r in reclaims] == ["orphan-key"]
        assert reclaims[0]["reason"] == "orphaned"
        assert resumed.completions() == {"done-key": 1}

    def test_store_present_orphan_completed_on_resume(self, tmp_path):
        """A kill -9 can land between the store write and the lease
        release (they are separate fsyncs).  On resume the store entry
        is proof of completion, so the orphan gets the swallowed
        release/done record instead of an ``orphaned`` reclaim — the
        exactly-once proof must count the job that did run."""
        path = tmp_path / "leases.jsonl"
        first = LeaseLog(path)
        first.grant("landed-key", "r1", "batch-1", attempt=1)
        first.grant("lost-key", "r2", "batch-1", attempt=0)
        # kill -9: no release, no close.
        stats = SupervisionStats()
        resumed = LeaseLog(
            path,
            resume=True,
            stats=stats,
            has_result=lambda key: key == "landed-key",
        )
        assert stats.orphans_recovered == 2
        assert stats.released == 1
        assert stats.reclaimed == 1
        assert not resumed.held("landed-key")
        assert resumed.completions() == {"landed-key": 1}
        events = resumed.history()
        done = [
            e
            for e in events
            if e["event"] == "release" and e["outcome"] == "done"
        ]
        assert [(e["key"], e["holder"], e["attempt"]) for e in done] == [
            ("landed-key", "batch-1", 1)
        ]
        reclaims = [e for e in events if e["event"] == "reclaim"]
        assert [(r["key"], r["reason"]) for r in reclaims] == [
            ("lost-key", "orphaned")
        ]

    def test_no_timestamps_persisted(self, tmp_path):
        """Determinism: lease records carry durations, never clocks."""
        log = LeaseLog(tmp_path / "leases.jsonl")
        log.grant("k1", "r", "b", attempt=0)
        log.renew("k1")
        log.release("k1", "done")
        for event in log.history():
            for field in ("deadline", "time", "timestamp", "now"):
                assert field not in event

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "leases.jsonl"
        log = LeaseLog(path)
        log.grant("k1", "r", "b", attempt=0)
        log.close()
        with open(path, "a") as handle:
            handle.write('{"event": "grant", "key": "torn')
        resumed = LeaseLog(path, resume=True)
        assert [e["key"] for e in resumed.history() if e["event"] == "reclaim"] == ["k1"]


class TestSupervisor:
    def _supervisor(self, log, landed=None, crashed=lambda: False):
        reclaimed, released = [], []
        landed = set() if landed is None else landed
        sup = Supervisor(
            leases=log,
            cond=threading.Condition(),
            has_result=lambda key: key in landed,
            on_expired=reclaimed.extend,
            is_crashed=crashed,
            on_landed=released.append,
        )
        return sup, reclaimed, released

    def test_landing_releases_and_renews_siblings(self, tmp_path):
        log = LeaseLog(tmp_path / "leases.jsonl")
        log.grant("a", "r1", "b", attempt=0, lease_s=10.0, now=0.0)
        log.grant("b", "r2", "b", attempt=0, lease_s=10.0, now=0.0)
        sup, reclaimed, released = self._supervisor(log, landed={"a"})
        # Past both deadlines, but "a" landed -> progress renews "b".
        assert sup.tick(now=50.0) == []
        assert released == ["a"]
        assert not log.held("a") and log.held("b")
        assert reclaimed == []
        assert log.completions() == {"a": 1}

    def test_expired_lease_reclaimed(self, tmp_path):
        log = LeaseLog(tmp_path / "leases.jsonl")
        log.grant("a", "r1", "b", attempt=0, lease_s=10.0, now=0.0)
        sup, reclaimed, _ = self._supervisor(log)
        assert sup.tick(now=5.0) == []  # within budget
        taken = sup.tick(now=10.0)
        assert [lease.key for lease in taken] == ["a"]
        assert [lease.key for lease in reclaimed] == ["a"]
        assert not log.held("a")

    def test_crash_reclaims_everything(self, tmp_path):
        log = LeaseLog(tmp_path / "leases.jsonl")
        log.grant("a", "r1", "b", attempt=0, lease_s=1000.0, now=0.0)
        log.grant("b", "r2", "b", attempt=0, lease_s=1000.0, now=0.0)
        sup, reclaimed, _ = self._supervisor(log, crashed=lambda: True)
        sup.tick(now=1.0)  # deadlines are far away; crash trumps them
        assert sorted(lease.key for lease in reclaimed) == ["a", "b"]
        reasons = {
            e["reason"] for e in log.history() if e["event"] == "reclaim"
        }
        assert reasons == {"scheduler-crashed"}

    def test_thread_lifecycle(self, tmp_path):
        log = LeaseLog(tmp_path / "leases.jsonl")
        sup, _, _ = self._supervisor(log)
        sup.poll_s = 0.01
        sup.start()
        ticks_seen = threading.Event()

        def watch():
            while sup.ticks < 3:
                pass
            ticks_seen.set()

        threading.Thread(target=watch, daemon=True).start()
        assert ticks_seen.wait(5.0)
        sup.stop()


class TestSchedulerRecovery:
    def test_expired_lease_requeues_and_completes(
        self, tiny_config, tmp_path
    ):
        """A wedged batch's lease expires -> reclaim -> requeue -> the
        retry completes, and the lease log still shows exactly one
        completion."""
        store = ResultStore(tmp_path)
        scheduler = CampaignScheduler(
            store, policy=RetryPolicy(), supervise=False, lease_s=900.0
        )
        status = scheduler.submit_job(tiny_config, ("gzip",))
        key = status["key"]
        # Fake the wedge: grant is on the books, job marked running,
        # but no worker is executing it.
        with scheduler._cond:
            job = scheduler._jobs[key]
            job.state = "running"
            scheduler._queue.clear()
            scheduler.leases.grant(
                key, status["run_id"], "batch-1", attempt=0, lease_s=0.0
            )
        reclaimed = scheduler.supervisor.tick()
        assert [lease.key for lease in reclaimed] == [key]
        assert scheduler.job_status(key)["state"] == "queued"
        assert scheduler.sup_stats.requeues == 1
        scheduler.start()
        assert scheduler.drain(timeout=120)
        scheduler.stop()
        assert scheduler.job_status(key)["state"] == "done"
        assert scheduler.leases.completions() == {key: 1}
        requeue_events = [
            e for e in _queue_events(tmp_path) if e["event"] == "requeue"
        ]
        assert len(requeue_events) == 1

    def test_requeue_budget_exhaustion_fails_job(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        scheduler = CampaignScheduler(
            store, supervise=False, max_requeues=1
        )
        status = scheduler.submit_job(tiny_config, ("gzip",))
        key = status["key"]
        for _ in range(2):
            with scheduler._cond:
                job = scheduler._jobs[key]
                job.state = "running"
                scheduler._queue.clear()
                scheduler.leases.grant(
                    key, status["run_id"], "b", attempt=job.requeues,
                    lease_s=0.0,
                )
            scheduler.supervisor.tick()
        final = scheduler.job_status(key)
        assert final["state"] == "failed"
        assert "lease expired" in final["detail"]
        scheduler.stop()

    def test_injected_crash_flips_scheduler_to_unhealthy(
        self, tiny_config, tmp_path
    ):
        """A service-scope exception fault escapes the batch handler,
        kills the worker thread, and the supervisor reclaims the
        in-flight leases with reason scheduler-crashed."""
        plan = FaultPlan(
            specs=(FaultSpec(kind="exception", scope="service"),), seed=7
        )
        store = ResultStore(tmp_path)
        scheduler = CampaignScheduler(
            store, supervise=False, fault_plan=plan
        )
        scheduler.start()
        key = scheduler.submit_job(tiny_config, ("gzip",))["key"]
        worker = scheduler._thread
        worker.join(30)
        assert not worker.is_alive()
        assert scheduler.crashed and not scheduler.healthy
        assert scheduler.sup_stats.scheduler_crashes == 1
        scheduler.supervisor.tick()
        assert scheduler.job_status(key)["state"] == "failed"
        reasons = {
            e["reason"]
            for e in scheduler.leases.history()
            if e["event"] == "reclaim"
        }
        assert reasons == {"scheduler-crashed"}
        scheduler.stop()

    def test_crash_failed_jobs_rerun_on_resume(self, tiny_config, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(kind="exception", scope="service"),), seed=7
        )
        store = ResultStore(tmp_path)
        scheduler = CampaignScheduler(store, supervise=False, fault_plan=plan)
        scheduler.start()
        key = scheduler.submit_job(tiny_config, ("gzip",))["key"]
        scheduler._thread.join(30)
        scheduler.supervisor.tick()  # reclaim + mark failed (not terminal)
        scheduler.stop()
        # Resume WITHOUT the fault plan: the job must re-queue and run.
        resumed = CampaignScheduler(
            ResultStore(tmp_path), resume=True, supervise=False
        )
        assert resumed.job_status(key)["state"] == "queued"
        resumed.start()
        assert resumed.drain(timeout=120)
        resumed.stop()
        assert resumed.job_status(key)["state"] == "done"

    def test_supervision_counters_in_manifest(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        scheduler = CampaignScheduler(store, supervise=False)
        assert "supervision" not in scheduler.manifest().extra
        scheduler.sup_stats.requeues = 2
        assert scheduler.manifest().extra["supervision"]["requeues"] == 2
        scheduler.stop()


class TestCleanShutdown:
    def test_stop_writes_shutdown_record(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        with CampaignScheduler(store, policy=RetryPolicy()) as scheduler:
            key = scheduler.submit_job(tiny_config, ("gzip",))["key"]
            assert scheduler.drain(timeout=120)
        events = _queue_events(tmp_path)
        shutdown = [e for e in events if e["event"] == "shutdown"]
        assert len(shutdown) == 1
        assert shutdown[0]["clean"] is True
        assert key in shutdown[0]["done"]

    def test_resume_after_clean_stop_requeues_nothing(
        self, tiny_config, tmp_path
    ):
        store = ResultStore(tmp_path)
        with CampaignScheduler(store, policy=RetryPolicy()) as scheduler:
            scheduler.submit_job(tiny_config, ("gzip",))
            assert scheduler.drain(timeout=120)
        resumed = CampaignScheduler(
            ResultStore(tmp_path), resume=True, supervise=False
        )
        assert resumed.queue_depth == 0
        assert resumed.state_counts() == {"done": 1}
        resumed.stop()

    def test_terminal_failures_survive_resume(self, tiny_config, tmp_path):
        """A job that exhausted its requeue budget stays failed after
        --resume instead of silently re-running."""
        store = ResultStore(tmp_path)
        scheduler = CampaignScheduler(store, supervise=False, max_requeues=0)
        status = scheduler.submit_job(tiny_config, ("gzip",))
        key = status["key"]
        with scheduler._cond:
            job = scheduler._jobs[key]
            job.state = "running"
            scheduler._queue.clear()
            scheduler.leases.grant(
                key, status["run_id"], "b", attempt=0, lease_s=0.0
            )
        scheduler.supervisor.tick()
        assert scheduler.job_status(key)["state"] == "failed"
        scheduler.stop()
        resumed = CampaignScheduler(
            ResultStore(tmp_path), resume=True, supervise=False
        )
        final = resumed.job_status(key)
        assert final["state"] == "failed"
        assert resumed.queue_depth == 0
        # An explicit resubmission clears the terminal state.
        again = resumed.submit_job(tiny_config, ("gzip",))
        assert again["state"] == "queued"
        resumed.stop()

    def test_shutdown_releases_held_leases(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path)
        scheduler = CampaignScheduler(store, supervise=False)
        scheduler.leases.grant("ab" * 32, "r", "b", attempt=0)
        scheduler.stop()
        events = scheduler.leases.history()
        releases = [e for e in events if e["event"] == "release"]
        assert releases and releases[-1]["outcome"] == "shutdown"
