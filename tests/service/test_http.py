"""End-to-end HTTP tests: exactly-once over the wire, bit-identity,
warm-path behaviour, and the transparent ServiceRunner."""

import json
import pickle
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine.oracle import diff_values
from repro.experiments.resilience import RetryPolicy
from repro.experiments.runner import Runner
from repro.service.api import make_server
from repro.service.client import ServiceClient, ServiceError, ServiceRunner
from repro.service.scheduler import CampaignScheduler
from repro.service.store import ResultStore, payload_digest


@pytest.fixture
def service(tmp_path):
    """A live service on an ephemeral port; yields (client, scheduler)."""
    store = ResultStore(tmp_path / "store")
    scheduler = CampaignScheduler(store, policy=RetryPolicy()).start()
    server = make_server(scheduler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(url=server.url), scheduler
    finally:
        server.shutdown()
        server.server_close()
        scheduler.stop()
        thread.join(5)


def _journal_completes(scheduler, rid):
    lines = scheduler.journal.path.read_text().splitlines()
    return [
        r for r in map(json.loads, filter(None, map(str.strip, lines)))
        if r.get("event") == "complete" and r.get("job") == rid
    ]


class TestExactlyOnce:
    def test_concurrent_posts_execute_once(self, service, tiny_config):
        client, scheduler = service
        responses = []
        barrier = threading.Barrier(6)

        def post():
            barrier.wait()
            responses.append(client.submit(tiny_config, ["gzip"]))

        threads = [threading.Thread(target=post) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(responses) == 6
        keys = {r["key"] for r in responses}
        assert len(keys) == 1
        (key,) = keys
        final = client.wait_job(key, timeout=120)
        assert final["state"] == "done"
        assert len(_journal_completes(scheduler, final["run_id"])) == 1

    def test_warm_hit_never_spawns_a_simulation(self, service, tiny_config):
        client, scheduler = service
        client.run(tiny_config, ["gzip"], timeout=120)
        batches = scheduler.batches
        warm_before = client.metric("repro_service_hits_warm_total") or 0
        for _ in range(3):
            status = client.submit(tiny_config, ["gzip"])
            assert status["state"] == "done"
            assert status["source"] == "warm"
        assert scheduler.batches == batches  # scheduler never woke up
        assert scheduler.queue_depth == 0
        warm_after = client.metric("repro_service_hits_warm_total")
        assert warm_after >= warm_before + 3


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_fetched_equals_direct_run(self, service, tiny_config, engine):
        client, scheduler = service
        config = tiny_config.with_(engine=engine)
        served = client.run(config, ["mcf", "gzip"], timeout=300)
        direct = Runner().run_mix(config, ("mcf", "gzip"))
        divergences = []
        diff_values(served, direct, "result", divergences)
        assert divergences == []
        # Byte-level: the served payload is the exact pickle a local
        # runner would have produced.
        key = scheduler.store.key_for(config, ("mcf", "gzip"))
        assert client.fetch_bytes(key) == pickle.dumps(
            direct, protocol=pickle.HIGHEST_PROTOCOL
        )

    def test_payload_digest_header(self, service, tiny_config):
        client, scheduler = service
        client.run(tiny_config, ["gzip"], timeout=120)
        key = scheduler.store.key_for(tiny_config, ("gzip",))
        request = urllib.request.Request(
            f"{client.url}/results/{key}/payload"
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            data = resp.read()
            header = resp.headers["X-Payload-SHA256"]
        assert header == payload_digest(data)


class TestHTTPSurface:
    def test_health_and_404(self, service):
        client, _ = service
        assert client.health()["status"] == "ok"
        with pytest.raises(ServiceError, match="404"):
            client.result("ab" * 32)

    def test_manifest_served(self, service, tiny_config):
        client, _ = service
        status = client.submit(tiny_config, ["gzip"])
        final = client.wait_job(status["key"], timeout=120)
        record = client.manifest(final["run_id"])
        assert record["run_id"] == final["run_id"]
        assert record["apps"] == ["gzip"]
        assert record["source"] == "service"

    def test_campaign_over_http(self, service, tiny_config):
        client, _ = service
        status = client.submit_campaign("fig1", config=tiny_config)
        final = client.wait_campaign(status["campaign"], timeout=300)
        assert final["complete"]
        # Resubmission is a warm no-op.
        again = client.submit_campaign("fig1", config=tiny_config)
        assert again["complete"]

    def test_bad_json_is_client_error(self, service):
        client, _ = service
        request = urllib.request.Request(
            f"{client.url}/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400


class TestServiceRunner:
    def test_transparent_drop_in(self, service, tiny_config):
        client, _ = service
        remote = ServiceRunner(client, timeout=300)
        local = Runner()
        jobs = [
            (tiny_config, ("gzip",)),
            (tiny_config.with_(scheduler="fcfs"), ("gzip",)),
            (tiny_config, ("gzip",)),  # duplicate
        ]
        served = remote.run_many(jobs)
        direct = local.run_many(jobs)
        for s, d in zip(served, direct):
            divergences = []
            diff_values(s, d, "result", divergences)
            assert divergences == []
        assert served[0] is served[2]  # memo dedupe

    def test_single_run_and_weighted_speedup(self, service, tiny_config):
        client, _ = service
        remote = ServiceRunner(client, timeout=300)
        ws_remote = remote.weighted_speedup(tiny_config, ["mcf", "gzip"])
        ws_local = Runner().weighted_speedup(tiny_config, ["mcf", "gzip"])
        assert ws_remote == ws_local
        sources = {r.source for r in remote.records}
        assert sources <= {"service", "memo"}
