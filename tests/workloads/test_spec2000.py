"""Tests for the SPEC CPU2000 profile library."""

import pytest

from repro.workloads.spec2000 import PROFILES, get_profile, profile_names


class TestCoverage:
    def test_all_26_applications_present(self):
        assert len(PROFILES) == 26

    def test_expected_names(self):
        expected_int = {
            "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon",
            "perlbmk", "gap", "vortex", "bzip2", "twolf",
        }
        expected_fp = {
            "wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art",
            "equake", "facerec", "ammp", "lucas", "fma3d", "sixtrack",
            "apsi",
        }
        assert expected_int | expected_fp == set(PROFILES)

    def test_lookup(self):
        assert get_profile("mcf").name == "mcf"
        with pytest.raises(KeyError):
            get_profile("doom")

    def test_names_sorted(self):
        names = profile_names()
        assert names == sorted(names)


class TestCategories:
    def test_table2_mem_apps_marked_mem(self):
        for app in ("mcf", "ammp", "swim", "lucas", "equake", "applu",
                    "vpr", "facerec"):
            assert get_profile(app).category == "MEM", app

    def test_table2_ilp_apps_marked_ilp(self):
        for app in ("gzip", "bzip2", "sixtrack", "eon", "mesa", "galgel",
                    "crafty", "wupwise"):
            assert get_profile(app).category == "ILP", app


class TestCalibration:
    @staticmethod
    def expected_dram_rate(profile):
        """Analytic accesses/100 instr from DRAM-resident regions."""
        total_weight = profile.total_region_weight
        rate = 0.0
        for region in profile.regions:
            if region.size_lines > 65536:  # beyond full-scale L3
                rate += (
                    100.0 * profile.mem_frac
                    * (region.weight / total_weight) / region.repeats
                )
        return rate

    def test_mcf_is_most_memory_intensive(self):
        rates = {
            name: self.expected_dram_rate(profile)
            for name, profile in PROFILES.items()
        }
        assert max(rates, key=rates.get) == "mcf"
        assert rates["mcf"] > 4.0

    def test_mem_apps_above_one_per_100(self):
        for app in ("mcf", "ammp", "swim", "lucas"):
            assert self.expected_dram_rate(get_profile(app)) >= 1.5, app

    def test_ilp_apps_below_0_1_per_100(self):
        for app in ("gzip", "eon", "sixtrack", "mesa", "crafty"):
            assert self.expected_dram_rate(get_profile(app)) < 0.1, app

    def test_region_weights_normalized(self):
        for name, profile in PROFILES.items():
            assert profile.total_region_weight == pytest.approx(1.0, abs=0.02), name

    def test_mcf_pointer_chasing_dominant(self):
        assert get_profile("mcf").ptr_chase >= 0.4

    def test_streaming_apps_have_stream_regions(self):
        for app in ("swim", "lucas", "applu", "facerec"):
            kinds = {r.kind for r in get_profile(app).regions}
            assert "stream" in kinds, app
