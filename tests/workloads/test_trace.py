"""Tests for trace recording and replay."""

import io

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import child_rng
from repro.common.types import OpClass
from repro.workloads.generator import SyntheticStream, Uop
from repro.workloads.spec2000 import get_profile
from repro.workloads.trace import (
    TraceStream,
    extract_memory_trace,
    load_trace,
    record_trace,
)


def synthetic(app="gzip", seed=3):
    return SyntheticStream(
        get_profile(app), child_rng(seed, app), thread_id=0, scale=16
    )


class TestRoundTrip:
    def test_record_and_replay_identical(self):
        source = synthetic()
        reference = synthetic()
        buffer = io.StringIO()
        n = record_trace(source, 500, buffer)
        assert n == 500
        buffer.seek(0)
        uops, profile_name = load_trace(buffer)
        assert profile_name == "gzip"
        assert len(uops) == 500
        for uop in uops:
            expected = reference.next_uop()
            assert uop.opc is expected.opc
            assert uop.addr == expected.addr
            assert uop.dep1 == expected.dep1
            assert uop.dep2 == expected.dep2
            assert uop.mispredict == expected.mispredict

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.txt"
        with open(path, "w") as handle:
            record_trace(synthetic(), 100, handle)
        stream = TraceStream.from_file(path)
        assert len(stream) == 100
        assert stream.profile.name == "gzip"


class TestTraceStream:
    def test_loops_when_exhausted(self):
        stream = TraceStream([Uop(OpClass.INT_ALU), Uop(OpClass.BRANCH)])
        kinds = [stream.next_uop().opc for _ in range(5)]
        assert kinds == [
            OpClass.INT_ALU, OpClass.BRANCH,
            OpClass.INT_ALU, OpClass.BRANCH, OpClass.INT_ALU,
        ]
        assert stream.generated == 5

    def test_unknown_profile_falls_back(self):
        stream = TraceStream.from_text(
            "# repro-trace v1 profile=doom\nINT_ALU\n"
        )
        assert stream.profile.name == "trace"

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            TraceStream([])
        with pytest.raises(ConfigError):
            TraceStream.from_text("# just a comment\n")

    def test_runs_on_the_core(self):
        from repro.common.events import EventQueue
        from repro.cache.hierarchy import HierarchyParams, MemoryHierarchy
        from repro.cpu.core import CoreParams, SMTCore

        buffer = io.StringIO()
        record_trace(synthetic(), 400, buffer)
        stream = TraceStream.from_text(buffer.getvalue())
        evq = EventQueue()
        hierarchy = MemoryHierarchy(
            HierarchyParams(scale=32, perfect_l3=True), evq, None
        )
        core = SMTCore(CoreParams(), evq, hierarchy, "icount",
                       [("trace", stream)])
        result = core.run(300)
        assert result.reached_all_targets


class TestParsing:
    def test_bad_opclass_rejected(self):
        with pytest.raises(ConfigError):
            load_trace(io.StringIO("JUMP\n"))

    def test_bad_field_rejected(self):
        with pytest.raises(ConfigError):
            load_trace(io.StringIO("LOAD,z=1\n"))

    def test_blank_lines_skipped(self):
        uops, _ = load_trace(io.StringIO("INT_ALU\n\n\nBRANCH,m=1\n"))
        assert len(uops) == 2
        assert uops[1].mispredict

    def test_count_validated(self):
        with pytest.raises(ConfigError):
            record_trace(synthetic(), 0, io.StringIO())


class TestMemoryExtraction:
    def test_extracts_only_memory_ops(self):
        uops = [
            Uop(OpClass.INT_ALU),
            Uop(OpClass.LOAD, addr=0x40),
            Uop(OpClass.STORE, addr=0x80),
            Uop(OpClass.BRANCH),
        ]
        assert extract_memory_trace(uops) == [(0x40, False), (0x80, True)]
