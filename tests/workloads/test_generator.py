"""Tests for the synthetic µop stream generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.common.rng import child_rng
from repro.common.types import OpClass
from repro.workloads.generator import (
    MAX_DEP_DISTANCE,
    SyntheticStream,
    THREAD_ADDRESS_STRIDE,
)
from repro.workloads.profile import AppProfile, Region
from repro.workloads.spec2000 import get_profile


def make_stream(app="gzip", tid=0, scale=8, seed=3):
    return SyntheticStream(
        get_profile(app), child_rng(seed, f"{app}:{tid}"),
        thread_id=tid, scale=scale,
    )


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = make_stream(seed=1), make_stream(seed=1)
        for _ in range(500):
            ua, ub = a.next_uop(), b.next_uop()
            assert (ua.opc, ua.addr, ua.dep1, ua.dep2, ua.mispredict) == (
                ub.opc, ub.addr, ub.dep1, ub.dep2, ub.mispredict
            )

    def test_different_seed_different_stream(self):
        a, b = make_stream(seed=1), make_stream(seed=2)
        diffs = sum(
            a.next_uop().opc is not b.next_uop().opc for _ in range(200)
        )
        assert diffs > 0


class TestInstructionMix:
    def test_mix_matches_profile(self):
        stream = make_stream("gzip")
        profile = get_profile("gzip")
        n = 20000
        counts = {"mem": 0, "branch": 0}
        for _ in range(n):
            uop = stream.next_uop()
            if uop.opc.is_memory:
                counts["mem"] += 1
            elif uop.opc is OpClass.BRANCH:
                counts["branch"] += 1
        assert counts["mem"] / n == pytest.approx(profile.mem_frac, abs=0.02)
        assert counts["branch"] / n == pytest.approx(
            profile.branch_frac, abs=0.02
        )

    def test_store_fraction(self):
        stream = make_stream("gzip")
        profile = get_profile("gzip")
        loads = stores = 0
        for _ in range(20000):
            uop = stream.next_uop()
            if uop.opc is OpClass.LOAD:
                loads += 1
            elif uop.opc is OpClass.STORE:
                stores += 1
        assert stores / (loads + stores) == pytest.approx(
            profile.store_frac, abs=0.03
        )

    def test_fp_app_issues_fp_ops(self):
        stream = make_stream("swim")
        ops = [stream.next_uop().opc for _ in range(5000)]
        assert any(o.is_fp for o in ops)

    def test_int_app_has_no_fp(self):
        stream = make_stream("mcf")
        ops = [stream.next_uop().opc for _ in range(5000)]
        assert not any(o.is_fp for o in ops)

    def test_mispredict_rate(self):
        stream = make_stream("gzip")
        profile = get_profile("gzip")
        branches = mispredicts = 0
        for _ in range(50000):
            uop = stream.next_uop()
            if uop.opc is OpClass.BRANCH:
                branches += 1
                mispredicts += uop.mispredict
        assert mispredicts / branches == pytest.approx(
            profile.mispredict_rate, abs=0.02
        )


class TestAddresses:
    def test_addresses_within_thread_space(self):
        for tid in (0, 3):
            stream = make_stream(tid=tid)
            base = (tid + 1) * THREAD_ADDRESS_STRIDE
            for _ in range(2000):
                uop = stream.next_uop()
                if uop.opc.is_memory:
                    assert base <= uop.addr < base + THREAD_ADDRESS_STRIDE

    def test_threads_disjoint(self):
        a = make_stream(tid=0)
        b = make_stream(tid=1)
        addrs_a = {u.addr for u in (a.next_uop() for _ in range(3000))
                   if u.opc.is_memory}
        addrs_b = {u.addr for u in (b.next_uop() for _ in range(3000))
                   if u.opc.is_memory}
        assert not (addrs_a & addrs_b)

    def test_addresses_line_aligned(self):
        stream = make_stream()
        for _ in range(1000):
            uop = stream.next_uop()
            if uop.opc.is_memory:
                assert uop.addr % 64 == 0

    def test_footprint_covers_generated_addresses(self):
        stream = make_stream("mcf")
        ranges = [
            (base, base + size)
            for base, size, _ in stream.footprint()
        ]
        for _ in range(3000):
            uop = stream.next_uop()
            if uop.opc.is_memory:
                line = uop.addr // 64
                assert any(lo <= line < hi for lo, hi in ranges)

    def test_scale_shrinks_footprint(self):
        big = make_stream(scale=1)
        small = make_stream(scale=64)
        big_lines = sum(size for _, size, _ in big.footprint())
        small_lines = sum(size for _, size, _ in small.footprint())
        assert small_lines < big_lines

    def test_stream_regions_walk_sequentially(self):
        profile = AppProfile(
            name="walker", category="MEM",
            mem_frac=1.0, store_frac=0.0, branch_frac=0.0,
            mispredict_rate=0.0, fp_frac=0.0, dep_prob=0.0,
            cluster=1000.0,
            regions=(Region(size_lines=1024, weight=1.0, kind="stream",
                            streams=1, repeats=1),),
        )
        stream = SyntheticStream(profile, child_rng(1, "w"), scale=1)
        lines = [stream.next_uop().addr // 64 for _ in range(50)]
        deltas = {lines[i + 1] - lines[i] for i in range(len(lines) - 1)}
        assert deltas <= {1, 1 - 1024}  # +1 with wraparound


class TestDependences:
    def test_distances_bounded(self):
        stream = make_stream("mcf")
        for _ in range(5000):
            uop = stream.next_uop()
            assert 0 <= uop.dep1 <= MAX_DEP_DISTANCE
            assert 0 <= uop.dep2 <= MAX_DEP_DISTANCE

    def test_pointer_chase_targets_previous_load(self):
        profile = AppProfile(
            name="chaser", category="MEM",
            mem_frac=0.5, store_frac=0.0, branch_frac=0.0,
            mispredict_rate=0.0, fp_frac=0.0, ptr_chase=1.0, dep_prob=0.0,
            regions=(Region(size_lines=1000, weight=1.0),),
        )
        stream = SyntheticStream(profile, child_rng(1, "c"), scale=1)
        last_load_index = None
        for i in range(2000):
            uop = stream.next_uop()
            if uop.opc is OpClass.LOAD:
                if (
                    last_load_index is not None
                    and i - last_load_index <= MAX_DEP_DISTANCE
                ):
                    assert uop.dep1 == i - last_load_index
                last_load_index = i


class TestClustering:
    def test_cluster_creates_runs(self):
        """With phased visits, consecutive mem accesses mostly stay in
        one region -- the run-length must exceed the iid baseline."""
        stream = make_stream("ammp")  # cluster=28
        ranges = [
            (base, base + size) for base, size, _ in stream.footprint()
        ]

        def region_of(addr):
            line = addr // 64
            for idx, (lo, hi) in enumerate(ranges):
                if lo <= line < hi:
                    return idx
            return -1

        regions = [
            region_of(u.addr)
            for u in (stream.next_uop() for _ in range(30000))
            if u.opc.is_memory
        ]
        switches = sum(
            regions[i] != regions[i + 1] for i in range(len(regions) - 1)
        )
        mean_run = len(regions) / (switches + 1)
        assert mean_run > 5.0


class TestValidation:
    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticStream(get_profile("gzip"), child_rng(1, "x"), scale=0)

    def test_iterator_protocol(self):
        stream = make_stream()
        it = iter(stream)
        uops = [next(it) for _ in range(10)]
        assert len(uops) == 10
        assert stream.generated == 10


class TestProperties:
    @settings(max_examples=20)
    @given(st.integers(0, 7), st.integers(1, 64))
    def test_any_thread_and_scale_generates(self, tid, scale):
        stream = SyntheticStream(
            get_profile("equake"), child_rng(5, f"{tid}:{scale}"),
            thread_id=tid, scale=scale,
        )
        for _ in range(100):
            uop = stream.next_uop()
            assert isinstance(uop.opc, OpClass)
            if uop.opc.is_memory:
                assert uop.addr > 0


class TestBranchSites:
    def test_branches_carry_pc_and_outcome(self):
        stream = make_stream("gzip")
        branch_pcs = set()
        for _ in range(5000):
            uop = stream.next_uop()
            if uop.opc is OpClass.BRANCH:
                assert uop.pc > 0
                branch_pcs.add(uop.pc)
        # multiple static sites, bounded by the synthesized set
        assert 2 <= len(branch_pcs) <= 256

    def test_sites_disjoint_across_threads(self):
        a = make_stream("gzip", tid=0)
        b = make_stream("gzip", tid=1)
        pcs_a = {u.pc for u in (a.next_uop() for _ in range(3000))
                 if u.opc is OpClass.BRANCH}
        pcs_b = {u.pc for u in (b.next_uop() for _ in range(3000))
                 if u.opc is OpClass.BRANCH}
        assert not (pcs_a & pcs_b)

    def test_loop_sites_produce_patterns(self):
        # at least one site should show a strict taken-run pattern
        stream = make_stream("gzip")  # branch-heavy: dense per-site data
        outcomes = {}
        for _ in range(60000):
            uop = stream.next_uop()
            if uop.opc is OpClass.BRANCH:
                outcomes.setdefault(uop.pc, []).append(uop.taken)
        def looks_loopy(seq):
            if len(seq) < 20:
                return False
            # loop sites: not-taken exactly once per period
            falses = [i for i, t in enumerate(seq) if not t]
            if len(falses) < 2:
                return False
            gaps = {b - a for a, b in zip(falses, falses[1:])}
            return len(gaps) == 1
        assert any(looks_loopy(seq) for seq in outcomes.values())
