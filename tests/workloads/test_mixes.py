"""Tests for the Table 2 workload mixes."""

import pytest

from repro.workloads.mixes import MIXES, WorkloadMix, all_mix_names, get_mix
from repro.workloads.spec2000 import get_profile


class TestTable2Fidelity:
    """The mixes must match the paper's Table 2 verbatim."""

    def test_nine_mixes(self):
        assert len(MIXES) == 9

    def test_2_thread_mixes(self):
        assert get_mix("2-ILP").apps == ("bzip2", "gzip")
        assert get_mix("2-MIX").apps == ("gzip", "mcf")
        assert get_mix("2-MEM").apps == ("mcf", "ammp")

    def test_4_thread_mixes(self):
        assert get_mix("4-ILP").apps == ("bzip2", "gzip", "sixtrack", "eon")
        assert get_mix("4-MIX").apps == ("gzip", "mcf", "bzip2", "ammp")
        assert get_mix("4-MEM").apps == ("mcf", "ammp", "swim", "lucas")

    def test_8_thread_mixes(self):
        assert get_mix("8-ILP").apps == (
            "gzip", "bzip2", "sixtrack", "eon",
            "mesa", "galgel", "crafty", "wupwise",
        )
        assert get_mix("8-MIX").apps == (
            "gzip", "mcf", "bzip2", "ammp",
            "sixtrack", "swim", "eon", "lucas",
        )
        assert get_mix("8-MEM").apps == (
            "mcf", "ammp", "swim", "lucas",
            "equake", "applu", "vpr", "facerec",
        )


class TestComposition:
    def test_thread_counts_match_app_counts(self):
        for mix in MIXES.values():
            assert len(mix.apps) == mix.threads

    def test_mem_mixes_contain_only_mem_apps(self):
        for name in ("4-MEM", "8-MEM"):
            for app in get_mix(name).apps:
                assert get_profile(app).category == "MEM", (name, app)

    def test_ilp_mixes_contain_only_ilp_apps(self):
        for name in ("2-ILP", "4-ILP", "8-ILP"):
            for app in get_mix(name).apps:
                assert get_profile(app).category == "ILP", (name, app)

    def test_mix_mixes_are_half_and_half(self):
        for name in ("2-MIX", "4-MIX", "8-MIX"):
            mix = get_mix(name)
            mem = sum(
                get_profile(a).category == "MEM" for a in mix.apps
            )
            assert mem == mix.threads // 2, name


class TestHelpers:
    def test_order_by_threads_then_kind(self):
        assert all_mix_names() == [
            "2-ILP", "2-MIX", "2-MEM",
            "4-ILP", "4-MIX", "4-MEM",
            "8-ILP", "8-MIX", "8-MEM",
        ]

    def test_unknown_mix(self):
        with pytest.raises(KeyError):
            get_mix("16-MEM")

    def test_mismatched_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix("bad", 3, "MEM", ("mcf", "ammp"))

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            WorkloadMix("bad", 1, "MEM", ("quake3",))
