"""Tests for the application profile model."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.profile import AppProfile, Region


def minimal_profile(**overrides):
    kwargs = dict(
        name="test",
        category="ILP",
        mem_frac=0.3,
        store_frac=0.3,
        branch_frac=0.1,
        mispredict_rate=0.05,
        fp_frac=0.0,
        regions=(Region(size_lines=100, weight=1.0),),
    )
    kwargs.update(overrides)
    return AppProfile(**kwargs)


class TestRegion:
    def test_defaults(self):
        r = Region(size_lines=100, weight=0.5)
        assert r.kind == "random"
        assert r.repeats == 1
        assert r.burst == 1

    def test_invalid_kind(self):
        with pytest.raises(ConfigError):
            Region(size_lines=10, weight=1.0, kind="zigzag")

    def test_nonpositive_size(self):
        with pytest.raises(ConfigError):
            Region(size_lines=0, weight=1.0)

    def test_nonpositive_weight(self):
        with pytest.raises(ConfigError):
            Region(size_lines=10, weight=0.0)

    def test_stream_params_validated(self):
        with pytest.raises(ConfigError):
            Region(size_lines=10, weight=1.0, kind="stream", streams=0)
        with pytest.raises(ConfigError):
            Region(size_lines=10, weight=1.0, repeats=0)
        with pytest.raises(ConfigError):
            Region(size_lines=10, weight=1.0, burst=0)


class TestAppProfile:
    def test_valid_profile(self):
        p = minimal_profile()
        assert p.footprint_lines == 100
        assert p.total_region_weight == pytest.approx(1.0)

    def test_unknown_category(self):
        with pytest.raises(ConfigError):
            minimal_profile(category="HYBRID")

    def test_fraction_out_of_range(self):
        with pytest.raises(ConfigError):
            minimal_profile(mem_frac=1.5)
        with pytest.raises(ConfigError):
            minimal_profile(mispredict_rate=-0.1)

    def test_mem_plus_branch_bounded(self):
        with pytest.raises(ConfigError):
            minimal_profile(mem_frac=0.7, branch_frac=0.4)

    def test_needs_regions(self):
        with pytest.raises(ConfigError):
            minimal_profile(regions=())

    def test_dep_mean_bounded(self):
        with pytest.raises(ConfigError):
            minimal_profile(dep_mean=0.5)

    def test_cluster_bounded(self):
        with pytest.raises(ConfigError):
            minimal_profile(cluster=0.0)
