"""Tests for workload-stream analysis and profile validation."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import child_rng
from repro.workloads.analysis import analyze_stream, validate_profile
from repro.workloads.generator import SyntheticStream
from repro.workloads.spec2000 import PROFILES, get_profile


def stream_for(app, seed=11):
    return SyntheticStream(
        get_profile(app), child_rng(seed, app), thread_id=0, scale=8
    )


class TestAnalyzeStream:
    def test_counts_sum_to_window(self):
        stats = analyze_stream(stream_for("gzip"), window=5000)
        assert stats.instructions == 5000
        assert sum(stats.opclass_counts.values()) == 5000

    def test_fractions_match_profile(self):
        profile = get_profile("swim")
        stats = analyze_stream(stream_for("swim"), window=20000)
        assert stats.mem_frac == pytest.approx(profile.mem_frac, abs=0.02)
        assert stats.branch_frac == pytest.approx(
            profile.branch_frac, abs=0.01
        )

    def test_reuse_reflects_repeats(self):
        # swim's streams repeat each line ~5x plus stack hits: reuse > 2
        stats = analyze_stream(stream_for("swim"), window=20000)
        assert stats.line_reuse > 2.0

    def test_pointer_app_touches_more_distinct_lines(self):
        mcf = analyze_stream(stream_for("mcf"), window=20000)
        eon = analyze_stream(stream_for("eon"), window=20000)
        assert mcf.distinct_lines > eon.distinct_lines

    def test_invalid_window(self):
        with pytest.raises(ConfigError):
            analyze_stream(stream_for("gzip"), window=0)


class TestValidateProfile:
    @pytest.mark.parametrize("app", sorted(PROFILES))
    def test_every_profile_within_tolerance(self, app):
        problems = validate_profile(stream_for(app), window=20000)
        assert problems == [], problems

    def test_reports_discrepancies_for_mismatched_stream(self):
        class Liar:
            profile = get_profile("mcf")  # claims mcf
            _inner = stream_for("eon")    # generates eon

            def next_uop(self):
                return self._inner.next_uop()

        problems = validate_profile(Liar(), window=10000)
        assert problems  # mem_frac mismatch at minimum
