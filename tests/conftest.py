"""Shared fixtures: small, fast system configurations for tests.

Simulation tests use heavily scaled-down systems (scale 32, tiny
instruction budgets) so the whole suite stays fast while still
exercising every code path of the real models.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import SimSanitizer
from repro.common.events import EventQueue
from repro.experiments.config import SystemConfig


@pytest.fixture
def event_queue() -> EventQueue:
    return EventQueue()


@pytest.fixture
def sanitizer():
    """A :class:`SimSanitizer` that fails the test on any violation.

    Pass it to ``run_mix(..., sanitizer=sanitizer)`` or
    ``build_system(..., sanitizer=sanitizer)``; teardown drains the
    system and raises ``SanitizerError`` if any invariant was
    violated.
    """
    checker = SimSanitizer()
    yield checker
    checker.finish()
    checker.raise_if_violations()


@pytest.fixture
def quick_config() -> SystemConfig:
    """A tiny configuration for fast end-to-end tests."""
    return SystemConfig(
        scale=32,
        instructions_per_thread=800,
        warmup_instructions=200,
        seed=1234,
    )


@pytest.fixture
def tiny_config() -> SystemConfig:
    """An even smaller configuration for figure-driver smoke tests."""
    return SystemConfig(
        scale=32,
        instructions_per_thread=300,
        warmup_instructions=100,
        seed=99,
    )
