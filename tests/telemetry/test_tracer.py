"""EventTracer: ring buffer, exports, and trace-event schema validity."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.tracer import (
    EventTracer,
    load_jsonl,
    validate_chrome_trace,
)


class TestRingBuffer:
    def test_records_in_emission_order(self):
        t = EventTracer()
        t.emit(10, "a", "cat")
        t.emit(20, "b", "cat", tid=1, dur=5, args={"k": 1})
        events = t.events()
        assert [e.name for e in events] == ["a", "b"]
        assert events[1].dur == 5 and events[1].args == {"k": 1}

    def test_capacity_drops_oldest(self):
        t = EventTracer(capacity=3)
        for i in range(5):
            t.emit(i, f"e{i}", "c")
        assert t.emitted == 5
        assert t.dropped == 2
        assert [e.name for e in t.events()] == ["e2", "e3", "e4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_events_filter_by_category(self):
        t = EventTracer()
        t.emit(0, "a", "dram.cmd")
        t.emit(1, "b", "cpu.fetch")
        assert [e.name for e in t.events("dram.cmd")] == ["a"]

    def test_clear(self):
        t = EventTracer()
        t.emit(0, "a", "c")
        t.clear()
        assert len(t) == 0 and t.emitted == 0


class TestChromeExport:
    def _tracer(self) -> EventTracer:
        t = EventTracer()
        t.emit(100, "dram.ACT", "dram.cmd", tid=0, dur=3,
               args={"bank": 1, "reason": "row-miss,read"})
        t.emit(105, "fetch.gate", "cpu.fetch", tid=1,
               args={"policy": "dwarn", "reason": "iq-pressure"})
        return t

    def test_document_shape(self):
        doc = self._tracer().chrome_trace(pid=7)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        span, instant = doc["traceEvents"]
        assert span["ph"] == "X" and span["dur"] == 3 and span["pid"] == 7
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert doc["otherData"]["dropped"] == 0

    def test_validates_against_schema(self):
        assert validate_chrome_trace(self._tracer().chrome_trace()) == []

    def test_written_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self._tracer().write_chrome(path)
        with open(path) as handle:
            doc = json.load(handle)
        assert validate_chrome_trace(doc) == []

    def test_validator_flags_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad_phase = {"traceEvents": [
            {"name": "a", "cat": "c", "ph": "B", "ts": 0, "pid": 0, "tid": 0}
        ]}
        assert any("phase" in e for e in validate_chrome_trace(bad_phase))
        no_dur = {"traceEvents": [
            {"name": "a", "cat": "c", "ph": "X", "ts": 0, "pid": 0, "tid": 0}
        ]}
        assert any("dur" in e for e in validate_chrome_trace(no_dur))
        bad_scope = {"traceEvents": [
            {"name": "a", "cat": "c", "ph": "i", "ts": 0, "pid": 0,
             "tid": 0, "s": "x"}
        ]}
        assert any("scope" in e for e in validate_chrome_trace(bad_scope))


class TestJsonlExport:
    def test_round_trip(self, tmp_path):
        t = EventTracer()
        t.emit(1, "a", "c", tid=2, dur=4, args={"x": 1})
        t.emit(2, "b", "c")
        path = tmp_path / "trace.jsonl"
        t.write_jsonl(path)
        records = load_jsonl(path)
        assert records == [
            {"ts": 1, "name": "a", "cat": "c", "tid": 2, "dur": 4,
             "args": {"x": 1}},
            {"ts": 2, "name": "b", "cat": "c", "tid": 0},
        ]
