"""Run manifests: identity, write/read round trip, merging."""

from __future__ import annotations

import json

from repro.experiments.config import SystemConfig
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    RunRecord,
    config_hash,
    default_manifest_dir,
    run_id,
)
from repro.telemetry.registry import MetricRegistry


class TestIdentity:
    def test_run_id_is_content_derived(self):
        cfg = SystemConfig()
        assert run_id(cfg, ("gzip",)) == run_id(cfg, ("gzip",))
        assert run_id(cfg, ("gzip",)) != run_id(cfg, ("mcf",))
        assert run_id(cfg, ("gzip",)) != run_id(
            cfg.with_(scheduler="fcfs"), ("gzip",)
        )

    def test_config_hash_ignores_non_semantic_fields(self):
        cfg = SystemConfig()
        assert config_hash(cfg) == config_hash(SystemConfig())

    def test_record_captures_provenance(self):
        cfg = SystemConfig(seed=7)
        record = RunRecord.from_run(
            cfg, ["gzip", "mcf"], source="memo", wall_time_s=1.5
        )
        assert record.apps == ("gzip", "mcf")
        assert record.seed == 7
        assert record.scheduler == cfg.scheduler
        assert record.source == "memo"
        assert record.wall_time_s == 1.5


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        cfg = SystemConfig()
        manifest = RunManifest(
            records=[RunRecord.from_run(cfg, ("gzip",))],
            wall_time_s=2.0,
        )
        path = manifest.write(tmp_path)
        assert path.name == f"manifest-{manifest.manifest_id[:16]}.json"
        doc = RunManifest.read(path)
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["manifest_id"] == manifest.manifest_id
        assert doc["runs"][0]["apps"] == ["gzip"]
        # no stray temp files left behind
        assert list(tmp_path.glob("*.tmp")) == []

    def test_same_jobs_same_filename(self, tmp_path):
        cfg = SystemConfig()
        a = RunManifest(records=[RunRecord.from_run(cfg, ("gzip",))])
        b = RunManifest(records=[RunRecord.from_run(cfg, ("gzip",))])
        assert a.write(tmp_path) == b.write(tmp_path)

    def test_written_document_is_sorted_json(self, tmp_path):
        manifest = RunManifest()
        path = manifest.write(tmp_path)
        with open(path) as handle:
            text = handle.read()
        assert json.loads(text)  # valid
        assert text.index('"created"') < text.index('"schema"')


class TestMerge:
    def test_dedupes_by_run_id_first_wins(self):
        cfg = SystemConfig()
        first = RunManifest(
            records=[RunRecord.from_run(cfg, ("gzip",), source="simulated")]
        )
        second = RunManifest(
            records=[
                RunRecord.from_run(cfg, ("gzip",), source="memo"),
                RunRecord.from_run(cfg, ("mcf",)),
            ],
            workers=4,
            wall_time_s=1.0,
        )
        merged = RunManifest.merge([first, second])
        assert len(merged.records) == 2
        assert merged.records[0].source == "simulated"
        assert merged.workers == 4
        assert merged.wall_time_s == 1.0

    def test_merges_metric_snapshots_in_order(self):
        reg_a = MetricRegistry()
        reg_a.counter("dram.ch0.row_hits").add(2)
        reg_b = MetricRegistry()
        reg_b.counter("dram.ch0.row_hits").add(3)
        merged = RunManifest.merge([
            RunManifest(metrics=reg_a.snapshot()),
            RunManifest(metrics=reg_b.snapshot()),
        ])
        assert merged.metrics["counters"]["dram.ch0.row_hits"] == 5

    def test_merge_of_nothing_is_empty(self):
        merged = RunManifest.merge([])
        assert merged.records == [] and merged.metrics == {}


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path / "m"))
        assert default_manifest_dir() == tmp_path / "m"

    def test_default_outside_working_tree(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_MANIFEST_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        path = default_manifest_dir()
        assert tmp_path not in path.parents and path != tmp_path
