"""MetricRegistry: instruments, hierarchy, snapshots, merging."""

from __future__ import annotations

import pickle

import pytest

from repro.telemetry.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NULL_SERIES,
    MetricRegistry,
    NullRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricRegistry()
        c = reg.counter("dram.ch0.row_hits")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_same_name_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_name_type_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_gauge_last_write_wins(self):
        g = MetricRegistry().gauge("cpu.ipc")
        g.set(1.5)
        g.set(2.5)
        assert g.value == 2.5

    def test_histogram_log_bins(self):
        h = MetricRegistry().histogram("cpu.t0.rob_occupancy")
        for v in (0, 1, 2, 3, 4, 7, 8):
            h.observe(v)
        # bin = bit_length: 0 -> 0, 1 -> 1, 2-3 -> 2, 4-7 -> 3, 8-15 -> 4
        assert h.bins == {0: 1, 1: 1, 2: 2, 3: 2, 4: 1}
        assert h.count == 7
        assert h.mean == pytest.approx(25 / 7)

    def test_histogram_rejects_negative(self):
        h = MetricRegistry().histogram("h")
        with pytest.raises(ValueError):
            h.observe(-1)

    def test_series_records_in_order(self):
        s = MetricRegistry().series("cpu.t0.committed")
        s.record(100, 42)
        s.record(200, 84)
        assert s.samples == [(100, 42), (200, 84)]


class TestHierarchy:
    def test_names_filters_by_dotted_prefix(self):
        reg = MetricRegistry()
        reg.counter("dram.ch0.row_hits")
        reg.counter("dram.ch1.row_hits")
        reg.counter("cpu.cycles")
        assert reg.names("dram") == [
            "dram.ch0.row_hits", "dram.ch1.row_hits",
        ]
        assert reg.names("dram.ch0") == ["dram.ch0.row_hits"]
        # a prefix is a dotted component, not a string prefix
        assert reg.names("dram.ch") == []
        assert len(reg) == 3

    def test_bulk_helpers(self):
        reg = MetricRegistry()
        reg.add_counters("cpu.stall", {"icache": 3, "iq": 5})
        reg.add_counters("cpu.stall", {"icache": 2})
        reg.set_gauges("cache", {"l1d_hit_rate": 0.9})
        snap = reg.snapshot()
        assert snap["counters"]["cpu.stall.icache"] == 5
        assert snap["counters"]["cpu.stall.iq"] == 5
        assert snap["gauges"]["cache.l1d_hit_rate"] == 0.9


class TestSnapshot:
    def test_snapshot_is_plain_and_picklable(self):
        reg = MetricRegistry()
        reg.counter("c").add(3)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(5)
        reg.series("s").record(1, 2)
        snap = reg.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert snap["histograms"]["h"] == {
            "bins": {3: 1}, "count": 1, "total": 5,
        }
        assert snap["series"]["s"] == [(1, 2)]

    def test_snapshot_keys_sorted(self):
        reg = MetricRegistry()
        reg.counter("z")
        reg.counter("a")
        assert list(reg.snapshot()["counters"]) == ["a", "z"]

    def test_merge_sums_counters_and_histograms(self):
        a = MetricRegistry()
        a.counter("c").add(2)
        a.histogram("h").observe(4)
        a.gauge("g").set(1.0)
        b = MetricRegistry()
        b.counter("c").add(3)
        b.histogram("h").observe(4)
        b.gauge("g").set(2.0)
        b.series("s").record(0, 1)
        merged = MetricRegistry.merge([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c"] == 5
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["bins"] == {3: 2}
        assert merged["gauges"]["g"] == 2.0  # last write wins
        assert merged["series"]["s"] == [(0, 1)]

    def test_merge_ignores_empty_snapshots(self):
        reg = MetricRegistry()
        reg.counter("c").add(1)
        merged = MetricRegistry.merge([{}, reg.snapshot(), {}])
        assert merged["counters"] == {"c": 1}


class TestNullRegistry:
    def test_disabled_flag(self):
        assert MetricRegistry().enabled
        assert not NULL_REGISTRY.enabled

    def test_hands_out_shared_noops(self):
        reg = NullRegistry()
        assert reg.counter("a") is NULL_COUNTER
        assert reg.gauge("b") is NULL_GAUGE
        assert reg.histogram("c") is NULL_HISTOGRAM
        assert reg.series("d") is NULL_SERIES

    def test_noops_store_nothing(self):
        reg = NullRegistry()
        reg.counter("a").add(10)
        reg.gauge("b").set(1.0)
        reg.histogram("c").observe(5)
        reg.series("d").record(0, 1)
        reg.add_counters("p", {"x": 1})
        reg.set_gauges("p", {"y": 2.0})
        assert len(reg) == 0
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["series"] == {}
