"""Telemetry wired through the full simulator.

The two contract-level guarantees: disabled telemetry changes nothing
(bit-identical cycle counts), and an enabled tracer captures the
DRAM-command / scheduler-pick / fetch-gate story the observability docs
promise.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import Runner, run_mix
from repro.telemetry import (
    EventTracer,
    MetricRegistry,
    Telemetry,
    validate_chrome_trace,
)


def _traced_run(config, apps):
    telemetry = Telemetry(tracer=EventTracer())
    result = run_mix(config, apps, telemetry=telemetry)
    return result, telemetry


class TestDisabledIsInvisible:
    def test_cycle_counts_bit_identical(self, quick_config):
        plain = run_mix(quick_config, ["gzip", "mcf"])
        traced, _ = _traced_run(quick_config, ["gzip", "mcf"])
        assert plain.core.cycles == traced.core.cycles
        assert plain.ipcs == traced.ipcs
        assert plain.hierarchy == traced.hierarchy

    def test_command_model_bit_identical(self, quick_config):
        config = quick_config.with_(controller_model="command")
        plain = run_mix(config, ["gzip", "mcf"])
        traced, _ = _traced_run(config, ["gzip", "mcf"])
        assert plain.core.cycles == traced.core.cycles
        assert plain.ipcs == traced.ipcs

    def test_plain_run_attaches_no_metrics(self, quick_config):
        assert run_mix(quick_config, ["gzip"]).metrics is None

    def test_disabled_timeline_stays_empty(self, quick_config):
        from repro.experiments.runner import build_system

        core, _, _ = build_system(quick_config, ["gzip"])
        core.run(200)
        assert core.timeline == []


class TestRegistryThroughTheStack:
    def test_metric_hierarchy_populated(self, quick_config):
        telemetry = Telemetry()
        result = run_mix(quick_config, ["gzip", "mcf"], telemetry=telemetry)
        reg = telemetry.registry
        assert "cpu.cycles" in reg.names("cpu")
        assert "cpu.t0.instructions" in reg.names("cpu.t0")
        assert "cpu.t1.ipc" in reg.names("cpu.t1")
        assert "dram.ch0.row_hits" in reg.names("dram.ch0")
        assert "cache.loads" in reg.names("cache")
        snap = result.metrics
        assert snap is not None
        assert snap["counters"]["cpu.cycles"] == result.core.cycles

    def test_counters_match_simulator_stats(self, quick_config):
        telemetry = Telemetry()
        result = run_mix(quick_config, ["gzip", "mcf"], telemetry=telemetry)
        snap = telemetry.snapshot()
        dram = result.dram
        row_hits = sum(
            v for k, v in snap["counters"].items()
            if k.endswith(".row_hits") and k.startswith("dram.")
        )
        row_misses = sum(
            v for k, v in snap["counters"].items()
            if k.endswith(".row_misses") and k.startswith("dram.")
        )
        assert row_hits == dram.row_buffer.hits
        assert row_hits + row_misses == dram.reads + dram.writes
        for i, thread in enumerate(result.core.threads):
            assert (
                snap["counters"][f"cpu.t{i}.instructions"]
                == thread.committed
            )
            assert snap["gauges"][f"cpu.t{i}.ipc"] == pytest.approx(
                thread.ipc
            )

    def test_occupancy_histograms_recorded(self, quick_config):
        telemetry = Telemetry()
        run_mix(quick_config, ["gzip", "mcf"], telemetry=telemetry)
        snap = telemetry.snapshot()
        assert snap["histograms"]["cpu.t0.rob_occupancy"]["count"] > 0
        assert snap["series"]["cpu.t0.committed"]

    def test_registry_without_tracer_records_no_events(self, quick_config):
        telemetry = Telemetry(registry=MetricRegistry())
        assert telemetry.tracer is None
        result = run_mix(quick_config, ["gzip"], telemetry=telemetry)
        assert result.metrics is not None


class TestDramCommandTrace:
    """Acceptance: a 2-thread scheduler-pick trace shows ACT/PRE/CAS
    events with reasons."""

    @pytest.fixture
    def trace(self, quick_config):
        config = quick_config.with_(controller_model="command")
        _, telemetry = _traced_run(config, ["mcf", "art"])
        return telemetry.tracer

    def test_act_pre_cas_present_with_reasons(self, trace):
        commands = trace.events("dram.cmd")
        names = {e.name for e in commands}
        assert "dram.ACT" in names
        assert "dram.PRE" in names
        assert "dram.CAS.read" in names
        for event in commands:
            assert event.args["reason"], event
            assert event.args["scheduler"] == "hit-first"
            assert {"channel", "bank", "row", "req"} <= set(event.args)

    def test_both_threads_traced(self, trace):
        tids = {e.tid for e in trace.events("dram.cmd")}
        assert tids == {0, 1}

    def test_reasons_name_the_criteria(self, trace):
        reasons = {e.args["reason"] for e in trace.events("dram.cmd")}
        assert any("row-hit" in r for r in reasons)
        assert any("row-miss" in r for r in reasons)

    def test_chrome_export_of_full_run_validates(self, trace):
        assert validate_chrome_trace(trace.chrome_trace()) == []

    def test_request_model_pick_reasons(self, quick_config):
        _, telemetry = _traced_run(quick_config, ["mcf", "art"])
        picks = telemetry.tracer.events("dram.sched")
        assert picks
        for event in picks:
            assert event.args["reason"]
        bursts = telemetry.tracer.events("dram.bus")
        assert bursts and all(e.dur is not None for e in bursts)


class TestPipelineTrace:
    def test_fetch_gate_events(self, quick_config):
        config = quick_config.with_(fetch_policy="dwarn")
        _, telemetry = _traced_run(config, ["mcf", "art"])
        gates = [
            e for e in telemetry.tracer.events("cpu.fetch")
            if e.name == "fetch.gate"
        ]
        assert gates
        assert all(e.args["policy"] == "dwarn" for e in gates)
        assert all(e.args["reason"] == "iq-pressure" for e in gates)

    def test_mshr_events(self, quick_config):
        _, telemetry = _traced_run(quick_config, ["mcf", "art"])
        mshr = telemetry.tracer.events("cache.mshr")
        names = {e.name for e in mshr}
        assert "mshr.alloc" in names
        assert all("occupancy" in e.args for e in mshr)


class TestSchedulerReasons:
    def test_age_override_reason(self):
        from repro.dram.schedulers import make_scheduler
        from repro.common.types import MemAccessType, MemRequest

        class Ctx:
            def is_row_hit(self, request):
                return False

            def outstanding_for_thread(self, thread_id):
                return 0

        scheduler = make_scheduler("age-based")
        requests = [
            MemRequest(64 * i, MemAccessType.READ, 0, arrival=i)
            for i in range(10)
        ]
        picked, reason = scheduler.select_with_reason(requests, 100, Ctx())
        assert picked is requests[0]
        assert reason == "age-override(backlog=10)"

    def test_thread_aware_reason_names_the_scheme(self):
        from repro.dram.schedulers import make_scheduler
        from repro.common.types import MemAccessType, MemRequest

        class Ctx:
            def is_row_hit(self, request):
                return True

            def outstanding_for_thread(self, thread_id):
                return 3

        scheduler = make_scheduler("request-based")
        request = MemRequest(0, MemAccessType.READ, 5, arrival=0)
        _, reason = scheduler.select_with_reason([request], 0, Ctx())
        assert reason == "row-hit,read,request-based=3"


class TestRunnerManifests:
    def test_runner_records_sources(self, tiny_config, tmp_path):
        runner = Runner()
        runner.run_mix(tiny_config, ["gzip"])
        runner.run_mix(tiny_config, ["gzip"])  # memo hit, not re-recorded
        records = runner.records
        assert len(records) == 1
        assert records[0].source == "simulated"
        assert records[0].wall_time_s > 0
        path = runner.write_manifest(tmp_path)
        from repro.telemetry import RunManifest

        doc = RunManifest.read(path)
        assert doc["runs"][0]["apps"] == ["gzip"]

    def test_collect_metrics_attaches_and_merges(self, tiny_config):
        runner = Runner(collect_metrics=True)
        result = runner.run_mix(tiny_config, ["gzip", "mcf"])
        assert result.metrics is not None
        manifest = runner.manifest()
        assert manifest.metrics["counters"]["cpu.cycles"] > 0

    def test_parallel_runner_manifest_deterministic(self, tiny_config):
        from repro.experiments.parallel import ParallelRunner

        jobs = [
            (tiny_config, ("gzip",)),
            (tiny_config, ("mcf",)),
            (tiny_config, ("gzip",)),  # duplicate
        ]
        a = ParallelRunner(collect_metrics=True)
        a.run_many(jobs)
        b = ParallelRunner(collect_metrics=True)
        b.run_many(jobs)
        assert a.manifest().manifest_id == b.manifest().manifest_id
        assert len(a.records) == 2
        assert a.manifest().metrics == b.manifest().metrics
