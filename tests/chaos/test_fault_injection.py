"""Chaos suite: inject real faults, assert bit-identical recovery.

Every test here runs actual process pools, kills actual workers, or
corrupts actual cache files, then checks the one property the
resilience layer exists to provide: a recovered batch produces results
*bit-identical* to an undisturbed run.  The suite is excluded from the
tier-1 run (pool startup and deliberate hangs cost seconds); the CI
``chaos`` lane runs it with ``pytest -m chaos``.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.common.errors import SimulationTimeout, WorkerCrashed
from repro.experiments.config import SystemConfig
from repro.experiments.parallel import ResultCache, run_many
from repro.experiments.resilience import (
    BatchJournal,
    ResilienceStats,
    RetryPolicy,
)
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    corrupt_cache_entry,
)

pytestmark = pytest.mark.chaos

JOBS_PER_BATCH = 4


@pytest.fixture(scope="module")
def config() -> SystemConfig:
    """Module-scoped twin of ``tiny_config`` (which is function-scoped,
    so the module-scoped ``clean_run`` fixture below cannot use it)."""
    return SystemConfig(
        scale=32,
        instructions_per_thread=300,
        warmup_instructions=100,
        seed=99,
    )


def _jobs(config):
    return [
        (config, ("gzip",)),
        (config, ("mcf",)),
        (config, ("gzip", "mcf")),
        (config, ("bzip2", "art")),
    ]


def _fingerprints(results):
    """Everything observable about a batch, for bit-identity checks."""
    return [
        (r.apps, tuple(r.ipcs), r.core.cycles, r.row_buffer_miss_rate)
        for r in results
    ]


@pytest.fixture(scope="module")
def clean_run(config):
    """The undisturbed reference batch every recovery is compared to."""
    return _fingerprints(run_many(_jobs(config)))


class TestPoolRecovery:
    def test_killed_worker_recovers_bit_identically(
        self, config, clean_run
    ):
        """A worker hard-killed mid-batch (os._exit, i.e. a segfault
        stand-in) breaks the pool; the batch rebuilds it, retries the
        lost job, and still produces the clean run's exact results."""
        plan = FaultPlan(
            specs=(FaultSpec(kind="crash", apps=("mcf",), attempt=0),)
        )
        stats = ResilienceStats()
        results = run_many(
            _jobs(config),
            parallelism=2,
            policy=RetryPolicy(retries=1),
            fault_plan=plan,
            stats=stats,
        )
        assert _fingerprints(results) == clean_run
        assert stats.worker_crashes >= 1
        assert stats.pool_rebuilds >= 1

    def test_persistent_crash_raises_worker_crashed(self, config):
        plan = FaultPlan(
            specs=(FaultSpec(kind="crash", apps=("mcf",), attempt=None),)
        )
        with pytest.raises(WorkerCrashed) as info:
            run_many(
                _jobs(config),
                parallelism=2,
                policy=RetryPolicy(retries=1),
                fault_plan=plan,
            )
        # a broken pool cannot identify the culprit, so every in-flight
        # job is charged the crash -- the job that exhausts its attempts
        # first may be a collateral one, but it always carries identity
        assert info.value.apps in {apps for _, apps in _jobs(config)}
        assert info.value.failures[-1].kind == "crash"

    def test_hung_worker_times_out_and_recovers(self, config, clean_run):
        """A worker that hangs (sleep far past the budget) is killed by
        the watchdog; the retried batch matches the clean run."""
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="hang", apps=("mcf",), attempt=0, seconds=60.0),
            )
        )
        stats = ResilienceStats()
        results = run_many(
            _jobs(config),
            parallelism=2,
            policy=RetryPolicy(retries=1, timeout_s=3.0),
            fault_plan=plan,
            stats=stats,
        )
        assert _fingerprints(results) == clean_run
        assert stats.timeouts == 1

    def test_hung_worker_without_retries_raises_timeout(self, config):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="hang", apps=("mcf",), attempt=None, seconds=60.0),
            )
        )
        with pytest.raises(SimulationTimeout) as info:
            run_many(
                _jobs(config),
                parallelism=2,
                policy=RetryPolicy(retries=0, timeout_s=2.0),
                fault_plan=plan,
            )
        assert info.value.apps == ("mcf",)
        assert info.value.failures[-1].kind == "timeout"

    def test_serial_fallback_after_rebuild_budget(self, config, clean_run):
        """When the pool keeps dying past ``max_pool_rebuilds``, the
        batch degrades to in-process serial execution and completes.
        (Faults only fire in attempts 0-1, so the serial pass — which
        runs later attempts — succeeds.)"""
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="crash", apps=("mcf",), attempt=0),
                FaultSpec(kind="crash", apps=("mcf",), attempt=1),
            )
        )
        stats = ResilienceStats()
        results = run_many(
            _jobs(config),
            parallelism=2,
            policy=RetryPolicy(retries=3, max_pool_rebuilds=0),
            fault_plan=plan,
            stats=stats,
        )
        assert _fingerprints(results) == clean_run
        assert stats.serial_fallbacks == 1


class TestCacheChaos:
    def test_corrupt_entry_quarantined_and_recomputed(
        self, config, tmp_path, clean_run
    ):
        """End-to-end: corrupt a cache file between runs; the next run
        quarantines it, re-simulates, and matches the clean batch."""
        cache = ResultCache(tmp_path / "cache")
        run_many(_jobs(config), cache=cache)
        corrupted = corrupt_cache_entry(
            cache, config, ("mcf",), mode="truncate"
        )
        assert corrupted.exists()
        fresh = ResultCache(tmp_path / "cache")
        results = run_many(_jobs(config), cache=fresh)
        assert _fingerprints(results) == clean_run
        assert fresh.corrupt == 1
        assert len(list(fresh.quarantine_dir.glob("*.pkl"))) == 1

    @pytest.mark.parametrize("mode", ["garbage", "empty", "wrong-type"])
    def test_every_corruption_mode_recovers(self, config, tmp_path, mode):
        cache = ResultCache(tmp_path / "cache")
        baseline = run_many([(config, ("gzip",))], cache=cache)
        corrupt_cache_entry(cache, config, ("gzip",), mode=mode)
        fresh = ResultCache(tmp_path / "cache")
        again = run_many([(config, ("gzip",))], cache=fresh)
        assert _fingerprints(again) == _fingerprints(baseline)
        assert fresh.corrupt == 1


class TestInterruptedBatchResume:
    def test_aborted_batch_resumes_bit_identically(
        self, config, tmp_path, clean_run
    ):
        """The headline property: fault aborts a batch partway; the
        resumed batch serves journaled work from the cache, simulates
        only the remainder, and the full result set is bit-identical."""
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="exception", apps=("gzip", "mcf"), attempt=None),
            )
        )
        cache = ResultCache(tmp_path / "cache")
        journal = BatchJournal(tmp_path / "journal.jsonl")
        with pytest.raises(Exception):
            run_many(
                _jobs(config),
                cache=cache,
                journal=journal,
                fault_plan=plan,
            )
        journal.close()
        completed_before = sum(
            1
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
            if json.loads(line).get("event") == "complete"
        )
        assert 0 < completed_before < JOBS_PER_BATCH

        resumed_journal = BatchJournal(tmp_path / "journal.jsonl", resume=True)
        stats = ResilienceStats()
        results = run_many(
            _jobs(config),
            cache=ResultCache(tmp_path / "cache"),
            journal=resumed_journal,
            stats=stats,
        )
        resumed_journal.close()
        assert _fingerprints(results) == clean_run
        assert stats.resumed_jobs == completed_before

    def test_cli_abort_then_resume_is_byte_identical(self, tmp_path):
        """The full CLI contract, as the CI chaos lane runs it: a
        faulted ``fig10`` exits 3 and names its journal; the ``--resume``
        rerun exits 0 and its CSV is byte-for-byte the clean run's."""
        base = [
            sys.executable, "-m", "repro", "fig10",
            "--mixes", "2-MEM", "--instructions", "300", "--warmup", "100",
            "--scale", "32",
        ]
        env_base = {"REPRO_MANIFEST_DIR": str(tmp_path / "manifests")}

        def run(extra, *, faulted=False, check=True):
            env = {**os.environ, **env_base}
            if faulted:
                env[FAULT_PLAN_ENV] = str(plan_path)
            env.setdefault("PYTHONPATH", "src")
            proc = subprocess.run(
                base + extra, capture_output=True, text=True, env=env,
            )
            if check:
                assert proc.returncode == 0, proc.stderr
            return proc

        clean_csv = tmp_path / "clean.csv"
        run(["--csv", str(clean_csv)])

        plan_path = tmp_path / "plan.json"
        FaultPlan(
            specs=(FaultSpec(kind="exception", rate=0.5, attempt=None),),
            seed=7,
        ).write(plan_path)
        cache_dir = tmp_path / "cache"
        faulted_csv = tmp_path / "faulted.csv"
        proc = run(
            ["--cache-dir", str(cache_dir), "--resume",
             "--csv", str(faulted_csv)],
            faulted=True,
            check=False,
        )
        assert proc.returncode == 3, proc.stdout + proc.stderr
        assert "--resume" in proc.stderr

        resumed_csv = tmp_path / "resumed.csv"
        run(["--cache-dir", str(cache_dir), "--resume",
             "--csv", str(resumed_csv)])
        assert resumed_csv.read_bytes() == clean_csv.read_bytes()

    def test_fast_engine_resume_matches_reference_clean_run(self, tmp_path):
        """Crash-resume under ``--engine fast`` must land byte-identical
        to an undisturbed ``--engine reference`` run: the resume path
        mixes cached (pre-crash) results with re-simulated ones, and the
        cache is shared across engines by the bit-identity contract."""
        base = [
            sys.executable, "-m", "repro", "fig10",
            "--mixes", "2-MEM", "--instructions", "300", "--warmup", "100",
            "--scale", "32",
        ]
        env_base = {"REPRO_MANIFEST_DIR": str(tmp_path / "manifests")}

        def run(extra, *, faulted=False, check=True):
            env = {**os.environ, **env_base}
            if faulted:
                env[FAULT_PLAN_ENV] = str(plan_path)
            env.setdefault("PYTHONPATH", "src")
            proc = subprocess.run(
                base + extra, capture_output=True, text=True, env=env,
            )
            if check:
                assert proc.returncode == 0, proc.stderr
            return proc

        clean_csv = tmp_path / "clean_reference.csv"
        run(["--engine", "reference", "--csv", str(clean_csv)])

        plan_path = tmp_path / "plan.json"
        FaultPlan(
            specs=(FaultSpec(kind="exception", rate=0.5, attempt=None),),
            seed=11,
        ).write(plan_path)
        cache_dir = tmp_path / "cache"
        proc = run(
            ["--engine", "fast", "--cache-dir", str(cache_dir), "--resume",
             "--csv", str(tmp_path / "faulted.csv")],
            faulted=True,
            check=False,
        )
        assert proc.returncode == 3, proc.stdout + proc.stderr

        resumed_csv = tmp_path / "resumed_fast.csv"
        run(["--engine", "fast", "--cache-dir", str(cache_dir), "--resume",
             "--csv", str(resumed_csv)])
        assert resumed_csv.read_bytes() == clean_csv.read_bytes()
