"""End-to-end chaos harness: kill the service three ways mid-campaign.

The acceptance scenario from the hardening work: one seeded fault plan
takes out a pool worker (job-scope ``sigkill``), the scheduler thread
(service-scope ``exception`` — the API stays up, read-only), and then
the API daemon itself (external ``kill -9``) at three distinct points
in a fig10 campaign.  A ``--resume`` restart must finish the campaign
such that

* the recovered store is **byte-identical** to an uninterrupted run,
* the lease log proves every job executed **exactly once** (one
  ``release/done`` per key, however many grants/reclaims it took), and
* the API **served read-only traffic** throughout the scheduler
  outage (warm reads and warm submits answered, cold submits shed
  with ``503 + Retry-After``).

The whole scenario runs once in a module fixture against real
``repro serve`` subprocesses; the tests assert one criterion each so
a failure names the property that broke.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.experiments.config import SystemConfig
from repro.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec

pytestmark = pytest.mark.chaos


MIXES = ["2-MEM"]
WORKER_KILL_INDEX = 1  # early: recovered inside the first batch
SCHEDULER_KILL_INDEX = 8  # mid-campaign: several results already landed


@pytest.fixture(scope="module")
def config() -> SystemConfig:
    return SystemConfig(
        scale=32,
        instructions_per_thread=300,
        warmup_instructions=100,
        seed=99,
    )


def _roundtrip(config: SystemConfig) -> SystemConfig:
    """The codec round-trip every served job goes through."""
    from repro.service.jobs import config_from_dict, config_to_dict

    return config_from_dict(config_to_dict(config))


def _campaign(config: SystemConfig):
    from repro.service.jobs import campaign_jobs

    return campaign_jobs("fig10", _roundtrip(config), mixes=MIXES)


def _serve_env(tmp: Path, plan_path: Path | None) -> dict:
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = {**os.environ, "REPRO_MANIFEST_DIR": str(tmp / "manifests")}
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir, *filter(None, [env.get("PYTHONPATH")])]
    )
    if plan_path is None:
        env.pop(FAULT_PLAN_ENV, None)
    else:
        env[FAULT_PLAN_ENV] = str(plan_path)
    return env


def _start_serve(
    store: Path, tmp: Path, *, resume: bool, plan_path: Path | None
) -> subprocess.Popen:
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--store", str(store), "--workers", "2",
        "--lease", "30", "--max-requeues", "2",
    ]
    if resume:
        cmd.append("--resume")
    return subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_serve_env(tmp, plan_path),
    )


def _wait_ready(store: Path, proc: subprocess.Popen, timeout: float = 60.0):
    """Poll until the daemon advertises itself and answers /healthz."""
    from repro.service.client import ServiceClient, ServiceError

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, _ = proc.communicate()
            raise AssertionError(f"serve died during startup:\n{out}")
        info = store / "service" / "server.json"
        if info.exists():
            try:
                url = json.loads(info.read_text())["url"]
                probe = ServiceClient(url, retries=0)
                if probe.health().get("status") in ("ok", "read-only"):
                    return url
            except (ServiceError, ValueError, KeyError, OSError):
                pass
        time.sleep(0.2)
    raise AssertionError("serve never became ready")


def _stop_hard(proc: subprocess.Popen) -> str:
    """kill -9 (the 'API killed' fault point) and collect its output."""
    proc.kill()
    out, _ = proc.communicate(timeout=30)
    return out


def _events(path: Path) -> list[dict]:
    events = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError:
            continue
    return events


@pytest.fixture(scope="module")
def reference(tmp_path_factory, config):
    """The uninterrupted run: same campaign, no faults, in one process."""
    from repro.service.scheduler import CampaignScheduler
    from repro.service.store import ResultStore

    tmp = tmp_path_factory.mktemp("chaos-ref")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_MANIFEST_DIR", str(tmp / "manifests"))
    store = ResultStore(tmp / "store")
    scheduler = CampaignScheduler(store, workers=2)
    scheduler.start()
    try:
        status = scheduler.submit_campaign(
            "fig10", _roundtrip(config), mixes=MIXES
        )
        cid = status["campaign"]
        deadline = time.monotonic() + 600
        while not scheduler.campaign_status(cid)["complete"]:
            assert scheduler.healthy, "reference scheduler crashed"
            assert time.monotonic() < deadline, "reference run timed out"
            time.sleep(0.2)
    finally:
        scheduler.stop()
        mp.undo()
    return {
        "cid": cid,
        "bytes": {
            key: store.path_for_key(key).read_bytes() for key in store.keys()
        },
    }


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory, config, reference):
    """Run the full kill-worker / kill-scheduler / kill-API scenario."""
    from repro.service.client import ServiceClient, ServiceUnavailable
    from repro.service.store import ResultStore
    from repro.telemetry.manifest import run_id

    tmp = tmp_path_factory.mktemp("chaos-svc")
    store = tmp / "store"
    jobs = _campaign(config)
    assert len(jobs) > SCHEDULER_KILL_INDEX
    keys = [
        ResultStore(store).key_for(job_config, apps)
        for job_config, apps in jobs
    ]

    plan = FaultPlan(
        specs=(
            # Fault point 1: SIGKILL a pool worker on this job's first
            # attempt (recovered in-batch: pool rebuild + retry).
            FaultSpec(
                kind="sigkill",
                job=run_id(*jobs[WORKER_KILL_INDEX]),
                attempt=0,
                scope="job",
            ),
            # Fault point 2: crash the scheduler thread as this job is
            # dispatched.  The HTTP daemon survives — read-only mode.
            FaultSpec(
                kind="exception",
                job=run_id(*jobs[SCHEDULER_KILL_INDEX]),
                attempt=0,
                scope="service",
            ),
        ),
        seed=1905,
    )
    plan_path = plan.write(tmp / "fault-plan.json")

    observed: dict = {"keys": keys}

    # ------------------------------------------------------------- gen 1
    proc = _start_serve(store, tmp, resume=False, plan_path=plan_path)
    try:
        url = _wait_ready(store, proc)
        client = ServiceClient(url, store_dir=store, seed=7)
        status = client.submit_campaign("fig10", config, mixes=MIXES)
        observed["cid"] = status["campaign"]
        observed["jobs_submitted"] = status["jobs"]

        # Wait for fault point 2 to fire: /healthz flips to read-only.
        deadline = time.monotonic() + 300
        while True:
            assert proc.poll() is None, "daemon died before scheduler crash"
            health = client.health()
            if health.get("status") == "read-only":
                break
            assert time.monotonic() < deadline, (
                f"scheduler never crashed; last health: {health}"
            )
            time.sleep(0.2)
        observed["outage_health"] = health

        # The scheduler is down.  Prove the API still serves:
        done_keys = [
            key for key in keys
            if client.result(key).get("state") == "done"
        ]
        observed["outage_done_keys"] = done_keys
        if done_keys:
            observed["outage_warm_bytes"] = client.fetch_bytes(done_keys[0])
            observed["outage_warm_submit"] = client.submit(
                *next(
                    (jc, apps) for (jc, apps), key in zip(jobs, keys)
                    if key == done_keys[0]
                )
            )
        # The *ticket* lags the store by one supervisor tick, so a
        # "not done" ticket may still answer warm.  The last job in the
        # campaign is genuinely cold: dispatch is windowed in queue
        # order and the scheduler died at SCHEDULER_KILL_INDEX, so it
        # was never dispatched at all.
        cold = jobs[-1]
        assert keys[-1] not in set(done_keys)
        noretry = ServiceClient(url, retries=0)
        with pytest.raises(ServiceUnavailable) as shed:
            noretry.submit(*cold)
        observed["outage_shed_retry_after"] = shed.value.retry_after_s
        observed["outage_health_after"] = client.health()
    finally:
        # Fault point 3: kill -9 the API daemon itself.
        observed["gen1_output"] = _stop_hard(proc)
    (store / "service" / "server.json").unlink(missing_ok=True)

    # ------------------------------------------------------------- gen 2
    proc = _start_serve(store, tmp, resume=True, plan_path=None)
    try:
        url = _wait_ready(store, proc)
        client = ServiceClient(url, store_dir=store, seed=7)
        observed["final_campaign"] = client.wait_campaign(
            observed["cid"], timeout=600
        )
        observed["final_health"] = client.health()
    except BaseException:
        _stop_hard(proc)
        raise
    else:
        proc.send_signal(signal.SIGTERM)
        observed["gen2_output"], _ = proc.communicate(timeout=120)

    observed["store_bytes"] = {
        key: ResultStore(store).path_for_key(key).read_bytes()
        for key in ResultStore(store).keys()
    }
    observed["lease_events"] = _events(store / "service" / "leases.jsonl")
    observed["queue_events"] = _events(store / "service" / "queue.jsonl")
    return observed


class TestByteIdentity:
    def test_recovered_store_is_byte_identical(self, reference, chaos_run):
        """Three kill -9s later, the store matches the clean run exactly."""
        assert set(chaos_run["store_bytes"]) == set(reference["bytes"])
        for key, expected in reference["bytes"].items():
            assert chaos_run["store_bytes"][key] == expected, (
                f"payload for {key[:16]} diverged from the clean run"
            )

    def test_campaign_completed_after_resume(self, chaos_run):
        final = chaos_run["final_campaign"]
        assert final["complete"]
        assert final["counts"] == {"done": chaos_run["jobs_submitted"]}
        assert chaos_run["cid"] == final["campaign"]

    def test_same_campaign_as_reference(self, reference, chaos_run):
        assert chaos_run["cid"] == reference["cid"]


class TestExactlyOnce:
    def test_every_job_completed_exactly_once(self, chaos_run):
        """The lease log's release/done count is 1 for every key."""
        completions: dict[str, int] = {}
        for event in chaos_run["lease_events"]:
            if event.get("event") == "release" and event.get("outcome") == "done":
                completions[event["key"]] = completions.get(event["key"], 0) + 1
        assert completions == {key: 1 for key in chaos_run["keys"]}

    def test_crash_reclaims_are_durable(self, chaos_run):
        """The scheduler crash left reclaim records, not silent loss."""
        reasons = {
            event.get("reason")
            for event in chaos_run["lease_events"]
            if event.get("event") == "reclaim"
        }
        assert reasons & {"scheduler-crashed", "orphaned"}

    def test_interrupted_jobs_were_regranted(self, chaos_run):
        """Work in flight at the crash shows grant → reclaim → grant → done."""
        grants: dict[str, int] = {}
        for event in chaos_run["lease_events"]:
            if event.get("event") == "grant":
                grants[event["key"]] = grants.get(event["key"], 0) + 1
        assert any(count >= 2 for count in grants.values())


class TestReadOnlyOutage:
    def test_health_reported_read_only(self, chaos_run):
        health = chaos_run["outage_health"]
        assert health["status"] == "read-only"
        assert health["supervision"]["scheduler_crashes"] >= 1

    def test_warm_reads_served_during_outage(self, chaos_run):
        assert chaos_run["outage_done_keys"], (
            "no results had landed before the crash — the fault fired "
            "too early to prove anything about warm reads"
        )
        assert chaos_run["outage_warm_bytes"]
        assert chaos_run["outage_warm_submit"]["state"] == "done"

    def test_cold_submits_shed_with_retry_after(self, chaos_run):
        assert chaos_run["outage_shed_retry_after"] is not None
        after = chaos_run["outage_health_after"]
        assert after["supervision"]["read_only_rejections"] >= 1


class TestRecoveryBookkeeping:
    def test_fault_plan_was_loaded_by_gen1(self, chaos_run):
        assert "[fault plan loaded" in chaos_run["gen1_output"]

    def test_gen2_shutdown_record_is_clean(self, chaos_run):
        shutdowns = [
            event for event in chaos_run["queue_events"]
            if event.get("event") == "shutdown"
        ]
        assert shutdowns, "graceful stop wrote no shutdown record"
        final = shutdowns[-1]
        assert final["clean"] is True
        assert set(final["done"]) == set(chaos_run["keys"])
        assert not final.get("failed")

    def test_gen2_reports_supervision_counters(self, chaos_run):
        lines = [
            line for line in chaos_run["gen2_output"].splitlines()
            if line.startswith("[supervision] ")
        ]
        assert lines, "serve did not print its supervision summary"
        stats = json.loads(lines[-1].removeprefix("[supervision] "))
        assert stats["granted"] >= 1
        assert stats["released"] >= 1
