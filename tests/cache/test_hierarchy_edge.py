"""Edge cases in the hierarchy: stores to pending lines, TLB costs,
waiter ordering, perfect-L2-only configurations."""

from repro.common.events import EventQueue
from repro.cache.hierarchy import PENDING, HierarchyParams, MemoryHierarchy
from repro.dram.system import MemorySystem

A = 0x200000
B = 0xA00000


def build(**params):
    defaults = dict(scale=64, tlb_penalty=0)
    defaults.update(params)
    evq = EventQueue()
    memory = MemorySystem.ddr(evq)
    return evq, memory, MemoryHierarchy(
        HierarchyParams(**defaults), evq, memory
    )


class TestStoreToPendingLine:
    def test_store_piggybacks_on_inflight_load(self):
        evq, memory, h = build()
        h.load(A, 0, now=0, callback=lambda t: None)
        reads_before = memory.stats.reads
        done = h.store(A + 8, 0, now=0)  # same line, in flight
        assert done == 1
        evq.run_all()
        assert memory.stats.reads == 1  # no duplicate fetch

    def test_store_dirty_bit_survives_fill(self):
        evq, memory, h = build(scale=2048)
        h.load(A, 0, now=0, callback=lambda t: None)
        h.store(A, 0, now=0)
        evq.run_all()
        # evict A from L1 by filling its set; dirty data must flow down
        sets = h.l1d.num_sets
        line = A // 64
        for i in range(1, 4):
            h.load((line + i * sets) * 64, 0, now=evq.now,
                   callback=lambda t: None)
            evq.run_all()
        assert not h.l1d.probe(line) or True  # eviction happened or not;
        # the invariant: no crash and the store was absorbed
        assert h.stores == 1


class TestWaiterOrdering:
    def test_merged_waiters_complete_in_registration_order(self):
        evq, _, h = build()
        order = []
        h.load(A, 0, now=0, callback=lambda t: order.append("first"))
        h.load(A + 8, 0, now=0, callback=lambda t: order.append("second"))
        h.load(A + 16, 0, now=0, callback=lambda t: order.append("third"))
        evq.run_all()
        assert order == ["first", "second", "third"]


class TestTlbCost:
    def test_penalty_charged_once_per_page_walk(self):
        evq, _, h = build(tlb_penalty=40, scale=64)
        h.load(A, 0, now=0, callback=lambda t: None)
        evq.run_all()
        # same page now mapped: an L1 hit costs just the L1 latency
        t = h.load(A + 64, 0, now=evq.now)
        if t is not PENDING:
            assert t == evq.now + 1

    def test_tlb_misses_counted(self):
        evq, _, h = build(tlb_penalty=40)
        h.load(A, 0, now=0, callback=lambda t: None)
        h.load(B, 0, now=0, callback=lambda t: None)
        assert h.dtlb.stats.misses == 2


class TestPerfectL2Only:
    def test_l1_real_l2_perfect(self):
        evq = EventQueue()
        h = MemoryHierarchy(
            HierarchyParams(scale=64, perfect_l2=True, perfect_l3=True,
                            tlb_penalty=0),
            evq, None,
        )
        done = []
        h.load(A, 0, now=0, callback=done.append)
        evq.run_all()
        assert done == [11]      # 1 + 10, never deeper
        # second access: L1 hit
        assert h.load(A, 0, now=evq.now) == evq.now + 1


class TestLoadCounters:
    def test_retry_does_not_inflate_load_count(self):
        evq, _, h = build(mshr_entries=1)
        h.load(A, 0, now=0, callback=lambda t: None)
        before = h.loads
        from repro.cache.hierarchy import RETRY

        assert h.load(B, 0, now=0, callback=lambda t: None) is RETRY
        assert h.loads == before
