"""Tests for the TLB model."""

import pytest

from repro.common.errors import ConfigError
from repro.cache.tlb import TLB


class TestAccess:
    def test_first_access_pays_penalty(self):
        tlb = TLB(entries=4, page_bytes=8192, miss_penalty=30)
        assert tlb.access(0) == 30
        assert tlb.access(0) == 0

    def test_same_page_different_offsets_hit(self):
        tlb = TLB(entries=4, page_bytes=8192, miss_penalty=30)
        tlb.access(0)
        assert tlb.access(8191) == 0
        assert tlb.access(8192) == 30  # next page

    def test_lru_eviction(self):
        tlb = TLB(entries=2, page_bytes=4096, miss_penalty=10)
        tlb.access(0)          # page 0
        tlb.access(4096)       # page 1
        tlb.access(0)          # refresh page 0
        tlb.access(2 * 4096)   # evicts page 1
        assert tlb.access(0) == 0
        assert tlb.access(4096) == 10

    def test_capacity_bounded(self):
        tlb = TLB(entries=8, page_bytes=4096)
        for page in range(100):
            tlb.access(page * 4096)
        assert tlb.resident == 8

    def test_stats(self):
        tlb = TLB(entries=4)
        tlb.access(0)
        tlb.access(0)
        assert tlb.stats.rate == pytest.approx(0.5)


class TestValidation:
    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigError):
            TLB(entries=0)

    def test_non_power_of_two_page_rejected(self):
        with pytest.raises(ConfigError):
            TLB(page_bytes=1000)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigError):
            TLB(miss_penalty=-1)

    def test_zero_penalty_allowed(self):
        assert TLB(miss_penalty=0).access(0) == 0
