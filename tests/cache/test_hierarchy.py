"""Tests for the L1/L2/L3 hierarchy in front of DRAM."""

import pytest

from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.cache.hierarchy import (
    PENDING,
    RETRY,
    HierarchyParams,
    MemoryHierarchy,
)
from repro.dram.system import MemorySystem

#: Far-apart addresses (different pages/lines/rows).
A = 0x100000
B = 0x900000
C = 0x1700000


def build(params=None):
    evq = EventQueue()
    memory = MemorySystem.ddr(evq)
    hierarchy = MemoryHierarchy(
        params or HierarchyParams(scale=64, tlb_penalty=0), evq, memory
    )
    return evq, memory, hierarchy


class TestHits:
    def test_l1_hit_latency(self):
        evq, _, h = build()
        done = []
        assert h.load(A, 0, now=0, callback=done.append) is PENDING
        evq.run_all()
        # now resident: hit is now + l1_latency
        assert h.load(A, 0, now=evq.now) == evq.now + 1

    def test_store_to_resident_line(self):
        evq, _, h = build()
        h.load(A, 0, now=0, callback=lambda t: None)
        evq.run_all()
        t = h.store(A, 0, now=evq.now)
        assert t == evq.now + 1

    def test_tlb_penalty_added(self):
        evq = EventQueue()
        memory = MemorySystem.ddr(evq)
        h = MemoryHierarchy(
            HierarchyParams(scale=64, tlb_penalty=25), evq, memory
        )
        h.load(A, 0, now=0, callback=lambda t: None)
        evq.run_all()
        # resident line, but fresh page mapping was installed above, so
        # this second page access hits the TLB: just L1 latency.
        assert h.load(A, 0, now=evq.now) == evq.now + 1
        # a new page pays the TLB penalty even on this L1 miss path
        done = []
        h.load(B, 0, now=evq.now, callback=done.append)
        evq.run_all()


class TestMissPath:
    def test_miss_goes_to_dram_and_returns(self):
        evq, memory, h = build()
        done = []
        assert h.load(A, 0, now=0, callback=done.append) is PENDING
        evq.run_all()
        assert len(done) == 1
        assert done[0] > 30  # beyond L2+L3 lookup alone
        assert memory.stats.reads == 1

    def test_miss_latency_includes_lookups(self):
        evq, memory, h = build()
        done = []
        h.load(A, 0, now=0, callback=done.append)
        evq.run_all()
        # 1 (L1) + 10 (L2) + 20 (L3) + 160 (cold DRAM read) = 191
        assert done[0] == 191

    def test_l2_hit_after_l1_eviction(self):
        evq, memory, h = build(HierarchyParams(scale=512, tlb_penalty=0))
        # tiny L1 (128 B = 2 lines), larger L2: fill L1 past capacity
        done = []
        h.load(A, 0, now=0, callback=done.append)
        evq.run_all()
        for i in range(1, 9):  # evict A from L1 (same set pressure)
            h.load(A + 64 * i * h.l1d.num_sets, 0, now=evq.now,
                   callback=done.append)
            evq.run_all()
        reads_before = memory.stats.reads
        result = h.load(A, 0, now=evq.now, callback=done.append)
        evq.run_all()
        assert memory.stats.reads == reads_before  # served by L2/L3

    def test_merged_misses_share_one_dram_read(self):
        evq, memory, h = build()
        done = []
        h.load(A, 0, now=0, callback=done.append)
        h.load(A + 8, 0, now=0, callback=done.append)  # same line
        evq.run_all()
        assert len(done) == 2
        assert done[0] == done[1]
        assert memory.stats.reads == 1
        assert h.mshr.merges == 1


class TestMSHRBackpressure:
    def test_retry_when_full(self):
        evq, _, h = build(HierarchyParams(scale=64, mshr_entries=2,
                                          tlb_penalty=0))
        assert h.load(A, 0, now=0, callback=lambda t: None) is PENDING
        assert h.load(B, 0, now=0, callback=lambda t: None) is PENDING
        assert h.load(C, 0, now=0, callback=lambda t: None) is RETRY

    def test_retry_leaves_no_state(self):
        evq, _, h = build(HierarchyParams(scale=64, mshr_entries=1,
                                          tlb_penalty=0))
        h.load(A, 0, now=0, callback=lambda t: None)
        loads_before = h.loads
        assert h.load(B, 0, now=0, callback=lambda t: None) is RETRY
        assert h.loads == loads_before
        assert not h.l1d.probe(B // 64)

    def test_store_bypasses_when_full(self):
        evq, _, h = build(HierarchyParams(scale=64, mshr_entries=1,
                                          tlb_penalty=0))
        h.load(A, 0, now=0, callback=lambda t: None)
        t = h.store(B, 0, now=0)
        assert t == 1
        assert h.store_bypasses == 1


class TestMissTracking:
    def test_l1_and_l2_counters_lifecycle(self):
        evq, _, h = build()
        h.load(A, 3, now=0, callback=lambda t: None)
        assert h.outstanding_l1_misses(3) == 1
        assert h.outstanding_l2_misses(3) == 0  # not yet past L2
        evq.run_until(12)  # past the L2 probe at t=11
        assert h.outstanding_l2_misses(3) == 1
        evq.run_all()
        assert h.outstanding_l1_misses(3) == 0
        assert h.outstanding_l2_misses(3) == 0

    def test_counters_per_thread(self):
        evq, _, h = build()
        h.load(A, 0, now=0, callback=lambda t: None)
        h.load(B, 1, now=0, callback=lambda t: None)
        assert h.outstanding_l1_misses(0) == 1
        assert h.outstanding_l1_misses(1) == 1
        assert h.outstanding_l1_misses(2) == 0


class TestPerfectLevels:
    def test_perfect_l1_constant_latency(self):
        evq = EventQueue()
        h = MemoryHierarchy(
            HierarchyParams(perfect_l1=True, perfect_l2=True,
                            perfect_l3=True, tlb_penalty=0),
            evq, None,
        )
        assert h.load(A, 0, now=100) == 101

    def test_perfect_l3_never_touches_dram(self):
        evq = EventQueue()
        h = MemoryHierarchy(
            HierarchyParams(scale=64, perfect_l3=True, tlb_penalty=0),
            evq, None,
        )
        done = []
        h.load(A, 0, now=0, callback=done.append)
        evq.run_all()
        assert done == [31]  # 1 + 10 + 20

    def test_perfect_l2_short_circuit(self):
        evq = EventQueue()
        h = MemoryHierarchy(
            HierarchyParams(scale=64, perfect_l2=True, perfect_l3=True,
                            tlb_penalty=0),
            evq, None,
        )
        done = []
        h.load(A, 0, now=0, callback=done.append)
        evq.run_all()
        assert done == [11]  # 1 + 10

    def test_memory_required_unless_perfect_l3(self):
        with pytest.raises(ConfigError):
            MemoryHierarchy(HierarchyParams(), EventQueue(), None)


class TestWritebacks:
    def test_dirty_l3_eviction_writes_dram(self):
        evq, memory, h = build(HierarchyParams(scale=2048, tlb_penalty=0))
        # L3 is tiny (2 KB = 32 lines, 4-way, 8 sets): dirty lines then
        # evict them with a sweep of a different tag range.
        for i in range(16):
            h.store(A + i * 64, 0, now=evq.now)
            evq.run_all()
        writes_before = memory.stats.writes
        for i in range(64):
            h.load(C + i * 64, 0, now=evq.now, callback=lambda t: None)
            evq.run_all()
        assert memory.stats.writes > writes_before


class TestSnapshotAndReset:
    def test_snapshot_fields(self):
        evq, _, h = build()
        h.load(A, 0, now=0, callback=lambda t: None)
        h.store(B, 1, now=0)
        evq.run_all()
        snap = h.snapshot()
        assert snap.loads == 1
        assert snap.stores == 1
        assert snap.dram_reads_issued == 2
        assert snap.dram_loads_per_thread == {0: 1, 1: 1}

    def test_reset_clears_counters_keeps_contents(self):
        evq, _, h = build()
        h.load(A, 0, now=0, callback=lambda t: None)
        evq.run_all()
        h.reset_stats()
        snap = h.snapshot()
        assert snap.loads == 0
        assert snap.dram_reads_issued == 0
        # contents survive:
        assert h.load(A, 0, now=evq.now) == evq.now + 1
