"""Tests for the set-associative LRU cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.cache.cache import SetAssocCache


def small_cache(assoc=2, sets=4):
    return SetAssocCache("T", sets * assoc * 64, assoc, 64)


class TestBasics:
    def test_geometry(self):
        c = SetAssocCache("L1", 64 * 1024, 2, 64)
        assert c.num_sets == 512

    def test_misaligned_size_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocCache("bad", 1000, 2, 64)

    def test_nonpositive_params_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocCache("bad", 0, 2, 64)
        with pytest.raises(ConfigError):
            SetAssocCache("bad", 1024, -1, 64)

    def test_first_access_misses_then_hits(self):
        c = small_cache()
        assert c.access(10).hit is False
        assert c.access(10).hit is True

    def test_probe_does_not_disturb(self):
        c = small_cache()
        c.access(10)
        assert c.probe(10)
        assert not c.probe(999)
        assert c.stats.total == 1  # probe not counted


class TestLRU:
    def test_lru_victim_evicted(self):
        c = small_cache(assoc=2, sets=1)
        c.access(0)
        c.access(1)
        c.access(0)  # 1 is now LRU
        c.access(2)  # evicts 1
        assert c.probe(0)
        assert not c.probe(1)
        assert c.probe(2)

    def test_hit_refreshes_recency(self):
        c = small_cache(assoc=2, sets=1)
        c.access(0)
        c.access(1)
        c.access(0)
        c.access(1)
        c.access(2)  # victim must be 0 (LRU)
        assert not c.probe(0)
        assert c.probe(1)

    def test_different_sets_do_not_interfere(self):
        c = small_cache(assoc=1, sets=4)
        for line in range(4):
            c.access(line)
        assert all(c.probe(line) for line in range(4))


class TestWriteback:
    def test_clean_victim_no_writeback(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0)
        result = c.access(1)
        assert result.writeback is None

    def test_dirty_victim_returned(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0, write=True)
        result = c.access(1)
        assert result.writeback == 0

    def test_write_hit_sets_dirty(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0)               # clean fill
        c.access(0, write=True)   # dirty it
        assert c.access(1).writeback == 0

    def test_writeback_address_reconstruction(self):
        c = SetAssocCache("T", 8 * 64, 2, 64)  # 4 sets
        line = 4 * 7 + 2  # set 2, tag 7
        c.access(line, write=True)
        c.access(4 * 9 + 2, write=True)
        result = c.access(4 * 11 + 2)
        assert result.writeback == line


class TestMarkDirty:
    def test_present_line_marked(self):
        c = small_cache()
        c.access(5)
        assert c.mark_dirty_if_present(5)
        assert c.access(5 + c.num_sets * 1000).writeback is None or True
        # explicit: evicting 5 must produce a writeback
        c2 = small_cache(assoc=1, sets=1)
        c2.access(0)
        c2.mark_dirty_if_present(0)
        assert c2.access(1).writeback == 0

    def test_absent_line_ignored(self):
        c = small_cache()
        assert not c.mark_dirty_if_present(123)
        assert not c.probe(123)  # no allocation side effect


class TestInvalidate:
    def test_invalidate_present(self):
        c = small_cache()
        c.access(3)
        assert c.invalidate(3)
        assert not c.probe(3)

    def test_invalidate_absent(self):
        assert not small_cache().invalidate(3)


class TestStats:
    def test_hit_rate_tracked(self):
        c = small_cache()
        c.access(1)
        c.access(1)
        c.access(2)
        assert c.stats.rate == pytest.approx(1 / 3)

    def test_lines_resident(self):
        c = small_cache(assoc=2, sets=2)
        for line in range(3):
            c.access(line)
        assert c.lines_resident == 3


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    def test_capacity_never_exceeded(self, lines):
        c = small_cache(assoc=2, sets=4)
        for line in lines:
            c.access(line)
        assert c.lines_resident <= 8
        for s in c._sets:
            assert len(s) <= 2

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    def test_most_recent_line_always_resident(self, lines):
        c = small_cache(assoc=2, sets=4)
        for line in lines:
            c.access(line)
            assert c.probe(line)

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(0, 31), st.booleans()),
                    min_size=1, max_size=200))
    def test_stats_consistent(self, ops):
        c = small_cache(assoc=2, sets=4)
        for line, write in ops:
            c.access(line, write=write)
        assert c.stats.total == len(ops)
        assert 0 <= c.stats.hits <= c.stats.total
