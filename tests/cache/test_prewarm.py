"""Tests for structural cache pre-warming."""

from repro.common.events import EventQueue
from repro.common.rng import child_rng
from repro.cache.hierarchy import HierarchyParams, MemoryHierarchy
from repro.cache.prewarm import prewarm
from repro.dram.system import MemorySystem
from repro.workloads.generator import SyntheticStream
from repro.workloads.spec2000 import get_profile


def build(scale=32):
    evq = EventQueue()
    memory = MemorySystem.ddr(evq)
    hierarchy = MemoryHierarchy(HierarchyParams(scale=scale), evq, memory)
    return evq, memory, hierarchy


def footprint_for(app, tid=0, scale=32):
    stream = SyntheticStream(
        get_profile(app), child_rng(1, f"{app}:{tid}"), thread_id=tid,
        scale=scale,
    )
    return stream.footprint()


class TestPrewarm:
    def test_resident_lines_installed(self):
        _, _, hierarchy = build()
        inserted = prewarm(hierarchy, [footprint_for("gzip")])
        assert inserted > 0
        assert hierarchy.l3.lines_resident > 0

    def test_small_region_reaches_l1(self):
        _, _, hierarchy = build()
        footprint = footprint_for("eon")  # stack + small L2 region only
        prewarm(hierarchy, [footprint])
        base_line, size, _ = footprint[0]  # the stack region
        hits = sum(
            1 for line in range(base_line, base_line + size)
            if hierarchy.l1d.probe(line)
        )
        assert hits == size

    def test_dram_regions_skipped(self):
        _, _, hierarchy = build()
        footprint = footprint_for("mcf")
        inserted = prewarm(hierarchy, [footprint])
        dram_region_lines = max(size for _, size, _ in footprint)
        total_lines = sum(size for _, size, _ in footprint)
        assert inserted <= total_lines - dram_region_lines

    def test_stats_reset_after_fill(self):
        _, memory, hierarchy = build()
        prewarm(hierarchy, [footprint_for("gzip")])
        assert hierarchy.l3.stats.total == 0
        assert hierarchy.l1d.stats.total == 0

    def test_multiple_threads_share_capacity(self):
        _, _, hierarchy = build()
        footprints = [footprint_for("swim", tid=t) for t in range(4)]
        prewarm(hierarchy, footprints)
        capacity = hierarchy.l3.num_sets * hierarchy.l3.assoc
        assert hierarchy.l3.lines_resident <= capacity

    def test_perfect_l1_noop(self):
        evq = EventQueue()
        hierarchy = MemoryHierarchy(
            HierarchyParams(perfect_l1=True, perfect_l3=True), evq, None
        )
        assert prewarm(hierarchy, [footprint_for("gzip")]) == 0

    def test_empty_footprints(self):
        _, _, hierarchy = build()
        assert prewarm(hierarchy, [[]]) == 0

    def test_reduces_cold_misses(self):
        # A warmed hierarchy should serve the stack region from L1.
        _, memory, hierarchy = build()
        footprint = footprint_for("eon")
        prewarm(hierarchy, [footprint])
        evq = hierarchy.event_queue
        base_line, size, _ = footprint[0]
        for line in range(base_line, base_line + min(size, 16)):
            hierarchy.load(line * 64, 0, now=evq.now, callback=lambda t: None)
            evq.run_all()
        assert memory.stats.reads == 0
