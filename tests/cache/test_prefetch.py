"""Tests for the stride prefetcher and its hierarchy integration."""

import pytest

from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.cache.hierarchy import HierarchyParams, MemoryHierarchy
from repro.cache.prefetch import PrefetchQuota, StridePrefetcher
from repro.dram.system import MemorySystem


class TestStrideDetection:
    def test_needs_two_confirmations(self):
        p = StridePrefetcher(degree=2, lines_per_page=1 << 30)
        assert p.train(0, 100) == []        # first touch
        assert p.train(0, 101) == []        # stride 1, 1 confirmation
        assert p.train(0, 102) == [103, 104]

    def test_detects_larger_strides(self):
        p = StridePrefetcher(degree=1, lines_per_page=1 << 30)
        p.train(0, 0)
        p.train(0, 8)
        assert p.train(0, 16) == [24]

    def test_stride_change_retrains(self):
        p = StridePrefetcher(degree=1, lines_per_page=1 << 30)
        for line in (0, 1, 2):
            p.train(0, line)
        assert p.train(0, 10) == []  # stride broke: 8, 1 confirmation
        assert p.train(0, 18) == [26]

    def test_threads_tracked_separately(self):
        p = StridePrefetcher(degree=1, lines_per_page=1 << 30)
        p.train(0, 0)
        p.train(1, 50)
        p.train(0, 1)
        p.train(1, 52)
        assert p.train(0, 2) == [3]
        assert p.train(1, 54) == [56]

    def test_zero_stride_ignored(self):
        p = StridePrefetcher(degree=1, lines_per_page=1 << 30)
        p.train(0, 5)
        assert p.train(0, 5) == []

    def test_table_bounded(self):
        p = StridePrefetcher(table_entries=4, lines_per_page=128)
        for page in range(20):
            p.train(0, page * 128)
        assert len(p._table) <= 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            StridePrefetcher(degree=0)


class TestQuota:
    def test_bounded(self):
        q = PrefetchQuota(entries=2)
        assert q.try_acquire(1)
        assert q.try_acquire(2)
        assert not q.try_acquire(3)
        assert q.dropped == 1

    def test_duplicate_dropped(self):
        q = PrefetchQuota(entries=4)
        assert q.try_acquire(1)
        assert not q.try_acquire(1)

    def test_release_frees(self):
        q = PrefetchQuota(entries=1)
        q.try_acquire(1)
        q.release(1)
        assert q.try_acquire(2)
        assert q.in_flight == 1


class TestHierarchyIntegration:
    def build(self, prefetch=True):
        evq = EventQueue()
        memory = MemorySystem.ddr(evq)
        hierarchy = MemoryHierarchy(
            HierarchyParams(scale=64, tlb_penalty=0, prefetch=prefetch),
            evq, memory,
        )
        return evq, memory, hierarchy

    def test_sequential_misses_trigger_prefetch_fills(self):
        evq, memory, h = self.build()
        # miss lines 0,1,2,... with large gaps in time so each trains
        for i in range(8):
            h.load(i * 64, 0, now=evq.now, callback=lambda t: None)
            evq.run_all()
        assert h.prefetch_fills > 0
        assert h.prefetch_dram_reads > 0

    def test_prefetched_line_hits_in_l1(self):
        evq, memory, h = self.build()
        for i in range(4):
            h.load(i * 64, 0, now=evq.now, callback=lambda t: None)
            evq.run_all()
        # the prefetcher ran ahead: the next line is already resident
        result = h.load(4 * 64, 0, now=evq.now)
        assert isinstance(result, int)  # an L1 hit, not PENDING

    def test_disabled_by_default(self):
        evq = EventQueue()
        memory = MemorySystem.ddr(evq)
        h = MemoryHierarchy(HierarchyParams(scale=64), evq, memory)
        assert h.prefetcher is None
        for i in range(6):
            h.load(i * 64, 0, now=evq.now, callback=lambda t: None)
            evq.run_all()
        assert h.prefetch_fills == 0

    def test_random_misses_do_not_prefetch(self):
        evq, memory, h = self.build()
        for line in (5, 999, 33, 7777, 123, 45678):
            h.load(line * 64, 0, now=evq.now, callback=lambda t: None)
            evq.run_all()
        assert h.prefetch_dram_reads == 0

    def test_quota_bounds_inflight(self):
        evq, memory, h = self.build()
        # issue a long run of sequential misses without draining events
        for i in range(32):
            h.load(i * 64, 0, now=evq.now, callback=lambda t: None)
        assert h.prefetch_quota.in_flight <= 4
        evq.run_all()

    def test_snapshot_reports_prefetch_counters(self):
        evq, memory, h = self.build()
        for i in range(8):
            h.load(i * 64, 0, now=evq.now, callback=lambda t: None)
            evq.run_all()
        snap = h.snapshot()
        assert snap.prefetch_fills == h.prefetch_fills
        assert snap.prefetch_dram_reads == h.prefetch_dram_reads
