"""Tests for the MSHR file."""

import pytest

from repro.common.errors import ConfigError
from repro.cache.mshr import MSHRFile, MSHRStatus


class TestRegistration:
    def test_first_miss_is_new(self):
        m = MSHRFile(4)
        assert m.register(10, 0) is MSHRStatus.NEW
        assert m.pending(10)

    def test_same_line_merges(self):
        m = MSHRFile(4)
        m.register(10, 0)
        assert m.register(10, 1) is MSHRStatus.MERGED
        assert m.merges == 1
        assert len(m) == 1

    def test_full_file_rejects(self):
        m = MSHRFile(2)
        m.register(1, 0)
        m.register(2, 0)
        assert m.register(3, 0) is MSHRStatus.FULL
        assert m.rejections == 1
        assert not m.pending(3)

    def test_merge_allowed_when_full(self):
        m = MSHRFile(1)
        m.register(1, 0)
        assert m.register(1, 0) is MSHRStatus.MERGED

    def test_available(self):
        m = MSHRFile(3)
        m.register(1, 0)
        assert m.available == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigError):
            MSHRFile(0)


class TestCompletion:
    def test_waiters_invoked_with_finish_time(self):
        m = MSHRFile(4)
        calls = []
        m.register(10, 0, waiter=lambda t: calls.append(("a", t)))
        m.register(10, 1, waiter=lambda t: calls.append(("b", t)))
        m.complete(10, 777)
        assert calls == [("a", 777), ("b", 777)]
        assert not m.pending(10)

    def test_entry_reusable_after_completion(self):
        m = MSHRFile(1)
        m.register(1, 0)
        m.complete(1, 5)
        assert m.register(2, 0) is MSHRStatus.NEW

    def test_completion_of_unknown_line_raises(self):
        with pytest.raises(KeyError):
            MSHRFile(1).complete(99, 0)

    def test_waiterless_entry_completes(self):
        m = MSHRFile(1)
        m.register(1, 0, waiter=None)
        assert m.complete(1, 5) == []


class TestMetadata:
    def test_initiator_recorded(self):
        m = MSHRFile(4)
        m.register(10, 3)
        m.register(10, 5)  # merge does not change initiator
        assert m.initiator(10) == 3

    def test_dram_flag(self):
        m = MSHRFile(4)
        m.register(10, 0)
        assert not m.went_to_dram(10)
        m.mark_dram(10)
        assert m.went_to_dram(10)
