"""Tests for bank row-buffer state and page modes."""

from repro.dram.bank import Bank, PageMode
from repro.dram.timing import ddr_timing

T = ddr_timing()


class TestClassification:
    def test_fresh_bank_is_closed(self):
        assert Bank().classify(5, PageMode.OPEN) == "closed"

    def test_open_same_row_is_hit(self):
        b = Bank()
        b.serve(5, 0, 100, PageMode.OPEN, T)
        assert b.classify(5, PageMode.OPEN) == "hit"

    def test_open_other_row_is_conflict(self):
        b = Bank()
        b.serve(5, 0, 100, PageMode.OPEN, T)
        assert b.classify(6, PageMode.OPEN) == "conflict"

    def test_close_mode_never_hits(self):
        b = Bank()
        b.serve(5, 0, 100, PageMode.CLOSE, T)
        assert b.classify(5, PageMode.CLOSE) == "closed"


class TestServiceLatency:
    def test_hit_cost(self):
        b = Bank()
        b.serve(5, 0, 100, PageMode.OPEN, T)
        assert b.service_latency(5, PageMode.OPEN, T) == T.hit_latency

    def test_closed_cost(self):
        assert Bank().service_latency(5, PageMode.OPEN, T) == T.closed_latency

    def test_conflict_cost(self):
        b = Bank()
        b.serve(5, 0, 100, PageMode.OPEN, T)
        assert b.service_latency(9, PageMode.OPEN, T) == T.conflict_latency

    def test_close_mode_always_closed_cost(self):
        b = Bank()
        b.serve(5, 0, 100, PageMode.CLOSE, T)
        assert b.service_latency(5, PageMode.CLOSE, T) == T.closed_latency


class TestServe:
    def test_open_mode_keeps_row(self):
        b = Bank()
        b.serve(7, 0, 100, PageMode.OPEN, T)
        assert b.open_row == 7
        assert b.free_at == 100

    def test_close_mode_precharges_and_pays_for_it(self):
        b = Bank()
        b.serve(7, 0, 100, PageMode.CLOSE, T)
        assert b.open_row is None
        assert b.free_at == 100 + T.t_pre

    def test_hit_reported(self):
        b = Bank()
        assert b.serve(7, 0, 100, PageMode.OPEN, T) is False
        assert b.serve(7, 100, 200, PageMode.OPEN, T) is True
        assert b.serve(8, 200, 300, PageMode.OPEN, T) is False

    def test_hit_counters(self):
        b = Bank()
        b.serve(7, 0, 100, PageMode.OPEN, T)
        b.serve(7, 100, 200, PageMode.OPEN, T)
        b.serve(9, 200, 300, PageMode.OPEN, T)
        assert b.services == 3
        assert b.row_hits == 1

    def test_row_changes_on_conflict(self):
        b = Bank()
        b.serve(7, 0, 100, PageMode.OPEN, T)
        b.serve(9, 100, 200, PageMode.OPEN, T)
        assert b.open_row == 9
