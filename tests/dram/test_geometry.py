"""Tests for DRAM geometry and channel ganging."""

import pytest

from repro.common.errors import ConfigError
from repro.dram.geometry import DRAMGeometry, ddr_geometry, rdram_geometry


class TestDDRGeometry:
    def test_two_channel_system_has_eight_banks(self):
        # Section 5.4: "eight for the 2-channel system"
        g = ddr_geometry(physical_channels=2)
        assert g.total_banks == 8
        assert g.banks_per_logical_channel == 4

    def test_channel_counts(self):
        for n in (2, 4, 8):
            g = ddr_geometry(physical_channels=n)
            assert g.logical_channels == n
            assert g.total_banks == 4 * n

    def test_page_size(self):
        g = ddr_geometry()
        assert g.page_bytes == 2048
        assert g.lines_per_page == 32


class TestRDRAMGeometry:
    def test_many_independent_banks(self):
        # 32 banks/chip (Section 5.4), 4 chips per channel
        g = rdram_geometry(physical_channels=2)
        assert g.banks_per_logical_channel == 128
        assert g.total_banks == 256

    def test_narrow_page(self):
        assert rdram_geometry().page_bytes == 1024


class TestGanging:
    def test_gang_reduces_logical_channels(self):
        g = ddr_geometry(physical_channels=8, gang=4)
        assert g.logical_channels == 2

    def test_gang_does_not_add_banks(self):
        independent = ddr_geometry(physical_channels=8, gang=1)
        ganged = ddr_geometry(physical_channels=8, gang=4)
        assert (
            ganged.banks_per_logical_channel
            == independent.banks_per_logical_channel
        )
        # ... so total independent banks shrink with ganging.
        assert ganged.total_banks < independent.total_banks

    def test_gang_widens_effective_page(self):
        g = ddr_geometry(physical_channels=4, gang=2)
        assert g.effective_page_bytes == 4096
        assert g.lines_per_page == 64

    def test_gang_must_divide_channels(self):
        with pytest.raises(ConfigError):
            ddr_geometry(physical_channels=8, gang=3)

    def test_organization_name(self):
        assert ddr_geometry(8, gang=2).organization_name() == "8C-2G"
        assert ddr_geometry(2, gang=1).organization_name() == "2C-1G"


class TestValidation:
    def test_zero_channels_rejected(self):
        with pytest.raises(ConfigError):
            DRAMGeometry(physical_channels=0)

    def test_page_must_hold_whole_lines(self):
        with pytest.raises(ConfigError):
            DRAMGeometry(page_bytes=100, line_bytes=64)

    def test_bank_count_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            DRAMGeometry(groups_per_channel=3, banks_per_group=1)

    def test_zero_rows_rejected(self):
        with pytest.raises(ConfigError):
            DRAMGeometry(rows_per_bank=0)
