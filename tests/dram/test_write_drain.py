"""Write-queue drain hysteresis and read/write interplay."""

from repro.common.events import EventQueue
from repro.dram.system import MemorySystem


def build(scheduler="fcfs"):
    evq = EventQueue()
    return evq, MemorySystem.ddr(evq, channels=2, scheduler=scheduler)


class TestDrainHysteresis:
    def test_reads_win_below_high_watermark(self):
        evq, system = build()
        controller = system.channels[0]
        finish = {}
        # a few writes, then a read: the read is served promptly
        for i in range(controller.WRITE_DRAIN_HIGH - 2):
            system.write(i * 4096, 0)
        read = system.read(
            999 * 64, 0, callback=lambda t, r: finish.setdefault("read", t)
        )
        evq.run_all()
        assert finish["read"] < read.arrival + 3000

    def test_flood_triggers_drain(self):
        evq, system = build()
        controller = system.channels[0]
        # exceed the high watermark on channel 0 (even page indices)
        lines = [i * 64 for i in range(controller.WRITE_DRAIN_HIGH * 4)]
        for line in lines:
            system.write(line, 0)
        evq.run_all()
        assert system.stats.writes == len(lines)

    def test_drain_exits_at_low_watermark(self):
        evq, system = build()
        controller = system.channels[0]
        for i in range(controller.WRITE_DRAIN_HIGH + 2):
            system.write(i * 4096 * 2, 0)
        # run partially: after the drain empties below the low
        # watermark, the controller flips back to read priority
        evq.run_all()
        assert not controller._draining or len(controller.writes) > 0


class TestMixedTraffic:
    def test_writes_eventually_complete_under_read_pressure(self):
        evq, system = build(scheduler="hit-first")
        served = {"writes": 0}
        for i in range(10):
            system.write(i * 4096, 0)
        for i in range(50):
            system.read(100_000 + i, 1)
        evq.run_all()
        assert system.stats.writes == 10
        assert system.stats.reads == 50

    def test_outstanding_drains_to_zero(self):
        evq, system = build()
        for i in range(30):
            (system.read if i % 3 else system.write)(i * 997, i % 4)
        evq.run_all()
        assert system.outstanding_total == 0
