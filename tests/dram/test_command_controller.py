"""Tests for the command-level DRAM controller."""

import pytest

from repro.common.events import EventQueue
from repro.dram.bank import PageMode
from repro.dram.command_controller import Command
from repro.dram.system import MemorySystem
from repro.dram.timing import ddr_timing

T = ddr_timing()
OVERHEAD = T.ctrl_request + T.ctrl_response
COLD_READ = OVERHEAD + T.t_row + T.t_col + T.transfer


def build(scheduler="fcfs", page_mode=PageMode.OPEN, channels=2):
    evq = EventQueue()
    system = MemorySystem.ddr(
        evq, channels=channels, scheduler=scheduler, page_mode=page_mode,
        controller_model="command",
    )
    return evq, system


def run_reads(evq, system, lines, tid=0):
    done = {}
    for line in lines:
        system.read(
            line, tid, callback=lambda t, r: done.__setitem__(r.line_addr, t)
        )
    evq.run_all()
    return done


def same_bank_stride(system):
    g = system.geometry
    return g.lines_per_page * g.banks_per_logical_channel * g.logical_channels


class TestCommandSequences:
    def test_cold_read_is_activate_then_read(self):
        evq, system = build()
        done = run_reads(evq, system, [0])
        assert done[0] == COLD_READ
        ctrl = system.channels[0]
        assert ctrl.commands_issued[Command.ACTIVATE] == 1
        assert ctrl.commands_issued[Command.READ] == 1
        assert ctrl.commands_issued[Command.PRECHARGE] == 0

    def test_row_hit_needs_only_column_command(self):
        evq, system = build()
        run_reads(evq, system, [0, 1])
        ctrl = system.channels[0]
        assert ctrl.commands_issued[Command.ACTIVATE] == 1
        assert ctrl.commands_issued[Command.READ] == 2
        assert system.stats.row_buffer.hits == 1

    def test_conflict_needs_precharge(self):
        evq, system = build()
        run_reads(evq, system, [0, same_bank_stride(system)])
        ctrl = system.channels[0]
        assert ctrl.commands_issued[Command.PRECHARGE] == 1
        assert ctrl.commands_issued[Command.ACTIVATE] == 2

    def test_close_page_auto_precharges(self):
        evq, system = build(page_mode=PageMode.CLOSE)
        run_reads(evq, system, [0, 1])
        ctrl = system.channels[0]
        # no explicit PRECHARGE command, but the second access to the
        # same page still needs its own ACTIVATE
        assert ctrl.commands_issued[Command.PRECHARGE] == 0
        assert ctrl.commands_issued[Command.ACTIVATE] == 2
        assert system.stats.row_buffer.hits == 0


class TestTimingConstraints:
    def test_tras_delays_early_precharge(self):
        evq, system = build()
        stride = same_bank_stride(system)
        done = run_reads(evq, system, [0, stride])
        # The conflicting access cannot precharge before ACT+tRAS:
        # ACT at 20; PRE >= 20 + t_ras; then tRP + tRCD + tCAS + burst.
        earliest = (
            20 + T.t_ras + T.t_pre + T.t_row + T.t_col + T.transfer
            + T.ctrl_response
        )
        assert done[stride] >= earliest

    def test_trrd_spaces_activates(self):
        evq, system = build()
        g = system.geometry
        other_bank = g.lines_per_page * g.logical_channels
        system.read(0, 0)
        system.read(other_bank, 0)
        evq.run_all()
        ctrl = system.channels[0]
        assert ctrl.commands_issued[Command.ACTIVATE] == 2

    def test_command_bus_serializes_commands(self):
        # Two cold reads on different banks: the second ACTIVATE cannot
        # share the first's command slot.
        evq, system = build()
        g = system.geometry
        other_bank = g.lines_per_page * g.logical_channels
        done = run_reads(evq, system, [0, other_bank])
        assert done[other_bank] > done[0]

    def test_read_write_turnaround(self):
        evq, system = build()
        done = []
        system.read(0, 0, callback=lambda t, r: done.append(t))
        system.write(1, 0)
        system.read(2, 0, callback=lambda t, r: done.append(t))
        evq.run_all()
        # all served; the interleaved write forces turnaround gaps
        assert system.stats.writes == 1
        assert len(done) == 2


class TestSchedulingParity:
    """Both controller models expose the same scheduling behaviour."""

    def test_hit_first_reorders(self):
        evq, system = build(scheduler="hit-first")
        stride = same_bank_stride(system)
        done = run_reads(evq, system, [0, stride, 1, 2, 3])
        assert max(done[1], done[2], done[3]) < done[stride]

    def test_stats_match_interface_of_request_model(self):
        evq, system = build()
        run_reads(evq, system, [0, 1, 2])
        stats = system.finish()
        assert stats.reads == 3
        assert stats.avg_read_latency > 0
        assert stats.busy_outstanding_distribution()

    @pytest.mark.parametrize("sched", ["fcfs", "hit-first", "request-based"])
    def test_all_schedulers_complete(self, sched):
        evq, system = build(scheduler=sched)
        lines = [i * 997 for i in range(20)]
        done = run_reads(evq, system, lines)
        assert len(done) == 20


class TestModelComparison:
    def test_request_model_is_close_to_command_model(self):
        """The fast model's single-request latency matches the
        command model's exactly for an idle channel."""
        evq_r = EventQueue()
        request_model = MemorySystem.ddr(evq_r)
        evq_c = EventQueue()
        command_model = MemorySystem.ddr(evq_c, controller_model="command")
        lat_r = run_reads(evq_r, request_model, [0])[0]
        lat_c = run_reads(evq_c, command_model, [0])[0]
        assert lat_r == lat_c

    def test_unknown_model_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            MemorySystem.ddr(EventQueue(), controller_model="quantum")


class TestRefresh:
    def test_refresh_closes_rows_and_counts(self):
        from repro.dram.geometry import ddr_geometry
        from repro.dram.system import MemorySystem
        from repro.dram.timing import DRAMTiming

        evq = EventQueue()
        timing = DRAMTiming(t_refi=2000, t_rfc=200)
        system = MemorySystem(
            evq, ddr_geometry(), timing, controller_model="command"
        )
        # spread reads over a window longer than several tREFIs
        for i in range(12):
            evq.schedule(i * 700, system.read, i, 0)
        evq.run_all()
        ctrl = system.channels[0]
        assert ctrl.refreshes >= 2
        # rows were closed by refresh, so later same-page reads paid
        # fresh ACTIVATEs: more activates than distinct pages touched
        assert ctrl.commands_issued[Command.ACTIVATE] > 1

    def test_refresh_disabled_with_zero_interval(self):
        from repro.dram.geometry import ddr_geometry
        from repro.dram.system import MemorySystem
        from repro.dram.timing import DRAMTiming

        evq = EventQueue()
        timing = DRAMTiming(t_refi=0)
        system = MemorySystem(
            evq, ddr_geometry(), timing, controller_model="command"
        )
        for i in range(5):
            evq.schedule(i * 5000, system.read, i * 999, 0)
        evq.run_all()
        assert system.channels[0].refreshes == 0
