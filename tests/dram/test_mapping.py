"""Tests for page-interleaved and XOR address mappings."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.dram.geometry import ddr_geometry, rdram_geometry
from repro.dram.mapping import (
    PageInterleaveMapping,
    XorPageMapping,
    make_mapping,
)


@pytest.fixture
def ddr2():
    return ddr_geometry(physical_channels=2)


class TestPageInterleave:
    def test_lines_within_page_map_together(self, ddr2):
        m = PageInterleaveMapping(ddr2)
        lines_per_page = ddr2.lines_per_page
        first = m.map_line(0)
        for line in range(lines_per_page):
            assert m.map_line(line) == first

    def test_consecutive_pages_round_robin_channels(self, ddr2):
        m = PageInterleaveMapping(ddr2)
        lpp = ddr2.lines_per_page
        channels = [m.map_line(p * lpp).channel for p in range(4)]
        assert channels == [0, 1, 0, 1]

    def test_banks_cycle_after_channels(self, ddr2):
        m = PageInterleaveMapping(ddr2)
        lpp = ddr2.lines_per_page
        # pages 0 and 2 are both on channel 0, in consecutive banks
        a = m.map_line(0)
        b = m.map_line(2 * lpp)
        assert a.channel == b.channel == 0
        assert b.bank == (a.bank + 1) % ddr2.banks_per_logical_channel

    def test_row_advances_after_all_banks(self, ddr2):
        m = PageInterleaveMapping(ddr2)
        lpp = ddr2.lines_per_page
        pages_per_row = ddr2.logical_channels * ddr2.banks_per_logical_channel
        a = m.map_line(0)
        b = m.map_line(pages_per_row * lpp)
        assert (b.channel, b.bank) == (a.channel, a.bank)
        assert b.row == a.row + 1

    def test_fields_in_range(self, ddr2):
        m = PageInterleaveMapping(ddr2)
        for line in range(0, 100000, 37):
            mapped = m.map_line(line)
            assert 0 <= mapped.channel < ddr2.logical_channels
            assert 0 <= mapped.bank < ddr2.banks_per_logical_channel
            assert 0 <= mapped.row < ddr2.rows_per_bank


class TestXorMapping:
    def test_same_channel_and_row_as_page_mapping(self, ddr2):
        page = PageInterleaveMapping(ddr2)
        xor = XorPageMapping(ddr2)
        for line in range(0, 50000, 61):
            p, x = page.map_line(line), xor.map_line(line)
            assert p.channel == x.channel
            assert p.row == x.row

    def test_bank_permutation_is_bijective_per_row(self, ddr2):
        xor = XorPageMapping(ddr2)
        banks = ddr2.banks_per_logical_channel
        for row in (0, 1, 5, 1000):
            permuted = {xor._permute_bank(b, row, 0) for b in range(banks)}
            assert permuted == set(range(banks))

    def test_spreads_same_bank_conflicts(self):
        # Pages that collide on one bank under page interleaving land
        # on different banks under XOR (the scheme's whole point).
        geometry = ddr_geometry(physical_channels=2)
        page = PageInterleaveMapping(geometry)
        xor = XorPageMapping(geometry)
        lpp = geometry.lines_per_page
        stride = geometry.logical_channels * geometry.banks_per_logical_channel
        lines = [p * stride * lpp for p in range(8)]  # same bank, rows 0..7
        page_banks = {page.map_line(line).bank for line in lines}
        xor_banks = {xor.map_line(line).bank for line in lines}
        assert len(page_banks) == 1
        assert len(xor_banks) == geometry.banks_per_logical_channel

    def test_rdram_many_banks(self):
        geometry = rdram_geometry()
        xor = XorPageMapping(geometry)
        mapped = xor.map_line(123456)
        assert 0 <= mapped.bank < 128


class TestFactory:
    def test_known_names(self, ddr2):
        assert isinstance(make_mapping("page", ddr2), PageInterleaveMapping)
        assert isinstance(make_mapping("xor", ddr2), XorPageMapping)

    def test_unknown_name(self, ddr2):
        with pytest.raises(ConfigError):
            make_mapping("banana", ddr2)


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**40))
    def test_page_mapping_total_function(self, line):
        geometry = ddr_geometry(physical_channels=4)
        m = PageInterleaveMapping(geometry)
        mapped = m.map_line(line)
        assert 0 <= mapped.channel < 4
        assert 0 <= mapped.bank < 4
        assert 0 <= mapped.row < geometry.rows_per_bank

    @given(st.integers(min_value=0, max_value=2**40))
    def test_xor_mapping_total_function(self, line):
        geometry = rdram_geometry(physical_channels=2)
        m = XorPageMapping(geometry)
        mapped = m.map_line(line)
        assert 0 <= mapped.channel < 2
        assert 0 <= mapped.bank < 128

    @given(st.integers(min_value=0, max_value=2**30))
    def test_mappings_distinct_within_capacity(self, page_index):
        """Two distinct pages within one row-cycle never share
        (channel, bank, row) under either mapping."""
        geometry = ddr_geometry(physical_channels=2)
        lpp = geometry.lines_per_page
        capacity_pages = (
            geometry.logical_channels
            * geometry.banks_per_logical_channel
            * geometry.rows_per_bank
        )
        a = page_index % capacity_pages
        b = (page_index + 1) % capacity_pages
        for mapping_cls in (PageInterleaveMapping, XorPageMapping):
            m = mapping_cls(geometry)
            if a != b:
                assert m.map_line(a * lpp) != m.map_line(b * lpp)


class TestColorXorMapping:
    """Extension mapping: thread-color bits folded into the bank bits."""

    def test_registered_in_factory(self, ddr2):
        from repro.dram.mapping import ColorXorMapping

        assert isinstance(make_mapping("color-xor", ddr2), ColorXorMapping)

    def test_channel_and_row_unchanged(self, ddr2):
        from repro.dram.mapping import ColorXorMapping

        page = PageInterleaveMapping(ddr2)
        color = ColorXorMapping(ddr2)
        for line in range(0, 50000, 61):
            p, c = page.map_line(line), color.map_line(line)
            assert p.channel == c.channel
            assert p.row == c.row

    def test_separates_equal_offsets_of_different_threads(self, ddr2):
        from repro.dram.mapping import ColorXorMapping
        from repro.workloads.generator import THREAD_ADDRESS_STRIDE

        xor = XorPageMapping(ddr2)
        color = ColorXorMapping(ddr2)
        stride_lines = THREAD_ADDRESS_STRIDE // 64
        lines = [tid * stride_lines for tid in range(1, 5)]
        xor_banks = [xor.map_line(line).bank for line in lines]
        color_banks = [color.map_line(line).bank for line in lines]
        # Under plain XOR all four threads' base lines collide on one
        # bank; the color mapping spreads them.
        assert len(set(xor_banks)) == 1
        assert len(set(color_banks)) > 1

    def test_bank_in_range(self, ddr2):
        from repro.dram.mapping import ColorXorMapping

        color = ColorXorMapping(ddr2)
        for line in range(0, 10**7, 999983):
            assert 0 <= color.map_line(line).bank < 4
