"""End-to-end timing tests for ganged organizations and RDRAM."""

from repro.common.events import EventQueue
from repro.dram.system import MemorySystem
from repro.dram.timing import ddr_timing, rdram_timing


def one_read_latency(system, evq, line=0):
    done = []
    system.read(line, 0, callback=lambda t, r: done.append(t))
    evq.run_all()
    return done[0]


class TestGangedTiming:
    def test_gang_shortens_single_transfer(self):
        t = ddr_timing()
        evq1 = EventQueue()
        independent = MemorySystem.ddr(evq1, channels=2, gang=1)
        evq2 = EventQueue()
        ganged = MemorySystem.ddr(evq2, channels=2, gang=2)
        lat_independent = one_read_latency(independent, evq1)
        lat_ganged = one_read_latency(ganged, evq2)
        # A lone request benefits from the wider logical channel.
        assert lat_ganged == lat_independent - (
            t.transfer - t.transfer_for_gang(2)
        )

    def test_ganged_system_serves_fewer_concurrently(self):
        # Two requests to what would be different channels when
        # independent collapse onto one logical channel when ganged.
        evq = EventQueue()
        ganged = MemorySystem.ddr(evq, channels=2, gang=2)
        lines_per_page = ganged.geometry.lines_per_page
        done = []
        for i in range(2):
            ganged.read(i * lines_per_page, 0,
                        callback=lambda t, r: done.append(t))
        evq.run_all()
        assert len(set(done)) == 2  # serialized, not simultaneous

    def test_independent_same_lines_parallel(self):
        evq = EventQueue()
        independent = MemorySystem.ddr(evq, channels=2, gang=1)
        lines_per_page = independent.geometry.lines_per_page
        done = []
        for i in range(2):
            independent.read(i * lines_per_page, 0,
                             callback=lambda t, r: done.append(t))
        evq.run_all()
        assert len(set(done)) == 1  # both channels finish together


class TestRdramTiming:
    def test_longer_transfer_than_ddr(self):
        evq_ddr = EventQueue()
        ddr = MemorySystem.ddr(evq_ddr)
        evq_rdram = EventQueue()
        rdram = MemorySystem.rdram(evq_rdram)
        assert one_read_latency(rdram, evq_rdram) > one_read_latency(
            ddr, evq_ddr
        )
        expected_gap = rdram_timing().transfer - ddr_timing().transfer
        assert one_read_latency(rdram, EventQueue() or evq_rdram) or True

    def test_many_banks_absorb_conflicts(self):
        # Requests that conflict on a DDR bank spread over RDRAM banks.
        def run(system, evq):
            geometry = system.geometry
            stride = (
                geometry.lines_per_page
                * geometry.logical_channels
                * 4  # DDR banks per channel
            )
            for i in range(8):
                system.read(i * stride, 0)
            evq.run_all()
            return system.stats.row_buffer.misses

        evq_ddr = EventQueue()
        ddr_misses = run(MemorySystem.ddr(evq_ddr), evq_ddr)
        evq_rdram = EventQueue()
        rdram_misses = run(MemorySystem.rdram(evq_rdram), evq_rdram)
        assert rdram_misses <= ddr_misses
