"""Tests for the per-channel controller timing engine."""

from repro.common.events import EventQueue
from repro.dram.bank import PageMode
from repro.dram.system import MemorySystem
from repro.dram.timing import ddr_timing

T = ddr_timing()
#: Controller-side fixed latency of a read (request + response paths).
OVERHEAD = T.ctrl_request + T.ctrl_response
#: End-to-end latency of one cold read on an idle channel.
COLD_READ = OVERHEAD + T.closed_latency + T.transfer


def build(scheduler="fcfs", page_mode=PageMode.OPEN, channels=2):
    evq = EventQueue()
    system = MemorySystem.ddr(
        evq, channels=channels, scheduler=scheduler, page_mode=page_mode
    )
    return evq, system


def run_reads(evq, system, line_addrs, tid=0):
    done = {}
    for line in line_addrs:
        system.read(line, tid, callback=lambda t, r: done.__setitem__(r.line_addr, t))
    evq.run_all()
    return done


class TestSingleRequestTiming:
    def test_cold_read_latency_exact(self):
        evq, system = build()
        done = run_reads(evq, system, [0])
        assert done[0] == COLD_READ

    def test_row_hit_saves_row_activation(self):
        evq, system = build()
        done = run_reads(evq, system, [0, 1])
        # Second read to the same page: only column + transfer after
        # the first finishes its burst.
        first_burst_end = COLD_READ - T.ctrl_response
        assert done[1] == first_burst_end + T.hit_latency + T.transfer + T.ctrl_response

    def test_conflict_pays_precharge(self):
        evq, system = build()
        lines_per_page = system.geometry.lines_per_page
        banks = system.geometry.banks_per_logical_channel
        channels = system.geometry.logical_channels
        same_bank_stride = lines_per_page * banks * channels
        done = run_reads(evq, system, [0, same_bank_stride])
        first_burst_end = COLD_READ - T.ctrl_response
        assert done[same_bank_stride] == (
            first_burst_end + T.conflict_latency + T.transfer + T.ctrl_response
        )

    def test_close_page_mode_constant_latency(self):
        evq, system = build(page_mode=PageMode.CLOSE)
        done = run_reads(evq, system, [0, 1])
        assert done[0] == COLD_READ
        # No row hit in close mode: second access pays row+col again
        # (the auto-precharge of the first overlaps its data burst,
        # then the bank is busy t_pre past the burst).
        assert done[1] > COLD_READ + T.hit_latency


class TestPipelining:
    def test_different_banks_overlap(self):
        evq, system = build()
        lines_per_page = system.geometry.lines_per_page
        # Two reads on the same channel, different banks.
        other_bank = lines_per_page * system.geometry.logical_channels
        done = run_reads(evq, system, [0, other_bank])
        # The second bank's activation partially overlaps the first
        # burst (the controller wakes one horizon before the bus
        # frees), so the gap is far below a full serialized access,
        # though above a pure back-to-back burst.
        gap = done[other_bank] - done[0]
        assert gap < T.closed_latency
        assert gap >= T.transfer

    def test_different_channels_fully_parallel(self):
        evq, system = build()
        lines_per_page = system.geometry.lines_per_page
        done = run_reads(evq, system, [0, lines_per_page])  # channels 0, 1
        assert done[0] == done[lines_per_page] == COLD_READ


class TestWriteHandling:
    def test_reads_bypass_pending_writes(self):
        evq, system = build()
        got = []
        for i in range(4):
            system.write(1000 + i * 1000, 0)
        system.read(0, 0, callback=lambda t, r: got.append(t))
        evq.run_all()
        # The read should not wait for all four writes.
        assert got[0] < 4 * (T.closed_latency + T.transfer)

    def test_write_drain_mode_engages(self):
        evq, system = build()
        controller = system.channels[0]
        # Flood with writes above the high watermark, plus a read.
        lines = [i * 64 for i in range(controller.WRITE_DRAIN_HIGH + 4)]
        for line in lines:
            system.write(line * 2, 0)
        evq.run_all()
        assert system.stats.writes == len(lines)

    def test_writes_complete_without_callbacks(self):
        evq, system = build()
        system.write(0, 0)
        evq.run_all()
        assert system.outstanding_total == 0
        assert system.stats.writes == 1


class TestSchedulingWindow:
    def test_hit_first_reorders_within_queue(self):
        evq, system = build(scheduler="hit-first")
        lines_per_page = system.geometry.lines_per_page
        banks = system.geometry.banks_per_logical_channel
        channels = system.geometry.logical_channels
        conflict_line = lines_per_page * banks * channels  # same bank as 0
        # Submit: open row 0's page, then a conflict, then 3 hits.
        done = run_reads(evq, system, [0, conflict_line, 1, 2, 3])
        hits_done = max(done[1], done[2], done[3])
        assert hits_done < done[conflict_line]

    def test_fcfs_preserves_order_on_one_bank(self):
        evq, system = build(scheduler="fcfs")
        lines_per_page = system.geometry.lines_per_page
        banks = system.geometry.banks_per_logical_channel
        channels = system.geometry.logical_channels
        stride = lines_per_page * banks * channels
        lines = [i * stride for i in range(4)]  # all same bank, diff rows
        done = run_reads(evq, system, lines)
        finish_order = sorted(lines, key=done.__getitem__)
        assert finish_order == lines


class TestStatsPlumbing:
    def test_row_hit_recorded_per_service(self):
        evq, system = build()
        run_reads(evq, system, [0, 1, 2])
        assert system.stats.reads == 3
        assert system.stats.row_buffer.hits == 2

    def test_queue_delay_zero_for_lone_request(self):
        evq, system = build()
        run_reads(evq, system, [0])
        assert system.stats.avg_read_queue_delay == 0.0

    def test_request_fields_filled(self):
        evq, system = build()
        req = system.read(12345, 2)
        evq.run_all()
        assert req.channel in (0, 1)
        assert req.bank >= 0
        assert req.row >= 0
        assert req.finish_time > 0
        assert req.issue_time >= 0
