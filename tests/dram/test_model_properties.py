"""Property-based cross-checks between the two DRAM controller models."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.events import EventQueue
from repro.dram.bank import PageMode
from repro.dram.command_controller import Command
from repro.dram.system import MemorySystem

lines_strategy = st.lists(
    st.integers(min_value=0, max_value=1 << 22), min_size=1, max_size=40
)


def serve(model, lines, scheduler="hit-first", page_mode=PageMode.OPEN):
    evq = EventQueue()
    system = MemorySystem.ddr(
        evq, channels=2, scheduler=scheduler, page_mode=page_mode,
        controller_model=model,
    )
    finish = {}
    for i, line in enumerate(lines):
        system.read(
            line, i % 4,
            callback=lambda t, r: finish.__setitem__(r.req_id, t),
        )
    evq.run_all()
    return system, finish


class TestBothModels:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(lines=lines_strategy)
    def test_all_requests_complete_in_both_models(self, lines):
        for model in ("request", "command"):
            system, finish = serve(model, lines)
            assert len(finish) == len(lines)
            assert system.outstanding_total == 0
            assert system.stats.reads == len(lines)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(lines=lines_strategy)
    def test_row_hit_counts_agree_for_serial_patterns(self, lines):
        # With FCFS, both models should classify hits identically when
        # requests are plentiful but bank state transitions the same way.
        request_sys, _ = serve("request", lines, scheduler="fcfs")
        command_sys, _ = serve("command", lines, scheduler="fcfs")
        assert (
            abs(
                request_sys.stats.row_buffer.hits
                - command_sys.stats.row_buffer.hits
            )
            <= max(2, len(lines) // 4)
        )

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(lines=lines_strategy)
    def test_close_page_never_hits(self, lines):
        for model in ("request", "command"):
            system, _ = serve(model, lines, page_mode=PageMode.CLOSE)
            assert system.stats.row_buffer.hits == 0


class TestCommandAccounting:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(lines=lines_strategy)
    def test_column_commands_equal_requests(self, lines):
        system, _ = serve("command", lines)
        issued = system.channels[0].commands_issued
        issued1 = system.channels[1].commands_issued
        total_reads = issued[Command.READ] + issued1[Command.READ]
        assert total_reads == len(lines)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(lines=lines_strategy)
    def test_activates_bounded_by_requests_plus_banks(self, lines):
        system, _ = serve("command", lines)
        for channel in system.channels:
            issued = channel.commands_issued
            assert issued[Command.ACTIVATE] <= issued[Command.READ] + len(
                channel.banks
            )
            # a PRECHARGE is only ever issued to reopen a bank
            assert issued[Command.PRECHARGE] <= issued[Command.ACTIVATE]

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(lines=lines_strategy, seed=st.integers(0, 100))
    def test_latency_monotone_with_arrival(self, lines, seed):
        # FCFS on one bank: completion order equals arrival order.
        system, finish = serve(
            "command", [line * 0 + i * (1 << 16) for i, line in
                        enumerate(lines)],
            scheduler="fcfs",
        )
        times = [finish[rid] for rid in sorted(finish)]
        assert times == sorted(times)
