"""Tests for the MemorySystem facade: mapping, concurrency, stats."""

import pytest

from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.common.types import MemAccessType, MemRequest
from repro.dram.geometry import ddr_geometry, rdram_geometry
from repro.dram.mapping import make_mapping
from repro.dram.system import MemorySystem
from repro.dram.timing import ddr_timing


@pytest.fixture
def system():
    evq = EventQueue()
    return evq, MemorySystem.ddr(evq)


class TestConstruction:
    def test_ddr_factory_geometry(self):
        evq = EventQueue()
        system = MemorySystem.ddr(evq, channels=4)
        assert len(system.channels) == 4
        assert system.geometry.banks_per_logical_channel == 4

    def test_rdram_factory_geometry(self):
        evq = EventQueue()
        system = MemorySystem.rdram(evq, channels=2)
        assert len(system.channels) == 2
        assert system.geometry.banks_per_logical_channel == 128

    def test_ganged_system_fewer_controllers(self):
        evq = EventQueue()
        system = MemorySystem.ddr(evq, channels=8, gang=4)
        assert len(system.channels) == 2
        assert system.channels[0].transfer < ddr_timing().transfer

    def test_mapping_by_name(self):
        evq = EventQueue()
        system = MemorySystem.ddr(evq, mapping="xor")
        assert system.mapping.name == "xor"

    def test_foreign_geometry_mapping_rejected(self):
        evq = EventQueue()
        other = make_mapping("page", rdram_geometry())
        with pytest.raises(ConfigError):
            MemorySystem(
                evq, ddr_geometry(), ddr_timing(), mapping=other
            )


class TestOutstandingTracking:
    def test_counts_rise_and_fall(self, system):
        evq, ms = system
        ms.read(0, 0)
        ms.read(1000, 1)
        assert ms.outstanding_total == 2
        assert ms.outstanding_for_thread(0) == 1
        assert ms.busy
        evq.run_all()
        assert ms.outstanding_total == 0
        assert not ms.busy
        assert ms.outstanding_for_thread(0) == 0

    def test_per_thread_counts(self, system):
        evq, ms = system
        for i in range(3):
            ms.read(i * 5000, 7)
        assert ms.outstanding_for_thread(7) == 3
        assert ms.outstanding_for_thread(8) == 0

    def test_writes_tracked_too(self, system):
        evq, ms = system
        ms.write(0, 2)
        assert ms.outstanding_total == 1
        evq.run_all()
        assert ms.outstanding_total == 0


class TestConcurrencyHistograms:
    def test_busy_distribution_excludes_idle(self, system):
        evq, ms = system
        ms.read(0, 0)
        evq.run_all()
        ms.finish()
        dist = ms.stats.busy_outstanding_distribution()
        assert 0 not in dist
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_thread_concurrency_needs_two_requests(self, system):
        evq, ms = system
        ms.read(0, 0)  # one request alone: no multi-request time
        evq.run_all()
        ms.finish()
        assert ms.stats.thread_concurrency_distribution() == {}

    def test_two_threads_counted(self, system):
        evq, ms = system
        ms.read(0, 0)
        ms.read(64 * 10000, 1)
        evq.run_all()
        ms.finish()
        dist = ms.stats.thread_concurrency_distribution()
        assert set(dist) <= {1, 2}
        assert dist.get(2, 0.0) > 0.0

    def test_empty_system_distribution_empty(self, system):
        _, ms = system
        ms.finish()
        assert ms.stats.busy_outstanding_distribution() == {}


class TestResetStats:
    def test_reset_clears_counts_keeps_state(self, system):
        evq, ms = system
        ms.read(0, 0)
        evq.run_all()
        assert ms.stats.reads == 1
        ms.reset_stats()
        assert ms.stats.reads == 0
        # Bank state survives: next read to the same page is a hit.
        ms.read(1, 0)
        evq.run_all()
        assert ms.stats.row_buffer.hits == 1

    def test_reset_rebinds_controllers(self, system):
        evq, ms = system
        ms.reset_stats()
        for channel in ms.channels:
            assert channel.stats is ms.stats

    def test_reset_reobserves_outstanding(self, system):
        evq, ms = system
        ms.read(0, 0)
        ms.reset_stats()
        evq.run_all()
        ms.finish()
        # The in-flight request's remaining time is still accounted.
        assert ms.stats.outstanding.total_weight > 0


class TestCallbacks:
    def test_callback_receives_finish_time_and_request(self, system):
        evq, ms = system
        seen = []
        req = ms.read(42, 3, callback=lambda t, r: seen.append((t, r)))
        evq.run_all()
        assert len(seen) == 1
        t, r = seen[0]
        assert r is req
        assert t == req.finish_time

    def test_submit_custom_request(self, system):
        evq, ms = system
        req = MemRequest(777, MemAccessType.READ, 1, arrival=0)
        ms.submit(req)
        evq.run_all()
        assert req.finish_time > 0
