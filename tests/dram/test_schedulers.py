"""Tests for DRAM access schedulers (Sections 3 and 5.5)."""

import itertools

import pytest

from repro.common.errors import ConfigError
from repro.common.types import MemAccessType, MemRequest
from repro.dram.schedulers import (
    AgeBasedScheduler,
    FcfsScheduler,
    HitFirstScheduler,
    IqBasedScheduler,
    ReadFirstScheduler,
    RequestBasedScheduler,
    RobBasedScheduler,
    make_scheduler,
    scheduler_names,
)


class FakeContext:
    """Scheduler context with scripted row-hit and outstanding info."""

    def __init__(self, hits=(), outstanding=None):
        self._hits = set(hits)
        self._outstanding = outstanding or {}

    def is_row_hit(self, request):
        return request.req_id in self._hits

    def outstanding_for_thread(self, thread_id):
        return self._outstanding.get(thread_id, 0)


# Explicit ids mimic MemorySystem.submit's per-simulation numbering
# (bare construction leaves req_id unassigned).
_req_ids = itertools.count(1)


def read(arrival=0, tid=0, rob=0, iq=0):
    return MemRequest(
        0x100, MemAccessType.READ, tid, arrival=arrival,
        rob_occupancy=rob, iq_occupancy=iq, req_id=next(_req_ids),
    )


def write(arrival=0, tid=0):
    return MemRequest(
        0x200, MemAccessType.WRITE, tid, arrival=arrival,
        req_id=next(_req_ids),
    )


class TestFcfs:
    def test_picks_oldest(self):
        old, new = read(arrival=1), read(arrival=5)
        chosen = FcfsScheduler().select([new, old], 10, FakeContext())
        assert chosen is old

    def test_reads_bypass_writes(self):
        w, r = write(arrival=0), read(arrival=9)
        chosen = FcfsScheduler().select([w, r], 10, FakeContext())
        assert chosen is r

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            FcfsScheduler().select([], 0, FakeContext())


class TestHitFirst:
    def test_hit_beats_older_miss(self):
        miss, hit = read(arrival=0), read(arrival=9)
        ctx = FakeContext(hits=[hit.req_id])
        assert HitFirstScheduler().select([miss, hit], 10, ctx) is hit

    def test_read_hit_beats_write_hit(self):
        w, r = write(arrival=0), read(arrival=5)
        ctx = FakeContext(hits=[w.req_id, r.req_id])
        assert HitFirstScheduler().select([w, r], 10, ctx) is r

    def test_arrival_breaks_ties(self):
        a, b = read(arrival=1), read(arrival=2)
        assert HitFirstScheduler().select([b, a], 10, FakeContext()) is a


class TestReadFirst:
    def test_read_miss_beats_write_hit(self):
        w, r = write(arrival=0), read(arrival=9)
        ctx = FakeContext(hits=[w.req_id])
        assert ReadFirstScheduler().select([w, r], 10, ctx) is r


class TestAgeBased:
    def test_behaves_like_hit_first_under_threshold(self):
        miss, hit = read(arrival=0), read(arrival=9)
        ctx = FakeContext(hits=[hit.req_id])
        assert AgeBasedScheduler().select([miss, hit], 10, ctx) is hit

    def test_oldest_promoted_when_backlogged(self):
        requests = [read(arrival=i + 1) for i in range(9)]
        hit = requests[-1]  # newest is a hit
        ctx = FakeContext(hits=[hit.req_id])
        chosen = AgeBasedScheduler(backlog_threshold=8).select(
            requests, 100, ctx
        )
        assert chosen is requests[0]  # oldest wins despite the hit

    def test_threshold_validated(self):
        with pytest.raises(ConfigError):
            AgeBasedScheduler(backlog_threshold=0)


class TestRequestBased:
    def test_fewest_outstanding_first(self):
        a, b = read(arrival=0, tid=0), read(arrival=0, tid=1)
        ctx = FakeContext(outstanding={0: 5, 1: 1})
        assert RequestBasedScheduler().select([a, b], 10, ctx) is b

    def test_hit_first_enforced_ahead(self):
        # Paper 3.2: a read hit beats a read miss even from a thread
        # with more pending requests.
        busy_hit = read(arrival=0, tid=0)
        idle_miss = read(arrival=0, tid=1)
        ctx = FakeContext(
            hits=[busy_hit.req_id], outstanding={0: 9, 1: 0}
        )
        chosen = RequestBasedScheduler().select([busy_hit, idle_miss], 10, ctx)
        assert chosen is busy_hit

    def test_arrival_breaks_outstanding_ties(self):
        a, b = read(arrival=3, tid=0), read(arrival=1, tid=1)
        ctx = FakeContext(outstanding={0: 2, 1: 2})
        assert RequestBasedScheduler().select([a, b], 10, ctx) is b


class TestRobBased:
    def test_most_rob_entries_first(self):
        light = read(arrival=0, tid=0, rob=10)
        heavy = read(arrival=5, tid=1, rob=200)
        chosen = RobBasedScheduler().select([light, heavy], 10, FakeContext())
        assert chosen is heavy

    def test_uses_piggybacked_snapshot_not_live_state(self):
        # The ROB value travels with the request (possibly stale).
        a = read(arrival=0, tid=0, rob=100)
        b = read(arrival=0, tid=1, rob=50)
        ctx = FakeContext(outstanding={0: 0, 1: 0})
        assert RobBasedScheduler().select([a, b], 10, ctx) is a


class TestIqBased:
    def test_most_iq_entries_first(self):
        light = read(arrival=0, tid=0, iq=2)
        heavy = read(arrival=5, tid=1, iq=40)
        chosen = IqBasedScheduler().select([light, heavy], 10, FakeContext())
        assert chosen is heavy


class TestFactory:
    def test_all_names_construct(self):
        for name in scheduler_names():
            assert make_scheduler(name).name == name

    def test_paper_set_present(self):
        names = set(scheduler_names())
        assert {
            "fcfs", "hit-first", "age-based",
            "request-based", "rob-based", "iq-based",
        } <= names

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_scheduler("lottery")


class TestDeterminism:
    def test_req_id_breaks_exact_ties(self):
        a, b = read(arrival=0), read(arrival=0)
        for scheduler_name in scheduler_names():
            scheduler = make_scheduler(scheduler_name)
            assert scheduler.select([a, b], 10, FakeContext()) is a
            assert scheduler.select([b, a], 10, FakeContext()) is a


class TestCriticalFirst:
    def test_near_full_rob_request_wins(self):
        from repro.dram.schedulers import CriticalFirstScheduler

        relaxed = read(arrival=0, tid=0, rob=10)
        critical = read(arrival=9, tid=1, rob=250)
        chosen = CriticalFirstScheduler().select(
            [relaxed, critical], 10, FakeContext()
        )
        assert chosen is critical

    def test_hits_still_lead(self):
        from repro.dram.schedulers import CriticalFirstScheduler

        critical_miss = read(arrival=0, tid=0, rob=250)
        relaxed_hit = read(arrival=5, tid=1, rob=10)
        ctx = FakeContext(hits=[relaxed_hit.req_id])
        chosen = CriticalFirstScheduler().select(
            [critical_miss, relaxed_hit], 10, ctx
        )
        assert chosen is relaxed_hit

    def test_threshold_configurable(self):
        from repro.dram.schedulers import CriticalFirstScheduler

        low = CriticalFirstScheduler(rob_threshold=5)
        a = read(arrival=0, tid=0, rob=6)
        b = read(arrival=1, tid=1, rob=4)
        assert low.select([b, a], 10, FakeContext()) is a

    def test_invalid_threshold(self):
        from repro.dram.schedulers import CriticalFirstScheduler

        with pytest.raises(ConfigError):
            CriticalFirstScheduler(rob_threshold=0)

    def test_in_factory(self):
        assert make_scheduler("critical-first").name == "critical-first"
