"""Tests for the DRAM statistics bundle."""

import pytest

from repro.dram.stats import DRAMStats


class TestServiceRecording:
    def test_read_write_split(self):
        s = DRAMStats()
        s.record_service(True, False, 0)
        s.record_service(False, False, 0)
        s.record_service(True, True, 1)
        assert s.reads == 2
        assert s.writes == 1
        assert s.total_requests == 3

    def test_row_hit_rate(self):
        s = DRAMStats()
        s.record_service(True, True, 0)
        s.record_service(True, False, 0)
        assert s.row_hit_rate == pytest.approx(0.5)
        assert s.row_miss_rate == pytest.approx(0.5)

    def test_per_thread_service_counts(self):
        s = DRAMStats()
        for tid in (0, 0, 1):
            s.record_service(True, False, tid)
        assert s.served_per_thread == {0: 2, 1: 1}


class TestLatency:
    def test_averages(self):
        s = DRAMStats()
        s.record_service(True, False, 0)
        s.record_service(True, False, 0)
        s.reads = 2
        s.record_read_latency(100, 10, 0)
        s.record_read_latency(300, 30, 1)
        assert s.avg_read_latency == pytest.approx(200.0)
        assert s.avg_read_queue_delay == pytest.approx(20.0)

    def test_per_thread_latency(self):
        s = DRAMStats()
        s.record_read_latency(100, 0, 5)
        s.record_read_latency(200, 0, 5)
        s.record_read_latency(900, 0, 6)
        assert s.avg_read_latency_for(5) == pytest.approx(150.0)
        assert s.avg_read_latency_for(6) == pytest.approx(900.0)
        assert s.avg_read_latency_for(99) == 0.0

    def test_empty_averages_zero(self):
        s = DRAMStats()
        assert s.avg_read_latency == 0.0
        assert s.avg_read_queue_delay == 0.0


class TestDistributions:
    def test_busy_distribution_renormalizes_without_zero(self):
        s = DRAMStats()
        s.outstanding.observe(0, 0)
        s.outstanding.observe(10, 2)   # idle for 10
        s.outstanding.observe(30, 0)   # 2 outstanding for 20
        s.finish(40)                   # idle again for 10
        dist = s.busy_outstanding_distribution()
        assert dist == {2: pytest.approx(1.0)}

    def test_probability_outstanding_at_least(self):
        s = DRAMStats()
        s.outstanding.observe(0, 1)
        s.outstanding.observe(10, 9)
        s.finish(20)
        assert s.probability_outstanding_at_least(8) == pytest.approx(0.5)
        assert s.probability_outstanding_at_least(1) == pytest.approx(1.0)

    def test_thread_concurrency_excludes_single_request_time(self):
        s = DRAMStats()
        s.thread_concurrency.observe(0, 0)   # <2 requests
        s.thread_concurrency.observe(50, 3)  # 3 threads concurrent
        s.finish(100)
        dist = s.thread_concurrency_distribution()
        assert dist == {3: pytest.approx(1.0)}


class TestPerThreadServiceView:
    def test_served_counts_match_reads_plus_writes(self):
        s = DRAMStats()
        for tid, is_read in [(0, True), (0, False), (1, True), (2, True)]:
            s.record_service(is_read, False, tid)
        assert sum(s.served_per_thread.values()) == s.total_requests

    def test_finish_idempotent_on_collectors(self):
        s = DRAMStats()
        s.outstanding.observe(0, 2)
        s.finish(10)
        first = s.outstanding.total_weight
        s.finish(10)
        assert s.outstanding.total_weight == first
