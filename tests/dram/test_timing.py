"""Tests for DRAM timing presets and conversions."""

import pytest

from repro.common.errors import ConfigError
from repro.dram.timing import DRAMTiming, ddr_timing, ns_to_cycles, rdram_timing


class TestConversion:
    def test_15ns_at_3ghz_is_45_cycles(self):
        assert ns_to_cycles(15) == 45

    def test_rounding(self):
        assert ns_to_cycles(10.1) == 30
        assert ns_to_cycles(10.4) == 31


class TestPresets:
    def test_ddr_table1_values(self):
        t = ddr_timing()
        assert t.t_row == 45
        assert t.t_col == 45
        assert t.t_pre == 45
        # 64 B over a 16 B-wide DDR 200 MHz channel: 10 ns = 30 cycles
        assert t.transfer == 30

    def test_rdram_narrow_bus_slower_transfer(self):
        t = rdram_timing()
        assert t.transfer == 120  # 64 B over 1.6 GB/s = 40 ns
        assert t.t_row == 45

    def test_latency_composition(self):
        t = ddr_timing()
        assert t.hit_latency == t.t_col
        assert t.closed_latency == t.t_row + t.t_col
        assert t.conflict_latency == t.t_pre + t.t_row + t.t_col
        assert t.hit_latency < t.closed_latency < t.conflict_latency


class TestGanging:
    def test_gang_divides_transfer(self):
        t = ddr_timing()
        assert t.transfer_for_gang(1) == 30
        assert t.transfer_for_gang(2) == 15
        assert t.transfer_for_gang(4) == 7  # floor

    def test_transfer_never_below_one(self):
        t = DRAMTiming(transfer=2)
        assert t.transfer_for_gang(8) == 1

    def test_invalid_gang_rejected(self):
        with pytest.raises(ConfigError):
            ddr_timing().transfer_for_gang(0)


class TestValidation:
    def test_nonpositive_timing_rejected(self):
        with pytest.raises(ConfigError):
            DRAMTiming(t_row=0)
        with pytest.raises(ConfigError):
            DRAMTiming(transfer=-5)

    def test_negative_overheads_rejected(self):
        with pytest.raises(ConfigError):
            DRAMTiming(ctrl_request=-1)

    def test_zero_overhead_allowed(self):
        t = DRAMTiming(ctrl_request=0, ctrl_response=0)
        assert t.ctrl_request == 0
