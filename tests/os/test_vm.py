"""Tests for virtual-memory page allocation policies."""

import random

import pytest

from repro.common.errors import ConfigError
from repro.os.vm import VirtualMemory, vm_policy_names

PAGE = 8192


class TestTranslation:
    def test_same_page_same_frame(self):
        vm = VirtualMemory()
        a = vm.translate(0, 100)
        b = vm.translate(0, PAGE - 1)
        assert a // PAGE == b // PAGE
        assert b - a == PAGE - 1 - 100

    def test_offset_preserved(self):
        vm = VirtualMemory()
        paddr = vm.translate(0, 3 * PAGE + 123)
        assert paddr % PAGE == 123

    def test_translation_stable(self):
        vm = VirtualMemory()
        first = vm.translate(2, 5 * PAGE)
        again = vm.translate(2, 5 * PAGE + 64)
        assert again // PAGE == first // PAGE

    def test_threads_get_distinct_frames(self):
        vm = VirtualMemory()
        a = vm.translate(0, 0)
        b = vm.translate(1, 0)  # same vaddr, different thread
        assert a // PAGE != b // PAGE

    def test_pages_allocated_counter(self):
        vm = VirtualMemory()
        vm.translate(0, 0)
        vm.translate(0, 100)        # same page
        vm.translate(0, PAGE * 9)   # new page
        assert vm.pages_allocated == 2

    def test_frame_of(self):
        vm = VirtualMemory()
        assert vm.frame_of(0, 0) is None
        vm.translate(0, 0)
        assert vm.frame_of(0, 0) == 0


class TestBinHopping:
    def test_sequential_frames_in_touch_order(self):
        vm = VirtualMemory(policy="bin-hopping")
        frames = [
            vm.translate(tid, vaddr) // PAGE
            for tid, vaddr in [(0, 0), (1, 0), (0, PAGE * 50), (2, PAGE * 7)]
        ]
        assert frames == [0, 1, 2, 3]


class TestPageColoring:
    def test_threads_own_disjoint_colors(self):
        vm = VirtualMemory(policy="page-coloring", colors=8, num_threads=4)
        frames = {tid: set() for tid in range(4)}
        for tid in range(4):
            for i in range(32):
                frames[tid].add(vm.translate(tid, i * PAGE) // PAGE % 8)
        all_colors = [frames[t] for t in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (all_colors[i] & all_colors[j]), (i, j)

    def test_frames_never_reused(self):
        vm = VirtualMemory(policy="page-coloring", colors=4, num_threads=2)
        seen = set()
        for tid in range(2):
            for i in range(100):
                frame = vm.translate(tid, i * PAGE) // PAGE
                assert frame not in seen
                seen.add(frame)

    def test_more_threads_than_colors_share(self):
        vm = VirtualMemory(policy="page-coloring", colors=2, num_threads=8)
        for tid in range(8):
            frame = vm.translate(tid, 0) // PAGE
            assert frame % 2 == tid % 2


class TestRandom:
    def test_deterministic_for_seeded_rng(self):
        a = VirtualMemory(policy="random", rng=random.Random(7))
        b = VirtualMemory(policy="random", rng=random.Random(7))
        for i in range(20):
            assert a.translate(0, i * PAGE) == b.translate(0, i * PAGE)

    def test_no_frame_reuse(self):
        vm = VirtualMemory(policy="random", rng=random.Random(1))
        frames = {vm.translate(0, i * PAGE) // PAGE for i in range(500)}
        assert len(frames) == 500


class TestValidation:
    def test_policy_names(self):
        assert set(vm_policy_names()) == {
            "bin-hopping", "page-coloring", "random"
        }

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            VirtualMemory(policy="buddy")

    def test_bad_page_size(self):
        with pytest.raises(ConfigError):
            VirtualMemory(page_bytes=1000)

    def test_bad_colors(self):
        with pytest.raises(ConfigError):
            VirtualMemory(colors=0)


class TestHierarchyIntegration:
    def test_translated_system_runs(self):
        from repro.experiments.config import SystemConfig
        from repro.experiments.runner import run_mix

        cfg = SystemConfig(
            scale=32, instructions_per_thread=300, warmup_instructions=50,
            vm_policy="bin-hopping",
        )
        result = run_mix(cfg, ["gzip", "mcf"])
        assert result.core.total_committed == 600

    def test_policies_change_dram_placement(self):
        from repro.experiments.config import SystemConfig
        from repro.experiments.runner import run_mix

        base = SystemConfig(
            scale=32, instructions_per_thread=400, warmup_instructions=100,
        )
        results = {}
        for policy in ("bin-hopping", "page-coloring"):
            results[policy] = run_mix(
                base.with_(vm_policy=policy), ["mcf", "ammp"]
            )
        # both complete and produce DRAM traffic; placement differs so
        # row-buffer outcomes generally differ
        for result in results.values():
            assert result.dram.reads > 0
