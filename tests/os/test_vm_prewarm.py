"""Prewarm + VM-translation interplay."""

from repro.common.events import EventQueue
from repro.common.rng import child_rng
from repro.cache.hierarchy import HierarchyParams, MemoryHierarchy
from repro.cache.prewarm import prewarm
from repro.dram.system import MemorySystem
from repro.os.vm import VirtualMemory
from repro.workloads.generator import SyntheticStream
from repro.workloads.spec2000 import get_profile


def test_prewarm_installs_translated_lines():
    evq = EventQueue()
    memory = MemorySystem.ddr(evq)
    vm = VirtualMemory(policy="bin-hopping")
    hierarchy = MemoryHierarchy(
        HierarchyParams(scale=32, tlb_penalty=0), evq, memory, translator=vm
    )
    stream = SyntheticStream(
        get_profile("eon"), child_rng(1, "eon"), thread_id=0, scale=32
    )
    prewarm(hierarchy, [stream.footprint()])
    # a hot-region load must hit L1 immediately (virtual address path)
    base_line, size, _ = stream.footprint()[0]
    result = hierarchy.load(base_line * 64, 0, now=0)
    assert isinstance(result, int)
    assert memory.stats.reads == 0


def test_prewarm_without_translator_unchanged():
    evq = EventQueue()
    memory = MemorySystem.ddr(evq)
    hierarchy = MemoryHierarchy(
        HierarchyParams(scale=32, tlb_penalty=0), evq, memory
    )
    stream = SyntheticStream(
        get_profile("eon"), child_rng(1, "eon"), thread_id=0, scale=32
    )
    inserted = prewarm(hierarchy, [stream.footprint()])
    assert inserted > 0
