"""Tests for counters and (time-weighted) histograms."""

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    RateCounter,
    TimeWeightedHistogram,
    WeightedHistogram,
    format_distribution,
)


class TestRateCounter:
    def test_empty_rates_are_zero(self):
        c = RateCounter()
        assert c.rate == 0.0
        assert c.miss_rate == 0.0

    def test_rate_and_miss_rate_complementary(self):
        c = RateCounter()
        c.record(True)
        c.record(False)
        c.record(False)
        assert c.rate == pytest.approx(1 / 3)
        assert c.miss_rate == pytest.approx(2 / 3)
        assert c.misses == 2

    def test_bulk_count(self):
        c = RateCounter()
        c.record(True, count=10)
        c.record(False, count=30)
        assert c.rate == pytest.approx(0.25)

    def test_merge(self):
        a, b = RateCounter(), RateCounter()
        a.record(True)
        b.record(False)
        b.record(False)
        a.merge(b)
        assert a.total == 3
        assert a.hits == 1


class TestWeightedHistogram:
    def test_normalized_sums_to_one(self):
        h = WeightedHistogram()
        h.add(1, 3.0)
        h.add(2, 1.0)
        dist = h.normalized()
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist[1] == pytest.approx(0.75)

    def test_empty_normalized_is_empty(self):
        assert WeightedHistogram().normalized() == {}

    def test_zero_weight_ignored(self):
        h = WeightedHistogram()
        h.add(5, 0.0)
        assert h.as_dict() == {}

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedHistogram().add(1, -1.0)

    def test_probability_at_least(self):
        h = WeightedHistogram()
        h.add(1, 1.0)
        h.add(4, 1.0)
        h.add(9, 2.0)
        assert h.probability_at_least(4) == pytest.approx(0.75)
        assert h.probability_at_least(100) == 0.0

    def test_mean(self):
        h = WeightedHistogram()
        h.add(2, 1.0)
        h.add(4, 1.0)
        assert h.mean() == pytest.approx(3.0)

    def test_mean_of_empty_is_zero(self):
        assert WeightedHistogram().mean() == 0.0

    def test_bucketed_labels_and_sums(self):
        h = WeightedHistogram()
        h.add(1, 1.0)
        h.add(3, 1.0)
        h.add(20, 2.0)
        buckets = h.bucketed((1, 2, 4, 8, 16))
        assert list(buckets) == ["1", "2-3", "4-7", "8-15", "16+"]
        assert buckets["1"] == pytest.approx(0.25)
        assert buckets["2-3"] == pytest.approx(0.25)
        assert buckets["16+"] == pytest.approx(0.5)
        assert sum(buckets.values()) == pytest.approx(1.0)

    def test_bucketed_requires_edges(self):
        with pytest.raises(ValueError):
            WeightedHistogram().bucketed(())

    def test_merge_adds_weights(self):
        a, b = WeightedHistogram(), WeightedHistogram()
        a.add(1, 1.0)
        b.add(1, 2.0)
        b.add(2, 1.0)
        a.merge(b)
        assert a.as_dict() == {1: 3.0, 2: 1.0}

    @given(st.lists(st.tuples(st.integers(0, 20),
                              st.floats(0.01, 10.0)), min_size=1))
    def test_total_weight_is_sum(self, pairs):
        h = WeightedHistogram()
        for value, weight in pairs:
            h.add(value, weight)
        assert h.total_weight == pytest.approx(sum(w for _, w in pairs))


class TestTimeWeightedHistogram:
    def test_credits_elapsed_time_to_previous_value(self):
        h = TimeWeightedHistogram()
        h.observe(0, 3)
        h.observe(10, 5)
        h.finish(15)
        assert h.as_dict() == {3: 10.0, 5: 5.0}

    def test_repeated_observation_same_time_no_weight(self):
        h = TimeWeightedHistogram()
        h.observe(5, 1)
        h.observe(5, 2)
        h.finish(5)
        assert h.total_weight == 0.0

    def test_backwards_time_raises(self):
        h = TimeWeightedHistogram()
        h.observe(10, 1)
        with pytest.raises(ValueError):
            h.observe(5, 2)

    def test_finish_is_idempotent(self):
        h = TimeWeightedHistogram()
        h.observe(0, 1)
        h.finish(10)
        h.finish(10)
        assert h.as_dict() == {1: 10.0}

    def test_finish_without_observations_is_noop(self):
        h = TimeWeightedHistogram()
        h.finish(100)
        assert h.as_dict() == {}

    @given(st.lists(st.tuples(st.integers(1, 10), st.integers(0, 8)),
                    min_size=1, max_size=30))
    def test_total_weight_equals_elapsed_time(self, steps):
        h = TimeWeightedHistogram()
        t = 0
        h.observe(t, 0)
        for delta, value in steps:
            t += delta
            h.observe(t, value)
        h.finish(t + 5)
        assert h.total_weight == pytest.approx(t + 5)


class TestFormatDistribution:
    def test_empty(self):
        assert format_distribution({}) == "(empty)"

    def test_contains_labels_and_percentages(self):
        text = format_distribution({"1": 0.5, "2+": 0.5}, width=4)
        assert "1" in text and "2+" in text and "50.0%" in text
