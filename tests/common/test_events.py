"""Tests for the discrete-event queue."""

import pytest

from repro.common.errors import SimulationError
from repro.common.events import EventQueue


class TestScheduling:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(5, fired.append, "late")
        q.schedule(3, fired.append, "early")
        q.run_until(10)
        assert fired == ["early", "late"]

    def test_same_time_fires_in_fifo_order(self):
        q = EventQueue()
        fired = []
        for tag in ("a", "b", "c"):
            q.schedule(7, fired.append, tag)
        q.run_until(7)
        assert fired == ["a", "b", "c"]

    def test_event_beyond_window_not_fired(self):
        q = EventQueue()
        fired = []
        q.schedule(11, fired.append, "x")
        q.run_until(10)
        assert fired == []
        assert len(q) == 1

    def test_event_at_window_boundary_fires(self):
        q = EventQueue()
        fired = []
        q.schedule(10, fired.append, "x")
        q.run_until(10)
        assert fired == ["x"]

    def test_scheduling_in_past_raises(self):
        q = EventQueue()
        q.schedule(5, lambda: None)
        q.run_until(5)
        with pytest.raises(SimulationError):
            q.schedule(4, lambda: None)

    def test_scheduling_at_now_is_allowed(self):
        q = EventQueue()
        q.run_until(5)
        fired = []
        q.schedule(5, fired.append, "x")
        q.run_until(5)
        assert fired == ["x"]

    def test_multiple_args_passed(self):
        q = EventQueue()
        seen = []
        q.schedule(1, lambda a, b, c: seen.append((a, b, c)), 1, 2, 3)
        q.run_until(1)
        assert seen == [(1, 2, 3)]


class TestEmptyHeapFastPath:
    def test_empty_queue_advances_now(self):
        q = EventQueue()
        assert q.run_until(42) == 0  # nothing fired
        assert q.now == 42

    def test_head_beyond_window_advances_now_without_firing(self):
        q = EventQueue()
        fired = []
        q.schedule(100, fired.append, "x")
        assert q.run_until(50) == 0
        assert q.now == 50
        assert fired == []
        assert len(q) == 1

    def test_fast_path_then_past_scheduling_still_raises(self):
        q = EventQueue()
        q.run_until(10)  # empty-heap early-out must still move the clock
        with pytest.raises(SimulationError):
            q.schedule(9, lambda: None)


class TestCascading:
    def test_event_scheduling_event_within_window(self):
        q = EventQueue()
        fired = []

        def first():
            fired.append("first")
            q.schedule(8, lambda: fired.append("second"))

        q.schedule(3, first)
        q.run_until(10)
        assert fired == ["first", "second"]

    def test_cascade_beyond_window_deferred(self):
        q = EventQueue()
        fired = []
        q.schedule(3, lambda: q.schedule(20, fired.append, "late"))
        q.run_until(10)
        assert fired == []
        q.run_until(20)
        assert fired == ["late"]

    def test_now_tracks_fired_event_time(self):
        q = EventQueue()
        times = []
        q.schedule(4, lambda: times.append(q.now))
        q.schedule(9, lambda: times.append(q.now))
        q.run_until(15)
        assert times == [4, 9]
        assert q.now == 15


class TestNextTime:
    def test_empty_queue_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_reports_earliest(self):
        q = EventQueue()
        q.schedule(9, lambda: None)
        q.schedule(4, lambda: None)
        assert q.peek_time() == 4

    def test_next_time_is_an_alias(self):
        q = EventQueue()
        q.schedule(7, lambda: None)
        assert q.next_time() == q.peek_time() == 7

    def test_run_until_counts_fired_events(self):
        q = EventQueue()
        for t in (2, 3, 3, 30):
            q.schedule(t, lambda: None)
        assert q.run_until(10) == 3
        assert q.run_until(30) == 1
        assert q.run_until(40) == 0

    def test_run_all_drains_everything(self):
        q = EventQueue()
        fired = []
        for t in (5, 1, 9):
            q.schedule(t, fired.append, t)
        end = q.run_all()
        assert fired == [1, 5, 9]
        assert end == 9
        assert len(q) == 0

    def test_run_all_limit_catches_runaway(self):
        q = EventQueue()

        def respawn():
            q.schedule(q.now + 1, respawn)

        q.schedule(0, respawn)
        with pytest.raises(SimulationError):
            q.run_all(limit=100)


class TestSameCycleOrderingRegression:
    """Pins the same-cycle tie-break contract: insertion order, always.

    Schedulers and controllers rely on FIFO ordering among events at
    one cycle (the `_seq` heap field); these tests freeze that
    behaviour so an event-queue refactor cannot silently reshuffle
    same-cycle work.
    """

    def test_insertion_order_survives_interleaved_pops(self):
        q = EventQueue()
        fired = []
        q.schedule(5, fired.append, "a")
        q.schedule(5, fired.append, "b")
        q.run_until(4)  # moves the clock without firing anything
        q.schedule(5, fired.append, "c")
        q.run_until(5)
        assert fired == ["a", "b", "c"]

    def test_cascaded_same_cycle_events_fire_after_queued_ones(self):
        q = EventQueue()
        fired = []

        def first():
            fired.append("first")
            # Scheduled *at the current cycle* mid-fire: runs after
            # everything already queued for this cycle.
            q.schedule(3, fired.append, "cascade")

        q.schedule(3, first)
        q.schedule(3, fired.append, "second")
        q.run_until(3)
        assert fired == ["first", "second", "cascade"]

    def test_order_independent_of_callable_identity(self):
        # Heap entries carry (time, seq, fn, args); seq must decide
        # ties before fn ever gets compared.
        q = EventQueue()
        fired = []

        def make(tag):
            def fn():
                fired.append(tag)
            return fn

        callables = [make(i) for i in (3, 1, 2, 0)]
        for fn in callables:
            q.schedule(9, fn)
        q.run_until(9)
        assert fired == [3, 1, 2, 0]

    def test_run_all_preserves_same_cycle_fifo(self):
        q = EventQueue()
        fired = []
        for tag in ("x", "y", "z"):
            q.schedule(2, fired.append, tag)
        q.schedule(1, fired.append, "w")
        q.run_all()
        assert fired == ["w", "x", "y", "z"]


class TestHeavyLoad:
    def test_many_events_fire_in_order(self):
        import random

        q = EventQueue()
        rng = random.Random(5)
        fired = []
        times = [rng.randrange(10000) for _ in range(5000)]
        for t in times:
            q.schedule(t, fired.append, t)
        q.run_all()
        assert fired == sorted(times)
        assert len(fired) == 5000

    def test_len_tracks_pending(self):
        q = EventQueue()
        for t in range(10):
            q.schedule(t, lambda: None)
        assert len(q) == 10
        q.run_until(4)
        assert len(q) == 5
