"""Tests for shared types: op classes and memory requests."""

import pytest

from repro.common.types import (
    UNASSIGNED_REQUEST_ID,
    MemAccessType,
    MemRequest,
    OpClass,
)


class TestOpClass:
    def test_memory_classes(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.INT_ALU.is_memory
        assert not OpClass.BRANCH.is_memory

    def test_fp_classes(self):
        assert OpClass.FP_ALU.is_fp
        assert OpClass.FP_MULT.is_fp
        assert not OpClass.INT_MULT.is_fp
        assert not OpClass.LOAD.is_fp


class TestMemRequest:
    def test_read_flag(self):
        r = MemRequest(0x10, MemAccessType.READ, 0, arrival=5)
        w = MemRequest(0x10, MemAccessType.WRITE, 0, arrival=5)
        assert r.is_read
        assert not w.is_read

    def test_age(self):
        r = MemRequest(0, MemAccessType.READ, 0, arrival=100)
        assert r.age(150) == 50

    def test_ids_assigned_by_memory_system_not_construction(self):
        # req_id is a per-simulation sequence owned by MemorySystem;
        # bare construction leaves it unassigned so back-to-back runs
        # in one process stay bit-identical to fresh-process runs.
        a = MemRequest(0, MemAccessType.READ, 0, arrival=0)
        b = MemRequest(0, MemAccessType.READ, 0, arrival=0)
        assert a.req_id == UNASSIGNED_REQUEST_ID
        assert b.req_id == UNASSIGNED_REQUEST_ID
        explicit = MemRequest(0, MemAccessType.READ, 0, arrival=0, req_id=7)
        assert explicit.req_id == 7

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemRequest(-1, MemAccessType.READ, 0, arrival=0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            MemRequest(0, MemAccessType.READ, 0, arrival=-1)

    def test_snapshots_stored(self):
        r = MemRequest(
            0, MemAccessType.READ, 3, arrival=0,
            rob_occupancy=17, iq_occupancy=9,
        )
        assert r.thread_id == 3
        assert r.rob_occupancy == 17
        assert r.iq_occupancy == 9

    def test_mapping_fields_start_unset(self):
        r = MemRequest(0, MemAccessType.READ, 0, arrival=0)
        assert r.channel == -1
        assert r.bank == -1
        assert r.row == -1
        assert r.finish_time == -1
