"""Tests for the exception hierarchy."""

from repro.common.errors import ConfigError, ReproError, SimulationError


def test_config_error_is_repro_error():
    assert issubclass(ConfigError, ReproError)


def test_simulation_error_is_repro_error():
    assert issubclass(SimulationError, ReproError)


def test_repro_error_is_exception_not_base_exception_only():
    assert issubclass(ReproError, Exception)


def test_catching_repro_error_covers_both():
    for exc in (ConfigError("x"), SimulationError("y")):
        try:
            raise exc
        except ReproError as caught:
            assert str(caught) in ("x", "y")
