"""Tests for deterministic RNG derivation."""

from repro.common.rng import DeterministicRng, child_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_tag_changes_seed(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_63_bits(self):
        for tag in ("a", "b", "thread:0", "stream:mcf:7"):
            assert 0 <= derive_seed(12345, tag) < 2**63

    def test_no_adjacent_collisions(self):
        seeds = {derive_seed(1, f"t{i}") for i in range(1000)}
        assert len(seeds) == 1000


class TestChildRng:
    def test_same_tag_same_stream(self):
        a = child_rng(7, "x")
        b = child_rng(7, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_tags_different_streams(self):
        a = child_rng(7, "x")
        b = child_rng(7, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_tag_recorded(self):
        assert child_rng(1, "hello").tag == "hello"

    def test_is_a_random_instance(self):
        import random

        assert isinstance(child_rng(1, "x"), random.Random)
        assert isinstance(child_rng(1, "x"), DeterministicRng)

    def test_consumers_independent_of_each_other(self):
        # Adding a draw from one child must not perturb another.
        a1 = child_rng(3, "a")
        b1 = child_rng(3, "b")
        b1_values = [b1.random() for _ in range(5)]

        a2 = child_rng(3, "a")
        _ = [a2.random() for _ in range(100)]  # extra draws elsewhere
        b2 = child_rng(3, "b")
        assert [b2.random() for _ in range(5)] == b1_values
