"""Tests for the slot calendar (per-cycle bandwidth resource)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.calendar import SlotCalendar
from repro.common.errors import SimulationError


class TestAllocation:
    def test_fills_width_before_moving_on(self):
        cal = SlotCalendar(width=2)
        assert [cal.allocate(10) for _ in range(5)] == [10, 10, 11, 11, 12]

    def test_width_one_serializes(self):
        cal = SlotCalendar(width=1)
        assert [cal.allocate(0) for _ in range(3)] == [0, 1, 2]

    def test_disjoint_cycles_independent(self):
        cal = SlotCalendar(width=1)
        assert cal.allocate(5) == 5
        assert cal.allocate(100) == 100
        assert cal.allocate(5) == 6

    def test_out_of_order_requests_allowed(self):
        cal = SlotCalendar(width=1)
        assert cal.allocate(50) == 50
        assert cal.allocate(10) == 10  # earlier earliest, later call

    def test_occupancy_reflects_reservations(self):
        cal = SlotCalendar(width=4)
        cal.allocate(3)
        cal.allocate(3)
        assert cal.occupancy(3) == 2
        assert cal.occupancy(4) == 0

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            SlotCalendar(width=0)


class TestFloor:
    def test_allocation_below_floor_raises(self):
        cal = SlotCalendar(width=2)
        cal.advance_floor(100)
        with pytest.raises(SimulationError):
            cal.allocate(99)

    def test_allocation_at_floor_ok(self):
        cal = SlotCalendar(width=2)
        cal.advance_floor(100)
        assert cal.allocate(100) == 100

    def test_floor_never_retreats(self):
        cal = SlotCalendar(width=2)
        cal.advance_floor(100)
        cal.advance_floor(50)  # ignored
        with pytest.raises(SimulationError):
            cal.allocate(60)


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                    max_size=60))
    def test_never_exceeds_width(self, earliests):
        cal = SlotCalendar(width=3)
        granted = [cal.allocate(e) for e in earliests]
        for cycle in set(granted):
            assert granted.count(cycle) <= 3

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                    max_size=60))
    def test_grant_never_before_earliest(self, earliests):
        cal = SlotCalendar(width=2)
        for e in earliests:
            assert cal.allocate(e) >= e
