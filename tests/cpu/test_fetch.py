"""Tests for the fetch policies."""

import pytest

from repro.common.errors import ConfigError
from repro.cpu.fetch import (
    DGPolicy,
    DWarnPolicy,
    FetchStallPolicy,
    ICountPolicy,
    RoundRobinPolicy,
    fetch_policy_names,
    make_fetch_policy,
)


class FakeThread:
    def __init__(self, tid, unissued=0):
        self.thread_id = tid
        self.unissued = unissued


class FakeHierarchy:
    def __init__(self, l1_misses=None, l2_misses=None):
        self._l1 = l1_misses or {}
        self._l2 = l2_misses or {}
        # Mirror MemoryHierarchy's invariant: counts are strictly
        # positive (zero entries are popped), and the policies read the
        # map directly on their hot path.
        self._l2_miss_lines = {t: n for t, n in self._l2.items() if n}

    def outstanding_l1_misses(self, tid):
        return self._l1.get(tid, 0)

    def outstanding_l2_misses(self, tid):
        return self._l2.get(tid, 0)


class FakeCoreParams:
    int_iq_size = 64


class FakeCore:
    # Policies read ``core.tracer`` exactly once per ``order`` call
    # (hot path; None means telemetry off, as on a real SMTCore).
    tracer = None

    def __init__(self, threads, hierarchy=None, int_iq_used=0):
        self.threads = threads
        self.hierarchy = hierarchy or FakeHierarchy()
        self.int_iq_used = int_iq_used
        self.params = FakeCoreParams()


class TestICount:
    def test_fewest_unissued_first(self):
        threads = [FakeThread(0, 30), FakeThread(1, 5), FakeThread(2, 12)]
        order = ICountPolicy().order(threads, FakeCore(threads), 0)
        assert [t.thread_id for t in order] == [1, 2, 0]

    def test_tid_breaks_ties(self):
        threads = [FakeThread(1, 5), FakeThread(0, 5)]
        order = ICountPolicy().order(threads, FakeCore(threads), 0)
        assert [t.thread_id for t in order] == [0, 1]


class TestRoundRobin:
    def test_rotation_by_cycle(self):
        threads = [FakeThread(i) for i in range(3)]
        core = FakeCore(threads)
        policy = RoundRobinPolicy()
        assert [t.thread_id for t in policy.order(threads, core, 0)] == [0, 1, 2]
        assert [t.thread_id for t in policy.order(threads, core, 1)] == [1, 2, 0]
        assert [t.thread_id for t in policy.order(threads, core, 2)] == [2, 0, 1]

    def test_empty(self):
        assert RoundRobinPolicy().order([], FakeCore([]), 5) == []


class TestFetchStall:
    def test_gates_threads_with_l2_misses(self):
        threads = [FakeThread(0, 1), FakeThread(1, 2)]
        core = FakeCore(threads, FakeHierarchy(l2_misses={0: 1}))
        order = FetchStallPolicy().order(threads, core, 0)
        assert [t.thread_id for t in order] == [1]

    def test_keeps_one_when_all_gated(self):
        threads = [FakeThread(0, 9), FakeThread(1, 2)]
        core = FakeCore(threads, FakeHierarchy(l2_misses={0: 1, 1: 1}))
        order = FetchStallPolicy().order(threads, core, 0)
        assert [t.thread_id for t in order] == [1]  # least loaded

    def test_empty_eligible(self):
        core = FakeCore([], FakeHierarchy())
        assert FetchStallPolicy().order([], core, 0) == []


class TestDG:
    def test_blocks_missing_threads_completely(self):
        threads = [FakeThread(0), FakeThread(1)]
        core = FakeCore(threads, FakeHierarchy(l2_misses={0: 2}))
        order = DGPolicy().order(threads, core, 0)
        assert [t.thread_id for t in order] == [1]

    def test_all_blocked_returns_empty(self):
        threads = [FakeThread(0), FakeThread(1)]
        core = FakeCore(threads, FakeHierarchy(l2_misses={0: 1, 1: 1}))
        assert DGPolicy().order(threads, core, 0) == []


class TestDWarn:
    def test_clean_group_first(self):
        threads = [FakeThread(0, 1), FakeThread(1, 99), FakeThread(2, 5)]
        core = FakeCore(threads, FakeHierarchy(l2_misses={0: 1}))
        order = DWarnPolicy().order(threads, core, 0)
        # clean: 2 (5), 1 (99); warned: 0
        assert [t.thread_id for t in order] == [2, 1, 0]

    def test_warned_throttled_under_iq_pressure(self):
        threads = [FakeThread(0, 1), FakeThread(1, 2)]
        core = FakeCore(
            threads, FakeHierarchy(l2_misses={0: 1}), int_iq_used=60
        )
        order = DWarnPolicy().order(threads, core, 0)
        assert [t.thread_id for t in order] == [1]  # warned thread dropped

    def test_all_warned_under_pressure_keeps_one(self):
        threads = [FakeThread(0, 9), FakeThread(1, 2)]
        core = FakeCore(
            threads, FakeHierarchy(l2_misses={0: 1, 1: 1}), int_iq_used=60
        )
        order = DWarnPolicy().order(threads, core, 0)
        assert [t.thread_id for t in order] == [1]

    def test_no_throttle_with_headroom(self):
        threads = [FakeThread(0, 1), FakeThread(1, 2)]
        core = FakeCore(
            threads, FakeHierarchy(l2_misses={0: 1}), int_iq_used=10
        )
        order = DWarnPolicy().order(threads, core, 0)
        assert [t.thread_id for t in order] == [1, 0]


class TestFactory:
    def test_all_names_construct(self):
        for name in fetch_policy_names():
            assert make_fetch_policy(name).name == name

    def test_paper_policies_present(self):
        assert {"icount", "stall", "dg", "dwarn", "round-robin"} <= set(
            fetch_policy_names()
        )

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_fetch_policy("psychic")
