"""Tests for the SMT core: dispatch, issue, commit, policies, invariants.

These tests drive the real core with tiny synthetic workloads and a
real (scaled-down) memory system, asserting structural invariants
rather than exact cycle counts.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.common.rng import child_rng
from repro.cache.hierarchy import HierarchyParams, MemoryHierarchy
from repro.cache.prewarm import prewarm
from repro.cpu.core import CoreParams, SMTCore
from repro.dram.system import MemorySystem
from repro.workloads.generator import SyntheticStream
from repro.workloads.spec2000 import get_profile

SCALE = 32


def build_core(apps, params=None, policy="dwarn", seed=5, perfect_l3=False):
    evq = EventQueue()
    memory = None if perfect_l3 else MemorySystem.ddr(evq)
    hierarchy = MemoryHierarchy(
        HierarchyParams(scale=SCALE, perfect_l3=perfect_l3), evq, memory
    )
    workloads = []
    rngs = []
    for i, app in enumerate(apps):
        workloads.append((
            app,
            SyntheticStream(
                get_profile(app), child_rng(seed, f"{app}:{i}"),
                thread_id=i, scale=SCALE,
            ),
        ))
        rngs.append(child_rng(seed, f"ic:{i}"))
    core = SMTCore(params or CoreParams(), evq, hierarchy, policy,
                   workloads, rngs)
    prewarm(hierarchy, [stream.footprint() for _, stream in workloads])
    return core, memory, hierarchy


class TestBasicRuns:
    def test_single_thread_reaches_target(self):
        core, _, _ = build_core(["eon"])
        result = core.run(500, warmup_instructions=100)
        assert result.reached_all_targets
        assert result.threads[0].committed == 500
        assert result.threads[0].ipc > 0

    def test_multi_thread_all_reach_targets(self):
        core, _, _ = build_core(["gzip", "eon"])
        result = core.run(400, warmup_instructions=100)
        assert result.reached_all_targets
        assert all(t.committed == 400 for t in result.threads)

    def test_max_cycles_caps_run(self):
        core, _, _ = build_core(["mcf"])
        result = core.run(10**9, max_cycles=2000)
        assert not result.reached_all_targets
        assert result.cycles <= 2100

    def test_ipc_sane_for_ilp_app(self):
        core, _, _ = build_core(["eon"])
        result = core.run(800, warmup_instructions=200)
        assert 1.0 < result.threads[0].ipc <= 8.0

    def test_mem_app_slower_than_ilp_app(self):
        ilp_core, _, _ = build_core(["eon"])
        mem_core, _, _ = build_core(["mcf"])
        ilp = ilp_core.run(500, warmup_instructions=100)
        mem = mem_core.run(500, warmup_instructions=100)
        assert mem.threads[0].ipc < ilp.threads[0].ipc

    def test_invalid_budget_rejected(self):
        core, _, _ = build_core(["eon"])
        with pytest.raises(ConfigError):
            core.run(0)

    def test_at_least_one_thread_required(self):
        evq = EventQueue()
        hierarchy = MemoryHierarchy(
            HierarchyParams(scale=SCALE, perfect_l3=True), evq, None
        )
        with pytest.raises(ConfigError):
            SMTCore(CoreParams(), evq, hierarchy, "dwarn", [], [])


class TestDeterminism:
    def test_same_seed_same_result(self):
        a, _, _ = build_core(["gzip", "mcf"], seed=9)
        b, _, _ = build_core(["gzip", "mcf"], seed=9)
        ra = a.run(300, warmup_instructions=50)
        rb = b.run(300, warmup_instructions=50)
        assert ra.cycles == rb.cycles
        assert [t.ipc for t in ra.threads] == [t.ipc for t in rb.threads]

    def test_different_seed_different_result(self):
        a, _, _ = build_core(["gzip", "mcf"], seed=9)
        b, _, _ = build_core(["gzip", "mcf"], seed=10)
        ra = a.run(300, warmup_instructions=50)
        rb = b.run(300, warmup_instructions=50)
        assert ra.cycles != rb.cycles


class TestResourceInvariants:
    def test_queues_drain_after_run(self):
        core, _, hierarchy = build_core(["gzip", "ammp"])
        core.run(300, warmup_instructions=50)
        core.event_queue.run_all()
        assert core.int_iq_used >= 0
        assert core.fp_iq_used >= 0
        assert core.lq_used >= 0
        assert core.sq_used >= 0

    def test_iq_bounded_during_run(self):
        params = CoreParams(int_iq_size=16, fp_iq_size=8)
        core, _, _ = build_core(["mcf", "ammp"], params=params)
        # spot-check bound by instrumenting dispatch
        original = core._dispatch

        def checked(t, uop, cycle):
            ok = original(t, uop, cycle)
            assert core.int_iq_used <= 16
            assert core.fp_iq_used <= 8
            return ok

        core._dispatch = checked
        core.run(300)

    def test_rob_bounded(self):
        params = CoreParams(rob_size=32)
        core, _, _ = build_core(["mcf"], params=params)
        original = core._dispatch

        def checked(t, uop, cycle):
            ok = original(t, uop, cycle)
            assert len(t.rob) <= 32
            return ok

        core._dispatch = checked
        core.run(300)

    def test_commit_in_program_order(self):
        core, _, _ = build_core(["gzip"])
        committed_seqs = []
        original = core._commit

        def watching(cycle):
            thread = core.threads[0]
            before = len(thread.rob)
            head_seq = thread.rob[0].seq if thread.rob else None
            original(cycle)
            popped = before - len(thread.rob)
            if popped and head_seq is not None:
                committed_seqs.extend(range(head_seq, head_seq + popped))

        core._commit = watching
        core.run(200)
        assert committed_seqs == sorted(committed_seqs)


class TestMemoryInteraction:
    def test_dram_accesses_attributed_to_threads(self):
        # mcf's DRAM visits are clustered, so short prefixes are
        # high-variance: use a budget long enough to cover phases.
        core, memory, _ = build_core(["mcf", "eon"])
        result = core.run(2000, warmup_instructions=500)
        mcf, eon = result.threads
        assert mcf.dram_accesses > 0
        assert mcf.dram_accesses > eon.dram_accesses

    def test_perfect_l3_faster_than_real_memory(self):
        real, _, _ = build_core(["mcf"])
        perfect, _, _ = build_core(["mcf"], perfect_l3=True)
        r = real.run(2000, warmup_instructions=500)
        p = perfect.run(2000, warmup_instructions=500)
        assert p.threads[0].ipc > r.threads[0].ipc

    def test_warmup_excluded_from_measurement(self):
        core, _, _ = build_core(["gzip"])
        result = core.run(300, warmup_instructions=300)
        assert result.threads[0].committed == 300  # measured only


class TestFetchPolicyIntegration:
    @pytest.mark.parametrize(
        "policy", ["round-robin", "icount", "stall", "dg", "dwarn"]
    )
    def test_all_policies_complete(self, policy):
        core, _, _ = build_core(["gzip", "mcf"], policy=policy)
        result = core.run(250, warmup_instructions=50)
        assert result.reached_all_targets
        assert result.fetch_policy == policy


class TestThroughput:
    def test_result_aggregates(self):
        core, _, _ = build_core(["gzip", "eon"])
        result = core.run(300, warmup_instructions=50)
        assert result.total_committed == 600
        assert result.throughput_ipc == pytest.approx(
            sum(t.committed for t in result.threads) / result.cycles
        )
        assert result.ipc_of(0) == result.threads[0].ipc


class TestIssueCoverage:
    def test_reported_between_zero_and_one(self):
        core, _, _ = build_core(["gzip", "eon"])
        result = core.run(300, warmup_instructions=50)
        assert 0.0 < result.int_issue_coverage <= 1.0

    def test_ilp_mix_has_high_coverage(self):
        core, _, _ = build_core(["eon", "sixtrack"])
        result = core.run(400, warmup_instructions=100)
        assert result.int_issue_coverage > 0.5

    def test_absent_extra_defaults_to_zero(self):
        from repro.cpu.stats import CoreResult

        empty = CoreResult(
            cycles=1, threads=(), reached_all_targets=True,
            fetch_policy="x",
        )
        assert empty.int_issue_coverage == 0.0


class TestStallAccounting:
    def test_breakdown_reported(self):
        core, _, _ = build_core(["mcf", "ammp"])
        result = core.run(600, warmup_instructions=100)
        stalls = result.stall_cycles
        assert set(stalls) == {
            "fetch_blocked", "rob_full", "resource_full", "not_selected",
        }
        assert all(v >= 0 for v in stalls.values())
        assert sum(stalls.values()) > 0  # MEM mix surely stalls somewhere
        # dispositions never exceed thread-cycles
        assert sum(stalls.values()) <= 2 * result.cycles

    def test_mem_mix_stalls_more_than_ilp_mix(self):
        mem_core, _, _ = build_core(["mcf", "ammp"])
        ilp_core, _, _ = build_core(["eon", "sixtrack"])
        mem = mem_core.run(500, warmup_instructions=100)
        ilp = ilp_core.run(500, warmup_instructions=100)
        mem_rate = sum(mem.stall_cycles.values()) / (2 * mem.cycles)
        ilp_rate = sum(ilp.stall_cycles.values()) / (2 * ilp.cycles)
        assert mem_rate > ilp_rate

    def test_mispredict_heavy_stream_counts_fetch_blocked(self):
        core, _, _ = build_core(["gzip"])  # 7% mispredict rate
        result = core.run(800, warmup_instructions=100)
        assert result.stall_cycles["fetch_blocked"] > 0
