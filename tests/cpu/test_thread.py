"""Tests for per-thread pipeline state."""

import random

from repro.common.types import OpClass
from repro.cpu.thread import FOREVER, Inflight, ThreadContext
from repro.workloads.generator import SyntheticStream
from repro.workloads.spec2000 import get_profile


def make_thread(rob_size=8):
    stream = SyntheticStream(
        get_profile("gzip"), random.Random(1), thread_id=0, scale=32
    )
    return ThreadContext(0, "gzip", stream, rob_size, random.Random(2))


def node(thread, seq, opc=OpClass.INT_ALU):
    n = Inflight(thread.thread_id, seq, opc, 0, False, 0)
    thread.ring[seq % len(thread.ring)] = n
    return n


class TestInflight:
    def test_waiters_lazy(self):
        n = Inflight(0, 0, OpClass.INT_ALU, 0, False, 0)
        assert n.waiters is None
        n.add_waiter("x")
        n.add_waiter("y")
        assert n.waiters == ["x", "y"]


class TestProducerLookup:
    def test_finds_recent_producer(self):
        t = make_thread()
        n = node(t, 0)
        t.seq = 1
        assert t.producer(1) is n

    def test_negative_seq_returns_none(self):
        t = make_thread()
        t.seq = 2
        assert t.producer(5) is None

    def test_overwritten_ring_slot_returns_none(self):
        t = make_thread()
        node(t, 0)
        ring_size = len(t.ring)
        newer = node(t, ring_size)  # same slot, different seq
        t.seq = ring_size + 1
        assert t.producer(ring_size + 1) is None  # seq 0 aged out
        assert t.producer(1) is newer


class TestFetchEligibility:
    def test_blocked_until_respected(self):
        t = make_thread()
        t.fetch_blocked_until = 10
        assert not t.can_fetch(9)
        assert t.can_fetch(10)

    def test_rob_full_blocks(self):
        t = make_thread(rob_size=1)
        t.rob.append(node(t, 0))
        assert t.rob_full
        assert not t.can_fetch(100)

    def test_forever_sentinel_is_huge(self):
        assert FOREVER > 10**15


class TestProgressTracking:
    def test_measured_committed(self):
        t = make_thread()
        t.committed = 120
        t.warmup_committed = 100
        t.target = 30
        assert t.measured_committed() == 20
        assert not t.reached_target()
        t.committed = 130
        assert t.reached_target()

    def test_rob_occupancy(self):
        t = make_thread()
        assert t.rob_occupancy == 0
        t.rob.append(node(t, 0))
        assert t.rob_occupancy == 1
