"""Core behaviour under non-default pipeline parameters."""

import sys

import pytest

sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parents[1]))
from cpu.test_core import build_core  # noqa: E402

from repro.common.errors import ConfigError  # noqa: E402
from repro.cpu.core import CoreParams  # noqa: E402


class TestWidths:
    def test_narrow_fetch_slows_ilp(self):
        wide, _, _ = build_core(["eon"])
        narrow, _, _ = build_core(
            ["eon"], params=CoreParams(fetch_width=2)
        )
        w = wide.run(600, warmup_instructions=100)
        n = narrow.run(600, warmup_instructions=100)
        assert n.threads[0].ipc < w.threads[0].ipc

    def test_single_fetch_thread_serializes_smt(self):
        both, _, _ = build_core(["eon", "sixtrack"])
        single, _, _ = build_core(
            ["eon", "sixtrack"], params=CoreParams(fetch_threads=1)
        )
        b = both.run(500, warmup_instructions=100)
        s = single.run(500, warmup_instructions=100)
        assert s.throughput_ipc < b.throughput_ipc

    def test_narrow_issue_caps_ipc(self):
        core, _, _ = build_core(
            ["eon"], params=CoreParams(int_issue_width=1, fp_issue_width=1)
        )
        result = core.run(500, warmup_instructions=100)
        assert result.threads[0].ipc <= 2.0  # 1 int + 1 fp per cycle max

    def test_commit_width_one_bounds_throughput(self):
        core, _, _ = build_core(
            ["eon", "sixtrack"], params=CoreParams(commit_width=1)
        )
        result = core.run(400, warmup_instructions=100)
        assert result.throughput_ipc <= 1.01


class TestQueues:
    def test_tiny_lsq_throttles_memory_heavy_mix(self):
        base, _, _ = build_core(["swim"])
        tiny, _, _ = build_core(
            ["swim"], params=CoreParams(lq_size=2, sq_size=2)
        )
        b = base.run(500, warmup_instructions=100)
        t = tiny.run(500, warmup_instructions=100)
        assert t.threads[0].ipc <= b.threads[0].ipc

    def test_tiny_rob_registers_rob_full_stalls(self):
        core, _, _ = build_core(["mcf"], params=CoreParams(rob_size=8))
        result = core.run(500, warmup_instructions=100)
        assert result.stall_cycles["rob_full"] > 0

    def test_params_validated(self):
        with pytest.raises(ConfigError):
            CoreParams(fetch_width=0)
        with pytest.raises(ConfigError):
            CoreParams(rob_size=-1)


class TestLatencies:
    def test_custom_latency_table_respected(self):
        from repro.common.types import OpClass

        slow = CoreParams(
            latencies={
                OpClass.INT_ALU: 5,
                OpClass.INT_MULT: 20,
                OpClass.FP_ALU: 10,
                OpClass.FP_MULT: 10,
                OpClass.BRANCH: 5,
            }
        )
        fast_core, _, _ = build_core(["eon"])
        slow_core, _, _ = build_core(["eon"], params=slow)
        f = fast_core.run(400, warmup_instructions=100)
        s = slow_core.run(400, warmup_instructions=100)
        assert s.threads[0].ipc < f.threads[0].ipc
