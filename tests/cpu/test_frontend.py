"""Front-end behaviour tests: mispredicts, I-cache stalls, redirect."""

import random

from repro.common.events import EventQueue
from repro.common.types import OpClass
from repro.cache.hierarchy import HierarchyParams, MemoryHierarchy
from repro.cpu.core import CoreParams, SMTCore
from repro.cpu.thread import FOREVER
from repro.workloads.generator import SyntheticStream, Uop
from repro.workloads.profile import AppProfile, Region


class ScriptedStream:
    """A stream that replays a fixed list then pads with INT_ALU."""

    def __init__(self, uops):
        self._uops = list(uops)
        self._index = 0
        self.profile = AppProfile(
            name="scripted", category="ILP",
            mem_frac=0.0, store_frac=0.0, branch_frac=0.0,
            mispredict_rate=0.0, fp_frac=0.0, icache_miss_rate=0.0,
            regions=(Region(size_lines=16, weight=1.0),),
        )

    def next_uop(self):
        if self._index < len(self._uops):
            uop = self._uops[self._index]
            self._index += 1
            return uop
        return Uop(OpClass.INT_ALU)


def build(uops, params=None):
    evq = EventQueue()
    hierarchy = MemoryHierarchy(
        HierarchyParams(scale=64, perfect_l3=True, tlb_penalty=0), evq, None
    )
    core = SMTCore(
        params or CoreParams(), evq, hierarchy, "icount",
        [("scripted", ScriptedStream(uops))],
        [random.Random(0)],
    )
    return core


class TestMispredictRedirect:
    def test_mispredicted_branch_blocks_fetch(self):
        core = build([Uop(OpClass.BRANCH, mispredict=True)])
        thread = core.threads[0]
        core._tick()  # cycle 0: fetch the branch
        # The branch resolves in-cycle (no deps), so fetch is blocked
        # until its finish + the 9-cycle penalty.
        assert thread.fetch_blocked_until > 1
        assert thread.fetch_blocked_until < FOREVER

    def test_nothing_fetched_behind_mispredict_same_cycle(self):
        core = build([
            Uop(OpClass.BRANCH, mispredict=True),
            Uop(OpClass.INT_ALU),
        ])
        core._tick()
        assert core.threads[0].fetched == 1  # only the branch

    def test_correctly_predicted_branch_does_not_block(self):
        core = build([Uop(OpClass.BRANCH, mispredict=False)])
        core._tick()
        assert core.threads[0].fetch_blocked_until <= 1

    def test_fetch_resumes_after_penalty(self):
        core = build([Uop(OpClass.BRANCH, mispredict=True)])
        result = core.run(50)
        assert result.reached_all_targets


class TestFetchWidth:
    def test_at_most_fetch_width_per_cycle(self):
        core = build([])
        core._tick()
        assert core.threads[0].fetched <= core.params.fetch_width

    def test_dependent_ops_still_dispatch(self):
        # dep distances never stop dispatch, only issue timing.
        core = build([
            Uop(OpClass.INT_ALU),
            Uop(OpClass.INT_ALU, dep1=1),
            Uop(OpClass.INT_ALU, dep1=2, dep2=1),
        ])
        core._tick()
        assert core.threads[0].fetched >= 3


class TestIcacheStalls:
    def test_icache_miss_rate_blocks_fetch_occasionally(self):
        profile = AppProfile(
            name="icachey", category="ILP",
            mem_frac=0.0, store_frac=0.0, branch_frac=0.0,
            mispredict_rate=0.0, fp_frac=0.0, icache_miss_rate=1.0,
            regions=(Region(size_lines=16, weight=1.0),),
        )
        evq = EventQueue()
        hierarchy = MemoryHierarchy(
            HierarchyParams(scale=64, perfect_l3=True, tlb_penalty=0),
            evq, None,
        )
        stream = SyntheticStream(profile, random.Random(1), scale=64)
        core = SMTCore(
            CoreParams(), evq, hierarchy, "icount",
            [("icachey", stream)], [random.Random(2)],
        )
        core._tick()
        # every fetch group misses: nothing dispatched, thread stalled
        assert core.threads[0].fetched == 0
        assert core.threads[0].fetch_blocked_until > 1
