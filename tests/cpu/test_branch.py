"""Tests for the hybrid branch predictor and BTB."""

import random

import pytest

from repro.common.errors import ConfigError
from repro.cpu.branch import BranchTargetBuffer, HybridPredictor, _CounterTable


class TestCounterTable:
    def test_saturates_up(self):
        t = _CounterTable(4, init=0)
        for _ in range(10):
            t.update(1, True)
        assert t.predict(1)

    def test_saturates_down(self):
        t = _CounterTable(4, init=3)
        for _ in range(10):
            t.update(1, False)
        assert not t.predict(1)

    def test_hysteresis(self):
        t = _CounterTable(4, init=0)
        t.update(0, True)  # 0 -> 1, still predicts not-taken
        assert not t.predict(0)
        t.update(0, True)  # 1 -> 2, now predicts taken
        assert t.predict(0)

    def test_power_of_two_required(self):
        with pytest.raises(ConfigError):
            _CounterTable(100)


class TestHybridPredictor:
    def test_learns_always_taken(self):
        p = HybridPredictor()
        for _ in range(50):
            p.update(0x400, True)
        assert p.predict(0x400)
        assert p.mispredict_rate < 0.2

    def test_learns_biased_branch(self):
        rng = random.Random(3)
        p = HybridPredictor()
        for _ in range(2000):
            p.update(0x400, rng.random() < 0.95)
        # steady-state mispredict rate close to the 5% bias
        assert p.mispredict_rate < 0.12

    def test_local_component_learns_loop_pattern(self):
        p = HybridPredictor()
        # pattern: taken 7x then not taken, repeating
        mispredicts = 0
        for i in range(4000):
            taken = (i % 8) != 7
            mispredicts += p.update(0x880, taken)
        # after warmup, the local predictor captures the loop exit
        late = mispredicts  # total includes warmup
        assert p.mispredict_rate < 0.10

    def test_distinct_pcs_do_not_destructively_share(self):
        # Two interleaved, opposite-biased branches: the predictor
        # must learn both (low combined mispredict rate), rather than
        # having them thrash a shared entry.
        p = HybridPredictor()
        for _ in range(2000):
            p.update(0x100, True)
            p.update(0x204, False)
        assert p.mispredict_rate < 0.10

    def test_random_branch_near_half(self):
        rng = random.Random(9)
        p = HybridPredictor()
        for _ in range(4000):
            p.update(0x300, rng.random() < 0.5)
        assert 0.3 < p.mispredict_rate < 0.7

    def test_validation(self):
        with pytest.raises(ConfigError):
            HybridPredictor(global_entries=1000)
        with pytest.raises(ConfigError):
            HybridPredictor(local_history_bits=0)


class TestBTB:
    def test_first_lookup_misses_then_hits(self):
        btb = BranchTargetBuffer(entries=16, assoc=4)
        assert not btb.lookup_and_update(0x40)
        assert btb.lookup_and_update(0x40)

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)
        sets = 4
        pcs = [sets * i for i in range(3)]  # all map to set 0
        btb.lookup_and_update(pcs[0])
        btb.lookup_and_update(pcs[1])
        btb.lookup_and_update(pcs[0])  # refresh
        btb.lookup_and_update(pcs[2])  # evicts pcs[1]
        assert btb.lookup_and_update(pcs[0])
        assert not btb.lookup_and_update(pcs[1])

    def test_hit_rate(self):
        btb = BranchTargetBuffer(entries=16, assoc=4)
        btb.lookup_and_update(0)
        btb.lookup_and_update(0)
        assert btb.hit_rate == pytest.approx(0.5)

    def test_geometry_validated(self):
        with pytest.raises(ConfigError):
            BranchTargetBuffer(entries=10, assoc=4)


class TestCoreIntegration:
    def test_predictor_core_runs_and_reports(self):
        import sys
        sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parents[1]))
        from cpu.test_core import build_core
        from repro.cpu.core import CoreParams

        core, _, _ = build_core(
            ["gzip", "eon"], params=CoreParams(branch_predictor=True)
        )
        result = core.run(800, warmup_instructions=200)
        assert result.reached_all_targets
        rates = [p.mispredict_rate for p in core._predictors]
        assert all(0.0 <= r < 0.5 for r in rates)
        assert any(p.predictions > 0 for p in core._predictors)

    def test_emergent_rate_tracks_profile(self):
        """The synthesized branch sites should give the hybrid
        predictor a mispredict rate in the neighbourhood of the
        profile's parameter."""
        import sys
        sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parents[1]))
        from cpu.test_core import build_core
        from repro.cpu.core import CoreParams
        from repro.workloads.spec2000 import get_profile

        core, _, _ = build_core(
            ["gzip"], params=CoreParams(branch_predictor=True)
        )
        core.run(6000, warmup_instructions=1000)
        measured = core._predictors[0].mispredict_rate
        target = get_profile("gzip").mispredict_rate
        assert measured == pytest.approx(target, abs=0.06)

    def test_stochastic_default_unchanged(self):
        import sys
        sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parents[1]))
        from cpu.test_core import build_core

        core, _, _ = build_core(["gzip"])
        assert core._predictors is None
        result = core.run(300, warmup_instructions=50)
        assert result.reached_all_targets
