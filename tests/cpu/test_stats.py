"""Tests for core result records."""

import pytest

from repro.cpu.stats import CoreResult, ThreadResult


def thread(tid=0, committed=1000, cycles=500, dram=10, app="gzip"):
    return ThreadResult(
        thread_id=tid, app_name=app, committed=committed, cycles=cycles,
        dram_accesses=dram,
    )


class TestThreadResult:
    def test_ipc_cpi(self):
        t = thread(committed=1000, cycles=500)
        assert t.ipc == 2.0
        assert t.cpi == 0.5

    def test_zero_cycles_ipc_zero(self):
        assert thread(cycles=0).ipc == 0.0

    def test_zero_committed_cpi_inf(self):
        assert thread(committed=0).cpi == float("inf")

    def test_dram_per_100(self):
        t = thread(committed=1000, dram=25)
        assert t.dram_per_100_instructions == pytest.approx(2.5)

    def test_dram_per_100_empty(self):
        assert thread(committed=0).dram_per_100_instructions == 0.0


class TestCoreResult:
    def test_aggregates(self):
        r = CoreResult(
            cycles=1000,
            threads=(thread(0, 500, 1000), thread(1, 1500, 1000)),
            reached_all_targets=True,
            fetch_policy="dwarn",
        )
        assert r.total_committed == 2000
        assert r.throughput_ipc == 2.0
        assert r.ipc_of(1) == 1.5

    def test_str_contains_threads(self):
        r = CoreResult(
            cycles=100,
            threads=(thread(0, app="mcf"),),
            reached_all_targets=True,
            fetch_policy="icount",
        )
        text = str(r)
        assert "mcf" in text
        assert "icount" in text
