"""Fast-engine edge cases: skips vs FIFO, intervals, sanitizer.

The broad bit-identity guarantee lives in the oracle sweep
(``test_oracle.py`` / the ``repro engine-diff`` CI lane); these tests
pin the specific hazards a cycle-skipping kernel introduces:

* same-cycle events must keep FIFO order across a skipped window,
* timeline samples on interval boundaries inside a skip must land
  exactly where the reference puts them,
* the sanitizer's monotonic-time checks must hold when the clock jumps,
* fetch policies with cycle-dependent state (round-robin rotation)
  must see the same cycle numbers.
"""

import dataclasses

import pytest

from repro.analysis.sanitizer import SimSanitizer
from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.cpu.core import SMTCore
from repro.engine import ENGINE_NAMES, FastSMTCore, core_class
from repro.engine.oracle import compare_engines
from repro.experiments.config import SystemConfig
from repro.experiments.runner import build_system, run_mix
from repro.metrics.timeline import interval_ipcs
from repro.workloads.mixes import MIXES


def _config(**overrides) -> SystemConfig:
    base = dict(
        scale=32,
        instructions_per_thread=400,
        warmup_instructions=100,
        seed=2005,
    )
    base.update(overrides)
    return SystemConfig(**base)


class TestEngineSelection:
    def test_registry(self):
        assert core_class("reference") is SMTCore
        assert core_class("fast") is FastSMTCore
        assert set(ENGINE_NAMES) == {"reference", "fast", "sampled"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            core_class("warp")
        with pytest.raises(ConfigError):
            SystemConfig(engine="warp")

    def test_fast_is_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert SystemConfig().engine == "fast"

    def test_env_var_overrides_default_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert SystemConfig().engine == "reference"
        # explicit choices always win over the environment
        assert SystemConfig(engine="fast").engine == "fast"

    def test_cache_key_ignores_engine(self):
        # Shared result caches across engines are sound *because* of
        # the bit-identity contract; this is the flip side the oracle
        # must compensate for (it bypasses the cache).
        ref = _config(engine="reference")
        fast = _config(engine="fast")
        assert ref.cache_key() == fast.cache_key()

    def test_build_system_picks_engine_class(self):
        core, _, _ = build_system(_config(engine="fast"), ("mcf",))
        assert type(core) is FastSMTCore
        core, _, _ = build_system(_config(engine="reference"), ("mcf",))
        assert type(core) is SMTCore


class TestSameCycleFifoAcrossSkip:
    def test_queue_jump_preserves_insertion_order(self):
        """The kernel advances the clock with one ``run_until`` jump;
        events parked at one future cycle must still fire FIFO."""
        q = EventQueue()
        fired = []
        q.schedule(50, fired.append, "a")
        q.schedule(50, fired.append, "b")
        q.run_until(30)  # partial skip: clock moves, nothing fires
        q.schedule(50, fired.append, "c")
        assert q.run_until(50) == 3
        assert fired == ["a", "b", "c"]

    def test_burstiest_dram_config_is_identical(self):
        """fcfs on a big MEM mix maximizes same-cycle DRAM completions
        racing the skip logic; any FIFO reshuffle diverges counters."""
        report = compare_engines(
            _config(scheduler="fcfs"), MIXES["4-MEM"].apps
        )
        assert report.identical, report.render()


class TestIntervalBoundaries:
    @pytest.mark.parametrize("interval", [64, 200])
    def test_timeline_identical_under_skips(self, interval):
        """Sample cycles routinely land inside skipped windows; the
        fast engine must emit the very same (cycle, committed) pairs."""
        cores = {}
        for engine in ENGINE_NAMES:
            cfg = _config(engine=engine)
            cfg = cfg.with_(
                core=dataclasses.replace(cfg.core, sample_interval=interval)
            )
            core, _, _ = build_system(cfg, MIXES["2-MEM"].apps)
            core.run(
                cfg.instructions_per_thread,
                warmup_instructions=cfg.warmup_instructions,
                max_cycles=cfg.max_cycles,
            )
            cores[engine] = core
        ref, fast = cores["reference"], cores["fast"]
        assert ref.timeline == fast.timeline
        assert len(fast.timeline) >= 2  # the test exercised sampling
        assert interval_ipcs(ref.timeline) == interval_ipcs(fast.timeline)

    def test_sampled_run_results_identical(self):
        cfg = _config()
        cfg = cfg.with_(
            core=dataclasses.replace(cfg.core, sample_interval=100)
        )
        report = compare_engines(cfg, MIXES["2-MEM"].apps)
        assert report.identical, report.render()


class TestRoundRobinRotation:
    def test_cycle_dependent_policy_identical(self):
        """Round-robin priority is a function of the cycle number; a
        kernel that mis-advances the clock rotates fetch priority."""
        report = compare_engines(
            _config(fetch_policy="round-robin"), MIXES["2-MEM"].apps
        )
        assert report.identical, report.render()


class TestSanitizerUnderSkips:
    def test_fast_engine_passes_monotonic_time_checks(self):
        """The sanitized event queue asserts fire times never move
        backwards; a skip that overshoots then rewinds would trip it."""
        sanitizer = SimSanitizer()
        result = run_mix(
            _config(engine="fast"), MIXES["2-MEM"].apps, sanitizer=sanitizer
        )
        assert result.core.cycles > 0
        assert sanitizer.ok, sanitizer.report()
        sanitizer.raise_if_violations()

    def test_sanitized_fast_run_is_bit_identical_to_plain(self):
        from repro.engine.oracle import diff_results

        apps = MIXES["2-MEM"].apps
        plain = run_mix(_config(engine="fast"), apps)
        sanitized = run_mix(
            _config(engine="fast"), apps, sanitizer=SimSanitizer()
        )
        diffs = diff_results(plain, sanitized)
        assert not diffs, diffs
