"""Tests for the differential engine oracle.

The structural differ is tested on synthetic values (it must *find*
planted divergences — an oracle that can't fail is no oracle), then a
reduced sweep proves the real engines identical inside tier-1.  The
full fig10 sweep runs in the CI ``engine-diff`` lane.
"""

from dataclasses import dataclass

import pytest

from repro.engine.oracle import (
    EXTRA_VARIATIONS,
    FIG10_MIXES,
    FIG10_SCHEDULERS,
    MAX_DIFFS,
    ComparisonReport,
    Divergence,
    compare_engines,
    diff_values,
    fig10_sweep_jobs,
    run_fig10_sweep,
    summarize,
)
from repro.experiments.config import SystemConfig
from repro.workloads.mixes import MIXES


def _diffs(a, b):
    out = []
    diff_values(a, b, "x", out)
    return out


@dataclass(frozen=True)
class Inner:
    n: int


@dataclass(frozen=True)
class Outer:
    name: str
    inner: Inner
    tags: tuple


class Slotted:
    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b


class TestDiffValues:
    def test_equal_structures_produce_no_diffs(self):
        x = Outer("w", Inner(3), (1, 2))
        y = Outer("w", Inner(3), (1, 2))
        assert _diffs(x, y) == []

    def test_nested_dataclass_divergence_has_full_path(self):
        x = Outer("w", Inner(3), ())
        y = Outer("w", Inner(4), ())
        (d,) = _diffs(x, y)
        assert d.path == "x.inner.n"
        assert (d.reference, d.fast) == (3, 4)

    def test_dict_key_sets_compared(self):
        (d,) = _diffs({"a": 1}, {"a": 1, "b": 2})
        assert d.path == "x['b']"
        assert d.reference == "<absent>"

    def test_sequence_length_mismatch_is_one_diff(self):
        (d,) = _diffs([1, 2, 3], [1, 2])
        assert d.path == "len(x)"
        assert (d.reference, d.fast) == (3, 2)

    def test_sequence_elementwise_paths(self):
        (d,) = _diffs((1, 2, 3), (1, 9, 3))
        assert d.path == "x[1]"

    def test_slotted_objects_compared_by_attribute(self):
        (d,) = _diffs(Slotted(1, 2), Slotted(1, 5))
        assert d.path == "x.b"

    def test_type_mismatch_reported_not_crashed(self):
        (d,) = _diffs(1, "1")
        assert (d.reference, d.fast) == ("int", "str")

    def test_floats_compared_exactly(self):
        assert _diffs(0.1 + 0.2, 0.30000000000000004) == []
        assert len(_diffs(0.3, 0.1 + 0.2)) == 1

    def test_diff_cap(self):
        out = _diffs(list(range(100)), [n + 1 for n in range(100)])
        assert len(out) == MAX_DIFFS


class TestReports:
    def test_report_render_ok(self):
        r = ComparisonReport("2-MEM fcfs", SystemConfig(), ("mcf",))
        assert r.identical
        assert "OK" in r.render()

    def test_report_render_divergence(self):
        r = ComparisonReport(
            "2-MEM fcfs", SystemConfig(), ("mcf",),
            divergences=[Divergence("core.cycles", 10, 11)],
        )
        assert not r.identical
        text = r.render()
        assert "DIVERGED" in text and "core.cycles" in text

    def test_summarize_both_verdicts(self):
        ok = ComparisonReport("a", SystemConfig(), ("mcf",))
        bad = ComparisonReport(
            "b", SystemConfig(), ("mcf",),
            divergences=[Divergence("p", 1, 2)],
        )
        assert "zero divergence" in summarize([ok, ok])
        assert "DIVERGED" in summarize([ok, bad])


class TestSweepJobs:
    def test_full_sweep_shape(self):
        jobs = fig10_sweep_jobs()
        expected = len(FIG10_MIXES) * len(FIG10_SCHEDULERS) + len(
            EXTRA_VARIATIONS
        )
        assert len(jobs) == expected
        labels = [label for label, _, _ in jobs]
        assert len(set(labels)) == len(labels)  # no silent collisions

    def test_variations_change_their_config(self):
        base = SystemConfig()
        jobs = dict(
            (label, cfg) for label, cfg, _ in fig10_sweep_jobs(base)
        )
        assert jobs["8-MEM command-controller"].controller_model == "command"
        assert jobs["8-MEM rdram"].dram_type == "rdram"
        assert jobs["8-MEM sampling"].core.sample_interval == 200
        assert jobs["8-MEM dg"].fetch_policy == "dg"

    def test_mix_subset_respected(self):
        jobs = fig10_sweep_jobs(mixes=("2-MEM",))
        assert all("2-MEM" in label for label, _, _ in jobs)


def _tiny() -> SystemConfig:
    return SystemConfig(
        scale=32,
        instructions_per_thread=300,
        warmup_instructions=100,
        seed=2005,
    )


class TestRealEngines:
    def test_compare_engines_identical_on_default_config(self):
        report = compare_engines(_tiny(), MIXES["2-MEM"].apps)
        assert report.identical, report.render()

    @pytest.mark.parametrize("scheduler", ["fcfs", "rob-based"])
    def test_reduced_sweep_zero_divergence(self, scheduler):
        report = compare_engines(
            _tiny().with_(scheduler=scheduler), MIXES["2-MIX"].apps
        )
        assert report.identical, report.render()

    def test_run_fig10_sweep_fail_fast_and_progress(self):
        seen = []
        reports = run_fig10_sweep(
            _tiny(), mixes=("2-MEM",), progress=seen.append,
            fail_fast=True,
        )
        assert len(seen) == len(reports)
        assert all(r.identical for r in reports)

    def test_oracle_detects_a_planted_divergence(self):
        """An oracle that cannot fail proves nothing: diff two runs of
        *different* configurations and demand it notices."""
        from repro.engine.oracle import diff_results
        from repro.experiments.runner import run_mix

        a = run_mix(_tiny(), MIXES["2-MEM"].apps)
        b = run_mix(_tiny().with_(scheduler="rob-based"), MIXES["2-MEM"].apps)
        assert diff_results(a, b)
