"""Sampled-engine contracts: determinism, edge cases, tolerance mode.

The sampled engine trades bit-identity for speed, so its tests pin a
different contract than the fast engine's:

* determinism — same seed and sampling parameters give byte-identical
  estimates, serially, under :class:`ParallelRunner`, and across a
  crash/``--resume`` cycle (the cache key includes the sampling
  schedule, so cached sampled results can never masquerade as exact
  ones);
* window-schedule edge cases — a window longer than the whole run, a
  zero-length fast-forward (which must degenerate to the exact
  result), budgets that do not divide the window period;
* the oracle's bounded-error mode — thresholds are inclusive at the
  boundary and violated strictly beyond it, and unknown engine names
  fail loudly instead of tracebacking.
"""

import pytest

from repro.common.errors import ConfigError
from repro.engine import ENGINE_NAMES, core_class
from repro.engine.oracle import (
    ComparisonReport,
    Tolerance,
    compare_engines,
    diff_within_tolerance,
)
from repro.engine.sampled import SampledSMTCore, SamplingParams
from repro.experiments.config import SystemConfig
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner, run_mix
from repro.workloads.mixes import MIXES


def _config(**overrides) -> SystemConfig:
    base = dict(
        engine="sampled",
        scale=32,
        instructions_per_thread=3000,
        warmup_instructions=500,
        seed=2005,
        sampling=SamplingParams(
            detail_instructions=200,
            ff_instructions=600,
            window_warmup=100,
            gap_smoothing=2,
        ),
    )
    base.update(overrides)
    return SystemConfig(**base)


def _fingerprint(result) -> tuple:
    """Byte-comparable summary of a MixResult's estimates."""
    return (
        result.core.cycles,
        tuple(
            (t.thread_id, t.committed, t.cycles, t.dram_accesses)
            for t in result.core.threads
        ),
    )


APPS = MIXES["2-MIX"].apps


class TestRegistration:
    def test_sampled_is_registered(self):
        assert "sampled" in ENGINE_NAMES
        assert core_class("sampled") is SampledSMTCore

    def test_sampled_is_not_the_default(self):
        assert SystemConfig().engine == "fast"


class TestSamplingParams:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SamplingParams(detail_instructions=0)
        with pytest.raises(ConfigError):
            SamplingParams(ff_instructions=-1)
        with pytest.raises(ConfigError):
            SamplingParams(window_warmup=-1)
        with pytest.raises(ConfigError):
            SamplingParams(gap_smoothing=0)

    def test_cache_key_covers_every_knob(self):
        p = SamplingParams(100, 900, 50, 3)
        assert p.cache_key() == (100, 900, 50, 3)

    def test_config_cache_key_depends_on_sampling_only_when_sampled(self):
        exact = SystemConfig(engine="fast")
        sampled_a = _config()
        sampled_b = _config(
            sampling=SamplingParams(detail_instructions=400)
        )
        assert sampled_a.cache_key() != sampled_b.cache_key()
        # Exact engines share results; their keys must not mention the
        # sampling schedule at all.
        assert exact.cache_key() == SystemConfig(
            engine="reference"
        ).cache_key()
        assert sampled_a.cache_key() != exact.with_(
            instructions_per_thread=sampled_a.instructions_per_thread,
            warmup_instructions=sampled_a.warmup_instructions,
            seed=sampled_a.seed,
            scale=sampled_a.scale,
        ).cache_key()


class TestDeterminism:
    def test_same_seed_same_estimates(self):
        a = run_mix(_config(), APPS)
        b = run_mix(_config(), APPS)
        assert _fingerprint(a) == _fingerprint(b)

    def test_serial_and_parallel_runner_agree(self):
        serial = Runner().run_mix(_config(), APPS)
        parallel = ParallelRunner(jobs=2).run_mix(_config(), APPS)
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_resume_from_cache_is_identical(self, tmp_path):
        config = _config()
        first = ParallelRunner(cache_dir=tmp_path / "cache").run_mix(
            config, APPS
        )
        # A fresh runner over the same cache dir replays the persisted
        # result (the crash/--resume path) instead of re-simulating.
        resumed = ParallelRunner(cache_dir=tmp_path / "cache").run_mix(
            config, APPS
        )
        assert _fingerprint(first) == _fingerprint(resumed)

    def test_estimates_report_full_budget(self):
        result = run_mix(_config(), APPS)
        for t in result.core.threads:
            assert t.committed == 3000
        assert result.core.reached_all_targets


class TestWindowEdgeCases:
    def test_window_longer_than_run(self):
        config = _config(
            instructions_per_thread=150,
            warmup_instructions=0,
            sampling=SamplingParams(
                detail_instructions=1000,
                ff_instructions=2000,
                window_warmup=100,
            ),
        )
        result = run_mix(config, APPS)
        sampling = result.core.extra["sampling"]
        assert sampling["windows"] == 1
        assert sampling["measured_fraction"] == 1.0
        for t in result.core.threads:
            assert t.committed == 150

    def test_zero_fast_forward_matches_reference_exactly(self):
        sampled = run_mix(
            _config(
                sampling=SamplingParams(
                    detail_instructions=250,
                    ff_instructions=0,
                    window_warmup=100,
                )
            ),
            APPS,
        )
        reference = run_mix(
            _config(engine="reference", sampling=None), APPS
        )
        assert sampled.core.cycles == reference.core.cycles
        for s, r in zip(sampled.core.threads, reference.core.threads):
            assert s.cycles == r.cycles
            assert s.committed == r.committed

    def test_budget_not_multiple_of_period(self):
        config = _config(instructions_per_thread=1777)
        result = run_mix(config, APPS)
        for t in result.core.threads:
            assert t.committed == 1777

    def test_sampling_metadata_present(self):
        result = run_mix(_config(), APPS)
        s = result.core.extra["sampling"]
        assert s["detail_instructions"] == 200
        assert s["ff_instructions"] == 600
        assert s["window_warmup"] == 100
        assert s["gap_smoothing"] == 2
        assert s["windows"] >= 1
        assert 0.0 < s["measured_fraction"] <= 1.0
        assert s["cpi_ci95_rel"] >= 0.0


class _Thread:
    def __init__(self, thread_id, committed, cycles, dram_accesses):
        self.thread_id = thread_id
        self.committed = committed
        self.cycles = cycles
        self.dram_accesses = dram_accesses


class _Core:
    def __init__(self, cycles, threads):
        self.cycles = cycles
        self.threads = threads


class _Result:
    def __init__(self, cycles, threads):
        self.core = _Core(cycles, threads)


def _mix(cycles, *threads):
    return _Result(cycles, [_Thread(*t) for t in threads])


class TestToleranceMode:
    def test_tolerance_validation(self):
        with pytest.raises(ConfigError):
            Tolerance(cpi=0.0)
        with pytest.raises(ConfigError):
            Tolerance(thread_cpi=-1.0)

    def test_within_bounds_passes(self):
        base = _mix(10000, (0, 1000, 10000, 50))
        cand = _mix(10190, (0, 1000, 10190, 55))
        tol = Tolerance(cpi=0.02, thread_cpi=0.02, dram_accesses=0.25)
        assert diff_within_tolerance(base, cand, tol) == []

    def test_exact_boundary_is_not_a_violation(self):
        base = _mix(10000, (0, 1000, 10000, 100))
        cand = _mix(10200, (0, 1000, 10200, 100))
        tol = Tolerance(cpi=0.02, thread_cpi=0.02)
        assert diff_within_tolerance(base, cand, tol) == []

    def test_just_beyond_boundary_is_a_violation(self):
        base = _mix(10000, (0, 1000, 10000, 100))
        cand = _mix(10201, (0, 1000, 10201, 100))
        tol = Tolerance(cpi=0.02, thread_cpi=1.0)
        diffs = diff_within_tolerance(base, cand, tol)
        assert len(diffs) == 1
        assert "core.cycles" in diffs[0].path

    def test_dram_accesses_not_checked_by_default(self):
        # The sampled engine's DRAM count is a known underestimate in
        # memory-bound mixes; the default contract bounds CPI only.
        base = _mix(10000, (0, 1000, 10000, 1000))
        cand = _mix(10000, (0, 1000, 10000, 400))
        assert diff_within_tolerance(base, cand, Tolerance()) == []

    def test_per_thread_metrics_checked(self):
        base = _mix(10000, (0, 1000, 10000, 100), (1, 1000, 5000, 40))
        cand = _mix(10000, (0, 1000, 10000, 100), (1, 1000, 7000, 90))
        tol = Tolerance(cpi=0.02, thread_cpi=0.15, dram_accesses=0.25)
        paths = [d.path for d in diff_within_tolerance(base, cand, tol)]
        assert any("threads[1].cpi" in p for p in paths)
        assert any("threads[1].dram_accesses" in p for p in paths)

    def test_unknown_engine_raises_config_error(self):
        with pytest.raises(ConfigError):
            compare_engines(_config(), APPS, candidate="warp")
        with pytest.raises(ConfigError):
            compare_engines(_config(), APPS, baseline="warp")

    def test_compare_engines_sampled_within_loose_tolerance(self):
        report = compare_engines(
            _config(sampling=None, engine="fast"),
            APPS,
            baseline="reference",
            candidate="sampled",
            tolerance=Tolerance(
                cpi=2.0, thread_cpi=2.0, dram_accesses=2.0
            ),
        )
        assert isinstance(report, ComparisonReport)
        assert report.identical
