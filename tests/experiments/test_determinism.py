"""Back-to-back run determinism (per-simulation request numbering).

A process-global request-ID counter once made the Nth run in a process
number its requests differently from the first, so memoized re-runs
were not bit-identical to fresh ones.  These tests pin the fix:
request IDs are a per-:class:`MemorySystem` sequence, so every run —
first or hundredth in its process — produces identical traces.
"""

from repro.common.events import EventQueue
from repro.dram.system import MemorySystem
from repro.experiments.runner import run_mix
from repro.telemetry import EventTracer, Telemetry


def _submit_reads(system: MemorySystem, count: int) -> list[int]:
    requests = [
        system.read(0x1000 * (i + 1), thread_id=0) for i in range(count)
    ]
    return [r.req_id for r in requests]


class TestPerSimulationRequestIds:
    def test_fresh_system_always_numbers_from_one(self):
        first = _submit_reads(MemorySystem.ddr(EventQueue()), 3)
        second = _submit_reads(MemorySystem.ddr(EventQueue()), 3)
        assert first == [1, 2, 3]
        assert second == [1, 2, 3]

    def test_concurrent_systems_number_independently(self):
        a = MemorySystem.ddr(EventQueue())
        b = MemorySystem.ddr(EventQueue())
        assert _submit_reads(a, 2) == [1, 2]
        assert _submit_reads(b, 2) == [1, 2]
        assert _submit_reads(a, 1) == [3]

    def test_explicit_ids_are_preserved(self):
        from repro.common.types import MemAccessType, MemRequest

        system = MemorySystem.ddr(EventQueue())
        request = MemRequest(
            0x40, MemAccessType.READ, 0, arrival=0, req_id=99
        )
        system.submit(request)
        assert request.req_id == 99
        # The sequence is not advanced past explicit ids; it is only
        # consulted for unassigned requests.
        assert _submit_reads(system, 1) == [1]


class TestBackToBackTraces:
    def test_second_run_trace_matches_first(self, tiny_config):
        """Two identical runs in one process leave identical traces."""
        apps = ("mcf", "art")

        def traced_run():
            tracer = EventTracer(capacity=1 << 15)
            run_mix(tiny_config, apps, telemetry=Telemetry(tracer=tracer))
            return tracer.events()

        first = traced_run()
        second = traced_run()
        assert first, "expected a non-empty trace"
        assert first == second

    def test_back_to_back_results_bit_identical(self, tiny_config):
        apps = ("mcf", "gzip")
        first = run_mix(tiny_config, apps)
        second = run_mix(tiny_config, apps)
        assert first.core == second.core
        assert first.hierarchy == second.hierarchy
        assert first.dram.reads == second.dram.reads
        assert first.dram.read_latency_sum == second.dram.read_latency_sum
        assert first.dram.row_miss_rate == second.dram.row_miss_rate
