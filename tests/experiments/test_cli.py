"""Tests for the command-line interface."""

import json

import pytest

from repro.experiments.cli import build_parser, main


@pytest.fixture(autouse=True)
def _manifests_in_tmp(monkeypatch, tmp_path):
    """Keep CLI-written run manifests inside the test sandbox."""
    monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path / "manifests"))


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        for name in ("fig1", "fig6", "fig10"):
            args = parser.parse_args([name])
            assert args.command == name

    def test_config_overrides_parsed(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fig6", "--instructions", "100", "--channels", "4",
             "--scheduler", "fcfs"]
        )
        assert args.instructions == 100
        assert args.channels == 4
        assert args.scheduler == "fcfs"

    def test_mix_subcommand(self):
        args = build_parser().parse_args(["mix", "2-MEM"])
        assert args.mix_name == "2-MEM"

    def test_unknown_mix_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "3-MEM"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "2-MEM" in out

    def test_mix_run(self, capsys):
        code = main([
            "mix", "2-ILP", "--instructions", "200", "--warmup", "50",
            "--scale", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bzip2" in out
        assert "row-buffer hit rate" in out

    def test_figure_run_with_subset(self, capsys):
        code = main([
            "fig8", "--instructions", "200", "--warmup", "50",
            "--scale", "32", "--mixes", "2-ILP",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "2-ILP" in out


class TestAblationCommands:
    def test_ablation_subcommands_exist(self):
        parser = build_parser()
        args = parser.parse_args(["abl-page-mode", "--mixes", "2-MEM"])
        assert args.command == "abl-page-mode"

    def test_list_includes_ablations(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "abl-mshr" in out

    def test_ablation_runs(self, capsys):
        code = main([
            "abl-page-mode", "--instructions", "200", "--warmup", "50",
            "--scale", "32", "--mixes", "2-MEM",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "page mode" in out

    def test_csv_export(self, capsys, tmp_path):
        target = tmp_path / "rows.csv"
        code = main([
            "fig8", "--instructions", "200", "--warmup", "50",
            "--scale", "32", "--mixes", "2-ILP", "--csv", str(target),
        ])
        assert code == 0
        assert target.read_text().startswith("mix,page,xor")


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestManifests:
    QUICK = ["--instructions", "200", "--warmup", "50", "--scale", "32"]

    def _manifest_path(self, out: str) -> str:
        lines = [
            line for line in out.splitlines()
            if line.startswith("[manifest: ")
        ]
        assert lines, out
        return lines[-1][len("[manifest: "):-1]

    def test_mix_prints_manifest_path(self, capsys):
        assert main(["mix", "2-ILP", *self.QUICK]) == 0
        path = self._manifest_path(capsys.readouterr().out)
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["runs"][0]["apps"] == ["bzip2", "gzip"]

    def test_figure_prints_manifest_path(self, capsys, tmp_path):
        assert main([
            "fig8", *self.QUICK, "--mixes", "2-ILP",
            "--manifest-dir", str(tmp_path / "custom"),
        ]) == 0
        path = self._manifest_path(capsys.readouterr().out)
        assert str(tmp_path / "custom") in path
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["runs"]  # every simulated job recorded


class TestTraceCommand:
    QUICK = ["--instructions", "200", "--warmup", "50", "--scale", "32"]

    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        from repro.telemetry import validate_chrome_trace

        target = tmp_path / "trace.json"
        code = main([
            "trace", "2-MEM", *self.QUICK, "--trace-out", str(target),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[trace written to" in out
        assert "[manifest: " in out
        with open(target) as handle:
            doc = json.load(handle)
        assert validate_chrome_trace(doc) == []
        assert doc["traceEvents"]

    def test_trace_jsonl_format(self, capsys, tmp_path):
        from repro.telemetry import load_jsonl

        target = tmp_path / "trace.jsonl"
        code = main([
            "trace", "2-MEM", *self.QUICK,
            "--trace-out", str(target), "--trace-format", "jsonl",
        ])
        assert code == 0
        records = load_jsonl(target)
        assert records and all("ts" in r and "name" in r for r in records)

    def test_mix_telemetry_and_trace_flags(self, capsys, tmp_path):
        target = tmp_path / "mix-trace.json"
        code = main([
            "mix", "2-MEM", *self.QUICK,
            "--telemetry", "--trace-out", str(target),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert target.exists()


class TestErrorExits:
    def test_unknown_report_experiment_exits_2(self, capsys, tmp_path):
        code = main([
            "report", "--experiments", "nope",
            "--out", str(tmp_path / "report.md"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "nope" in err


class TestResilienceFlags:
    QUICK = ["--instructions", "200", "--warmup", "50", "--scale", "32"]

    def test_flags_parsed(self):
        args = build_parser().parse_args([
            "fig10", "--timeout", "30", "--retries", "2",
            "--resume", "--journal", "j.jsonl",
        ])
        assert args.timeout == 30.0
        assert args.retries == 2
        assert args.resume is True
        assert args.journal == "j.jsonl"

    def test_resume_requires_cache_dir(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig10", *self.QUICK, "--mixes", "2-MEM", "--resume"])
        assert "--cache-dir" in str(excinfo.value)

    def test_journal_written_and_reported(self, capsys, tmp_path):
        code = main([
            "fig10", *self.QUICK, "--mixes", "2-MEM",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal", str(tmp_path / "journal.jsonl"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[journal: " in out
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        events = [json.loads(line)["event"] for line in lines]
        assert events[0] == "batch-start"
        assert "complete" in events
        assert events[-1] == "batch-end"

    def test_fault_plan_abort_then_resume(self, capsys, tmp_path, monkeypatch):
        """The chaos-lane flow, in-process: a fault plan aborts the run
        with exit 3 and a resume hint; the --resume rerun completes."""
        from repro.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec

        plan = FaultPlan(specs=(FaultSpec(kind="exception", attempt=None),))
        plan_path = plan.write(tmp_path / "plan.json")
        cache_dir = str(tmp_path / "cache")
        argv = ["fig10", *self.QUICK, "--mixes", "2-MEM",
                "--cache-dir", cache_dir, "--resume"]

        monkeypatch.setenv(FAULT_PLAN_ENV, str(plan_path))
        assert main(argv) == 3
        err = capsys.readouterr().err
        assert "--resume" in err
        assert "batch-journal.jsonl" in err

        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert main(argv) == 0
        assert "[journal: " in capsys.readouterr().out
