"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        for name in ("fig1", "fig6", "fig10"):
            args = parser.parse_args([name])
            assert args.command == name

    def test_config_overrides_parsed(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fig6", "--instructions", "100", "--channels", "4",
             "--scheduler", "fcfs"]
        )
        assert args.instructions == 100
        assert args.channels == 4
        assert args.scheduler == "fcfs"

    def test_mix_subcommand(self):
        args = build_parser().parse_args(["mix", "2-MEM"])
        assert args.mix_name == "2-MEM"

    def test_unknown_mix_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "3-MEM"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "2-MEM" in out

    def test_mix_run(self, capsys):
        code = main([
            "mix", "2-ILP", "--instructions", "200", "--warmup", "50",
            "--scale", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bzip2" in out
        assert "row-buffer hit rate" in out

    def test_figure_run_with_subset(self, capsys):
        code = main([
            "fig8", "--instructions", "200", "--warmup", "50",
            "--scale", "32", "--mixes", "2-ILP",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "2-ILP" in out


class TestAblationCommands:
    def test_ablation_subcommands_exist(self):
        parser = build_parser()
        args = parser.parse_args(["abl-page-mode", "--mixes", "2-MEM"])
        assert args.command == "abl-page-mode"

    def test_list_includes_ablations(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "abl-mshr" in out

    def test_ablation_runs(self, capsys):
        code = main([
            "abl-page-mode", "--instructions", "200", "--warmup", "50",
            "--scale", "32", "--mixes", "2-MEM",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "page mode" in out

    def test_csv_export(self, capsys, tmp_path):
        target = tmp_path / "rows.csv"
        code = main([
            "fig8", "--instructions", "200", "--warmup", "50",
            "--scale", "32", "--mixes", "2-ILP", "--csv", str(target),
        ])
        assert code == 0
        assert target.read_text().startswith("mix,page,xor")
