"""Tests for SystemConfig (Table 1 defaults and validation)."""

import pytest

from repro.common.errors import ConfigError
from repro.dram.bank import PageMode
from repro.experiments.config import SystemConfig


class TestTable1Defaults:
    def test_processor_parameters(self):
        core = SystemConfig().core
        assert core.fetch_width == 8
        assert core.int_issue_width == 8
        assert core.fp_issue_width == 4
        assert core.int_iq_size == 64
        assert core.fp_iq_size == 32
        assert core.rob_size == 256
        assert core.lq_size == 64
        assert core.sq_size == 64
        assert core.mispredict_penalty == 9

    def test_memory_parameters(self):
        cfg = SystemConfig()
        assert cfg.dram_type == "ddr"
        assert cfg.channels == 2
        assert cfg.fetch_policy == "dwarn"  # DWarn.2.8 baseline

    def test_table1_factory(self):
        cfg = SystemConfig.table1(channels=8)
        assert cfg.channels == 8


class TestValidation:
    def test_bad_dram_type(self):
        with pytest.raises(ConfigError):
            SystemConfig(dram_type="hbm")

    def test_bad_page_mode(self):
        with pytest.raises(ConfigError):
            SystemConfig(page_mode="ajar")

    def test_bad_mapping(self):
        with pytest.raises(ConfigError):
            SystemConfig(mapping="hash")

    def test_gang_must_divide_channels(self):
        with pytest.raises(ConfigError):
            SystemConfig(channels=4, gang=3)

    def test_nonpositive_budget(self):
        with pytest.raises(ConfigError):
            SystemConfig(instructions_per_thread=0)

    def test_negative_warmup(self):
        with pytest.raises(ConfigError):
            SystemConfig(warmup_instructions=-1)


class TestDerived:
    def test_with_creates_modified_copy(self):
        base = SystemConfig()
        other = base.with_(channels=8, scheduler="fcfs")
        assert other.channels == 8
        assert other.scheduler == "fcfs"
        assert base.channels == 2  # unchanged

    def test_page_mode_enum(self):
        assert SystemConfig(page_mode="open").page_mode_enum is PageMode.OPEN
        assert SystemConfig(page_mode="close").page_mode_enum is PageMode.CLOSE

    def test_organization_name(self):
        assert SystemConfig(channels=8, gang=2).organization_name() == "8C-2G"

    def test_hierarchy_params_forwarding(self):
        cfg = SystemConfig(perfect_l3=True, mshr_entries=8, scale=16)
        params = cfg.hierarchy_params()
        assert params.perfect_l3
        assert params.mshr_entries == 8
        assert params.scale == 16


class TestCacheKey:
    def test_equal_configs_equal_keys(self):
        assert SystemConfig().cache_key() == SystemConfig().cache_key()

    def test_key_is_hashable(self):
        hash(SystemConfig().cache_key())

    def test_any_field_change_changes_key(self):
        base = SystemConfig().cache_key()
        for override in (
            {"dram_type": "rdram"},
            {"channels": 4},
            {"gang": 2},
            {"mapping": "page"},
            {"page_mode": "close"},
            {"scheduler": "fcfs"},
            {"fetch_policy": "icount"},
            {"perfect_l3": True},
            {"mshr_entries": 8},
            {"scale": 4},
            {"instructions_per_thread": 77},
            {"warmup_instructions": 3},
            {"seed": 2},
        ):
            assert SystemConfig(**override).cache_key() != base, override


class TestControllerModel:
    def test_default_is_request(self):
        assert SystemConfig().controller_model == "request"

    def test_command_accepted(self):
        cfg = SystemConfig(controller_model="command")
        assert cfg.controller_model == "command"

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(controller_model="psychic")

    def test_in_cache_key(self):
        assert (
            SystemConfig(controller_model="command").cache_key()
            != SystemConfig().cache_key()
        )
