"""Tests for the memory-only trace-driven driver."""

import pytest

from repro.common.errors import ConfigError
from repro.experiments.config import SystemConfig
from repro.experiments.tracedriven import TraceDrivenMemory


def config(**overrides):
    return SystemConfig(scale=32, **overrides)


def sequential_trace(n=200, start=0, stride=64):
    return [(start + i * stride, False) for i in range(n)]


def strided_conflict_trace(n=200, start=1 << 26):
    # jump a full row-cycle each access: every access a row conflict
    return [(start + i * (1 << 16), False) for i in range(n)]


class TestBasics:
    def test_all_accesses_issued(self):
        driver = TraceDrivenMemory(config())
        result = driver.run([sequential_trace(300)])
        assert result.accesses_issued == 300
        assert result.cycles > 0

    def test_multiple_threads(self):
        driver = TraceDrivenMemory(config())
        result = driver.run([
            sequential_trace(150, start=0),
            sequential_trace(150, start=1 << 30),
        ])
        assert result.accesses_issued == 300

    def test_stores_supported(self):
        driver = TraceDrivenMemory(config())
        result = driver.run([[(i * 64, True) for i in range(100)]])
        assert result.accesses_issued == 100

    def test_empty_trace_rejected(self):
        driver = TraceDrivenMemory(config())
        with pytest.raises(ConfigError):
            driver.run([[]])

    def test_invalid_parallelism(self):
        with pytest.raises(ConfigError):
            TraceDrivenMemory(config(), parallelism=0)


class TestMemoryBehaviour:
    def test_sequential_trace_row_friendly(self):
        driver = TraceDrivenMemory(config())
        result = driver.run([sequential_trace(400)])
        conflict_driver = TraceDrivenMemory(config())
        conflict = conflict_driver.run([strided_conflict_trace(400)])
        # both traces touch each line once (same DRAM read count),
        # but the sequential one stays inside DRAM rows while the
        # strided one conflicts on every access.
        assert conflict.dram.reads == result.dram.reads
        assert result.dram.row_hit_rate > conflict.dram.row_hit_rate
        assert conflict.avg_load_latency > result.avg_load_latency

    def test_scheduler_affects_trace_run(self):
        mixed = [strided_conflict_trace(200),
                 sequential_trace(200, start=1 << 30)]
        a = TraceDrivenMemory(config(scheduler="fcfs")).run(
            [list(t) for t in mixed]
        )
        b = TraceDrivenMemory(config(scheduler="hit-first")).run(
            [list(t) for t in mixed]
        )
        assert a.accesses_issued == b.accesses_issued

    def test_parallelism_increases_concurrency(self):
        low = TraceDrivenMemory(config(), parallelism=1).run(
            [strided_conflict_trace(200)]
        )
        high = TraceDrivenMemory(config(), parallelism=8).run(
            [strided_conflict_trace(200)]
        )
        assert high.cycles < low.cycles  # MLP overlaps the latency

    def test_command_controller_works_trace_driven(self):
        driver = TraceDrivenMemory(config(controller_model="command"))
        result = driver.run([strided_conflict_trace(150)])
        assert result.accesses_issued == 150
        assert result.dram.reads > 0
