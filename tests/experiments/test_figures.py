"""Smoke tests for the figure drivers (tiny budgets, subset mixes)."""

import pytest

from repro.experiments.figures import (
    EXPERIMENTS,
    figure1,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure10,
    run_experiment,
)
from repro.experiments.runner import Runner


@pytest.fixture(scope="module")
def shared_runner():
    return Runner()


class TestRegistry:
    def test_all_ten_figures_registered(self):
        assert sorted(EXPERIMENTS) == [
            "coverage",
            "fig1", "fig10", "fig2", "fig3", "fig4",
            "fig5", "fig6", "fig7", "fig8", "fig9",
        ]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestFigure1:
    def test_small_app_subset(self, tiny_config, shared_runner):
        result = figure1(
            tiny_config, shared_runner, apps=["eon", "mcf"]
        )
        assert len(result.rows) == 2
        # sorted by CPI_mem: mcf last
        assert result.rows[-1][0] == "mcf"
        for row in result.rows:
            app, proc, l2, l3, mem, total = row
            assert total == pytest.approx(proc + l2 + l3 + mem)

    def test_mcf_memory_dominated(self, tiny_config, shared_runner):
        result = figure1(tiny_config, shared_runner, apps=["eon", "mcf"])
        mcf = next(r for r in result.rows if r[0] == "mcf")
        eon = next(r for r in result.rows if r[0] == "eon")
        assert mcf[4] > eon[4]  # CPI_mem


class TestDistributionFigures:
    def test_figure4_rows_are_distributions(self, tiny_config, shared_runner):
        result = figure4(tiny_config, shared_runner, mixes=["2-MEM"])
        assert result.rows[0][0] == "2-MEM"
        values = [float(v.rstrip("%")) for v in result.rows[0][1:]]
        assert sum(values) == pytest.approx(100.0, abs=0.5)

    def test_figure5_pads_missing_thread_counts(
        self, tiny_config, shared_runner
    ):
        result = figure5(
            tiny_config, shared_runner, mixes=["2-MEM", "4-MEM"]
        )
        two_mem = result.rows[0]
        assert two_mem[3] == "-"  # no 3-thread bin for a 2-thread mix


class TestSweepFigures:
    def test_figure6_normalized_to_first_column(
        self, tiny_config, shared_runner
    ):
        result = figure6(
            tiny_config, shared_runner, mixes=["2-MEM"],
            channel_counts=(2, 4),
        )
        assert result.rows[0][1] == pytest.approx(1.0)

    def test_figure7_1g_columns_are_unity(self, tiny_config, shared_runner):
        result = figure7(
            tiny_config, shared_runner, mixes=["2-MEM"],
            organizations=((2, 1), (2, 2)),
        )
        row = result.rows[0]
        assert row[1] == pytest.approx(1.0)  # 2C-1G normalized to itself
        assert row[2] > 0

    def test_figure8_has_page_and_xor(self, tiny_config, shared_runner):
        result = figure8(tiny_config, shared_runner, mixes=["2-MEM"])
        assert result.headers == ["mix", "page", "xor"]
        assert result.rows[0][1].endswith("%")

    def test_figure10_fcfs_column_is_unity(self, tiny_config, shared_runner):
        result = figure10(
            tiny_config, shared_runner, mixes=["2-MEM"],
            schedulers=("fcfs", "request-based"),
        )
        assert result.rows[0][1] == pytest.approx(1.0)


class TestRendering:
    def test_render_includes_all_rows(self, tiny_config, shared_runner):
        result = figure8(tiny_config, shared_runner, mixes=["2-MEM"])
        text = result.render()
        assert "Figure 8" in text
        assert "2-MEM" in text

    def test_unknown_mix_rejected(self, tiny_config, shared_runner):
        with pytest.raises(KeyError):
            figure4(tiny_config, shared_runner, mixes=["3-MEM"])
