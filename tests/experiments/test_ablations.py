"""Smoke tests for the ablation drivers."""

import pytest

from repro.experiments.ablations import (
    ABLATIONS,
    color_mapping_ablation,
    critical_scheduler_ablation,
    mshr_ablation,
    page_mode_ablation,
    scheduler_mapping_ablation,
    vm_policy_ablation,
)
from repro.experiments.runner import Runner


@pytest.fixture(scope="module")
def shared_runner():
    return Runner()


class TestRegistry:
    def test_all_ablations_registered(self):
        assert len(ABLATIONS) == 7
        assert all(name.startswith("abl-") for name in ABLATIONS)
        assert "abl-vm-policy" in ABLATIONS
        assert "abl-prefetch" in ABLATIONS


class TestDrivers:
    def test_page_mode(self, tiny_config, shared_runner):
        result = page_mode_ablation(
            tiny_config, shared_runner, mixes=["2-MEM"]
        )
        assert result.headers == ["mix", "open", "close"]
        assert result.rows[0][1] > 0

    def test_mshr(self, tiny_config, shared_runner):
        result = mshr_ablation(
            tiny_config, shared_runner, mixes=["2-MEM"], capacities=(4, 32)
        )
        assert result.headers == ["mix", "mshr=4", "mshr=32"]

    def test_scheduler_mapping(self, tiny_config, shared_runner):
        result = scheduler_mapping_ablation(
            tiny_config, shared_runner, mixes=["2-MEM"]
        )
        assert len(result.rows[0]) == 5

    def test_color_mapping(self, tiny_config, shared_runner):
        result = color_mapping_ablation(
            tiny_config, shared_runner, mixes=["4-MEM"]
        )
        assert result.headers[-1] == "color-xor"
        assert result.rows[0][3].endswith("%")

    def test_critical(self, tiny_config, shared_runner):
        result = critical_scheduler_ablation(
            tiny_config, shared_runner, mixes=["2-MEM"]
        )
        assert result.rows[0][1] == pytest.approx(1.0)


    def test_vm_policy(self, tiny_config, shared_runner):
        result = vm_policy_ablation(
            tiny_config, shared_runner, mixes=["2-MEM"]
        )
        assert result.headers[1] == "none"
        assert "/" in result.rows[0][1]


    def test_prefetch(self, tiny_config, shared_runner):
        from repro.experiments.ablations import prefetch_ablation

        result = prefetch_ablation(
            tiny_config, shared_runner, mixes=["2-MEM"]
        )
        assert result.headers == ["mix", "off", "on"]
