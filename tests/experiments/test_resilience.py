"""Tests for the fault-tolerance layer (repro.experiments.resilience).

Pool-level chaos scenarios (killed workers, hung workers, end-to-end
resume bit-identity) live in ``tests/chaos``; this file covers the
units — retry policy, journal, and the serial failure paths of
``run_many`` — which run fast enough for tier-1.
"""

import json

import pytest

import repro.experiments.parallel as parallel
import repro.experiments.resilience as resilience
from repro.common.errors import BatchAborted, JobFailure, WorkerCrashed
from repro.experiments.parallel import ParallelRunner, ResultCache, run_many
from repro.experiments.resilience import (
    BatchJournal,
    ResilienceStats,
    RetryPolicy,
    execute_jobs,
)
from repro.experiments.runner import Runner
from repro.faults import FaultPlan, FaultSpec, InjectedFault


class TestRetryPolicy:
    def test_defaults_are_fail_fast(self):
        policy = RetryPolicy()
        assert policy.retries == 0
        assert policy.timeout_s is None

    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(backoff_base_s=0.5)
        first = policy.backoff_s("job-a", 1)
        assert first == policy.backoff_s("job-a", 1)  # pure function
        assert 0.5 <= first <= 1.0  # base * (1 + jitter in [0, 1))
        assert 1.0 <= policy.backoff_s("job-a", 2) <= 2.0  # doubled
        assert policy.backoff_s("job-b", 1) != first  # jitter is per-job

    def test_zero_base_means_no_wait(self):
        assert RetryPolicy().backoff_s("job", 3) == 0.0


class TestBatchJournal:
    def test_records_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with BatchJournal(path) as journal:
            journal.record_complete("job-1", attempts=1, source="pool", wall_s=0.5)
            journal.record_failure(
                JobFailure("job-2", "cfg", ("mcf",), 1, "timeout", "60s")
            )
        resumed = BatchJournal(path, resume=True)
        assert resumed.completed("job-1")
        assert not resumed.completed("job-2")
        assert resumed.replayed_failures == 1
        resumed.close()

    def test_fresh_journal_truncates_existing(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with BatchJournal(path) as journal:
            journal.record_complete("job-1", 1, "pool", 0.1)
        with BatchJournal(path, resume=False) as journal:
            assert not journal.completed("job-1")

    def test_torn_final_line_tolerated(self, tmp_path):
        """A crash mid-write leaves half a JSON line; loading must skip
        it — the event it described never durably happened."""
        path = tmp_path / "journal.jsonl"
        with BatchJournal(path) as journal:
            journal.record_complete("job-1", 1, "pool", 0.1)
        with open(path, "a") as handle:
            handle.write('{"event": "complete", "job": "job-2", "at')
        resumed = BatchJournal(path, resume=True)
        assert resumed.completed("job-1")
        assert not resumed.completed("job-2")
        resumed.close()

    def test_lines_are_valid_sorted_json(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with BatchJournal(path) as journal:
            journal.record_event("pool-rebuild", reason="broken")
        for line in path.read_text().splitlines():
            json.loads(line)


class TestRunManyFailurePaths:
    """Satellite: worker failure semantics of the batch engine."""

    def test_exception_carries_job_identity(self, tiny_config, monkeypatch):
        """A non-transient worker exception aborts the batch with the
        failing job's config/apps identity attached (and the original
        exception chained), not a bare traceback from a nameless job."""

        def explode(config, apps):
            if apps == ("mcf",):
                raise ValueError("numerical goo")
            return parallel.run_mix(config, apps)

        monkeypatch.setattr(parallel, "_simulate", explode)
        with pytest.raises(BatchAborted) as info:
            run_many([(tiny_config, ("gzip",)), (tiny_config, ("mcf",))])
        assert info.value.apps == ("mcf",)
        assert info.value.job_id
        assert info.value.config_hash
        assert isinstance(info.value.__cause__, ValueError)
        assert info.value.failures[-1].kind == "exception"

    def test_non_transient_exception_not_retried(self, tiny_config, monkeypatch):
        calls = []

        def explode(config, apps):
            calls.append(apps)
            raise ValueError("deterministic bug: retrying is pointless")

        monkeypatch.setattr(parallel, "_simulate", explode)
        with pytest.raises(BatchAborted):
            run_many(
                [(tiny_config, ("gzip",))], policy=RetryPolicy(retries=3)
            )
        assert len(calls) == 1

    def test_transient_exception_retried_to_success(self, tiny_config):
        plan = FaultPlan(
            specs=(FaultSpec(kind="exception", apps=("gzip",), attempt=0),)
        )
        stats = ResilienceStats()
        clean = run_many([(tiny_config, ("gzip",))])
        recovered = run_many(
            [(tiny_config, ("gzip",))],
            policy=RetryPolicy(retries=1),
            fault_plan=plan,
            stats=stats,
        )
        assert recovered[0].ipcs == clean[0].ipcs
        assert recovered[0].core.cycles == clean[0].core.cycles
        assert stats.retries == 1 and stats.injected_faults == 1
        assert stats.failures[0].attempt == 1

    def test_retries_exhausted_aborts(self, tiny_config):
        plan = FaultPlan(
            specs=(FaultSpec(kind="exception", apps=("gzip",), attempt=None),)
        )
        with pytest.raises(BatchAborted) as info:
            run_many(
                [(tiny_config, ("gzip",))],
                policy=RetryPolicy(retries=2),
                fault_plan=plan,
            )
        assert info.value.attempts == 3  # 1 try + 2 retries
        assert len(info.value.failures) == 3

    def test_duplicate_fan_in_filled_after_retry(self, tiny_config):
        """Satellite: when the canonical copy of a duplicated job fails
        and then succeeds on retry, every duplicate index must still be
        filled with the recovered result."""
        plan = FaultPlan(
            specs=(FaultSpec(kind="exception", apps=("gzip",), attempt=0),)
        )
        jobs = [
            (tiny_config, ("gzip",)),
            (tiny_config, ("mcf",)),
            (tiny_config, ("gzip",)),  # duplicate of job 0
        ]
        results = run_many(
            jobs, policy=RetryPolicy(retries=1), fault_plan=plan
        )
        assert all(r is not None for r in results)
        assert results[0] is results[2]
        assert results[0].apps == ("gzip",)

    def test_keyboard_interrupt_serial_is_journaled(
        self, tiny_config, tmp_path, monkeypatch
    ):
        """Satellite: an interrupt aborts cleanly — completed work stays
        journaled, the interruption is recorded, and the batch resumes."""
        real = parallel.run_mix

        def interrupt_second(config, apps):
            if apps == ("mcf",):
                raise KeyboardInterrupt
            return real(config, apps)

        monkeypatch.setattr(parallel, "_simulate", interrupt_second)
        cache = ResultCache(tmp_path / "cache")
        journal = BatchJournal(tmp_path / "journal.jsonl")
        jobs = [(tiny_config, ("gzip",)), (tiny_config, ("mcf",))]
        with pytest.raises(KeyboardInterrupt):
            run_many(jobs, cache=cache, journal=journal)
        journal.close()
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert "interrupted" in events
        assert events.count("complete") == 1

        monkeypatch.setattr(parallel, "_simulate", real)
        resumed_journal = BatchJournal(tmp_path / "journal.jsonl", resume=True)
        stats = ResilienceStats()
        results = run_many(
            jobs,
            cache=ResultCache(tmp_path / "cache"),
            journal=resumed_journal,
            stats=stats,
        )
        resumed_journal.close()
        assert [r.apps for r in results] == [("gzip",), ("mcf",)]
        assert stats.resumed_jobs == 1

    def test_keyboard_interrupt_pooled_cancels_futures(
        self, tiny_config, monkeypatch
    ):
        """The pooled path must cancel pending futures and tear the pool
        down instead of hanging when the user hits Ctrl-C."""
        cancelled = []

        def interrupting_wait(futures, timeout=None, return_when=None):
            cancelled.extend(futures)
            raise KeyboardInterrupt

        monkeypatch.setattr(resilience, "wait", interrupting_wait)
        with pytest.raises(KeyboardInterrupt):
            execute_jobs(
                [(tiny_config, ("gzip",)), (tiny_config, ("mcf",))],
                parallel._simulate,
                parallelism=2,
            )
        # every in-flight future was asked to cancel (already-running
        # ones decline, which is fine -- the pool is terminated next)
        assert cancelled


class TestResumeSemantics:
    def test_resume_skips_journaled_complete_jobs(
        self, tiny_config, tmp_path, monkeypatch
    ):
        """The resume contract: journal + cache consulted first, zero
        re-simulation of journaled-complete jobs."""
        jobs = [(tiny_config, ("gzip",)), (tiny_config, ("mcf",))]
        cache = ResultCache(tmp_path / "cache")
        journal = BatchJournal(tmp_path / "journal.jsonl")
        first = run_many(jobs, cache=cache, journal=journal)
        journal.close()

        def explode(config, apps):
            raise AssertionError(f"resumed batch re-simulated {apps}")

        monkeypatch.setattr(parallel, "_simulate", explode)
        journal = BatchJournal(tmp_path / "journal.jsonl", resume=True)
        stats = ResilienceStats()
        again = run_many(
            jobs,
            cache=ResultCache(tmp_path / "cache"),
            journal=journal,
            stats=stats,
        )
        journal.close()
        assert [r.ipcs for r in again] == [r.ipcs for r in first]
        assert stats.resumed_jobs == 2

    def test_journal_without_cache_entry_resimulates(
        self, tiny_config, tmp_path
    ):
        """A journaled-complete job whose cache entry vanished (wiped
        cache dir) is re-simulated rather than trusted blindly."""
        jobs = [(tiny_config, ("gzip",))]
        cache = ResultCache(tmp_path / "cache")
        journal = BatchJournal(tmp_path / "journal.jsonl")
        first = run_many(jobs, cache=cache, journal=journal)
        journal.close()
        cache.clear()
        journal = BatchJournal(tmp_path / "journal.jsonl", resume=True)
        stats = ResilienceStats()
        again = run_many(
            jobs,
            cache=ResultCache(tmp_path / "cache"),
            journal=journal,
            stats=stats,
        )
        journal.close()
        assert again[0].ipcs == first[0].ipcs
        assert stats.resumed_jobs == 0  # nothing to resume from


class TestRunnerWiring:
    def test_runner_retries_transient_faults(self, tiny_config):
        plan = FaultPlan(
            specs=(FaultSpec(kind="exception", apps=("gzip",), attempt=0),)
        )
        baseline = Runner().run_mix(tiny_config, ["gzip"])
        runner = Runner(retry_policy=RetryPolicy(retries=1), fault_plan=plan)
        result = runner.run_mix(tiny_config, ["gzip"])
        assert result.ipcs == baseline.ipcs
        assert runner.resilience.retries == 1

    def test_serial_crash_fault_is_retryable(self, tiny_config):
        plan = FaultPlan(
            specs=(FaultSpec(kind="crash", apps=("gzip",), attempt=0),)
        )
        runner = Runner(retry_policy=RetryPolicy(retries=1), fault_plan=plan)
        result = runner.run_mix(tiny_config, ["gzip"])
        assert result is not None
        assert runner.resilience.worker_crashes == 1

    def test_serial_crash_without_retries_raises(self, tiny_config):
        plan = FaultPlan(
            specs=(FaultSpec(kind="crash", apps=("gzip",), attempt=None),)
        )
        runner = Runner(retry_policy=RetryPolicy(retries=0), fault_plan=plan)
        with pytest.raises(WorkerCrashed):
            runner.run_mix(tiny_config, ["gzip"])

    def test_default_runner_raises_unwrapped(self, tiny_config, monkeypatch):
        """Without any resilience options, a default Runner keeps its
        historical contract: the original exception, unwrapped."""
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(
            runner_mod, "run_mix",
            lambda *a, **k: (_ for _ in ()).throw(ValueError("raw")),
        )
        with pytest.raises(ValueError):
            Runner().run_mix(tiny_config, ["gzip"])

    def test_manifest_records_resilience(self, tiny_config):
        plan = FaultPlan(
            specs=(FaultSpec(kind="exception", apps=("gzip",), attempt=0),)
        )
        runner = ParallelRunner(retries=1, fault_plan=plan)
        runner.run_many([(tiny_config, ("gzip",))])
        manifest = runner.manifest()
        block = manifest.extra["resilience"]
        assert block["retries"] == 1
        assert block["failures"][0]["kind"] == "injected"
        assert block["failures"][0]["apps"] == ["gzip"]

    def test_clean_manifest_has_no_resilience_block(self, tiny_config):
        runner = ParallelRunner()
        runner.run_many([(tiny_config, ("gzip",))])
        assert "resilience" not in runner.manifest().extra

    def test_parallel_runner_journal_path_accepted(self, tiny_config, tmp_path):
        runner = ParallelRunner(
            cache_dir=tmp_path / "cache",
            journal=tmp_path / "journal.jsonl",
        )
        runner.run_many([(tiny_config, ("gzip",))])
        runner.journal.close()
        assert (tmp_path / "journal.jsonl").exists()
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert events.count("complete") == 1


class TestFaultPlanUnit:
    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="crash", apps=("mcf", "gzip"), attempt=1),
                FaultSpec(kind="exception", rate=0.25),
            ),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_round_trip_and_env(self, tmp_path, monkeypatch):
        from repro.faults import FAULT_PLAN_ENV, plan_from_env

        plan = FaultPlan(specs=(FaultSpec(kind="delay", seconds=0.01),))
        path = plan.write(tmp_path / "plan.json")
        assert FaultPlan.from_file(path) == plan
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert plan_from_env() == plan
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert plan_from_env() is None

    def test_seeded_rate_is_deterministic_and_partial(self):
        plan = FaultPlan.seeded(seed=7, kinds=("exception",), rate=0.5)
        jobs = [f"job-{i:02d}" for i in range(40)]
        fired = [j for j in jobs if plan.pick(j, ("gzip",), 0) is not None]
        assert fired == [
            j for j in jobs if plan.pick(j, ("gzip",), 0) is not None
        ]
        assert 0 < len(fired) < len(jobs)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor-strike")

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="exception", rate=1.5)

    def test_exception_fault_is_transient(self):
        plan = FaultPlan(specs=(FaultSpec(kind="exception"),))
        with pytest.raises(InjectedFault) as info:
            plan.maybe_fire("job", ("gzip",), 0, in_worker=False)
        assert info.value.transient
