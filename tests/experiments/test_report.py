"""Tests for text-table rendering."""

from repro.experiments.report import format_bars, format_grouped_bars, format_table


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["mix", "value"], [("2-MEM", 1.23456), ("8-ILP", 0.5)]
        )
        lines = text.splitlines()
        assert "mix" in lines[0]
        assert "1.235" in text
        assert "0.500" in text

    def test_title_included(self):
        text = format_table(["a"], [(1,)], title="Figure X")
        assert text.startswith("Figure X")

    def test_mixed_types(self):
        text = format_table(["a", "b"], [("s", 42), (3.0, "t")])
        assert "42" in text and "3.000" in text


class TestFormatBars:
    def test_empty(self):
        assert format_bars({}) == "(no data)"

    def test_peak_gets_full_width(self):
        text = format_bars({"a": 1.0, "b": 0.5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_values_no_bar(self):
        text = format_bars({"a": 1.0, "b": 0.0})
        assert text.splitlines()[1].count("#") == 0


class TestGroupedBars:
    def test_structure(self):
        text = format_grouped_bars(
            {"2-MEM": {"fcfs": 1.0, "hit": 1.1}, "4-MEM": {"fcfs": 0.9}}
        )
        assert "2-MEM:" in text
        assert "fcfs" in text

    def test_empty(self):
        assert format_grouped_bars({}) == "(no data)"
