"""Tests for multi-seed repetition and paired comparison."""

import pytest

from repro.common.errors import ConfigError
from repro.experiments.repeat import (
    MetricSummary,
    compare_configs,
    repeat_mix,
)


class TestMetricSummary:
    def test_statistics(self):
        s = MetricSummary("x", (1.0, 2.0, 3.0))
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.stdev == pytest.approx(1.0)

    def test_single_value_stdev_zero(self):
        assert MetricSummary("x", (5.0,)).stdev == 0.0

    def test_str(self):
        assert "n=2" in str(MetricSummary("x", (1.0, 2.0)))


class TestRepeatMix:
    def test_one_summary_per_metric(self, quick_config):
        summaries = repeat_mix(quick_config, ["gzip"], seeds=(1, 2))
        assert set(summaries) == {
            "throughput", "row_miss_rate", "dram_per_100"
        }
        assert len(summaries["throughput"].values) == 2
        assert summaries["throughput"].mean > 0

    def test_custom_metric(self, quick_config):
        summaries = repeat_mix(
            quick_config, ["gzip"], seeds=(1,),
            metrics={"cycles": lambda r: float(r.core.cycles)},
        )
        assert summaries["cycles"].mean > 0

    def test_needs_seeds(self, quick_config):
        with pytest.raises(ConfigError):
            repeat_mix(quick_config, ["gzip"], seeds=())


class TestCompareConfigs:
    def test_identical_configs_zero_gain(self, quick_config):
        cmp = compare_configs(
            quick_config, quick_config, ["gzip"], seeds=(1, 2)
        )
        assert cmp.gains == (0.0, 0.0)
        assert cmp.mean_gain == 0.0
        assert not cmp.consistent  # neither all-positive nor all-negative

    def test_perfect_l3_wins_consistently(self, quick_config):
        cmp = compare_configs(
            quick_config,
            quick_config.with_(perfect_l3=True),
            ["mcf"],
            seeds=(1, 2, 3),
        )
        assert cmp.wins == 3
        assert cmp.consistent
        assert cmp.mean_gain > 0

    def test_needs_seeds(self, quick_config):
        with pytest.raises(ConfigError):
            compare_configs(quick_config, quick_config, ["gzip"], seeds=())
