"""Tests for the experiment runner and baseline caching."""

import pytest

from repro.experiments.runner import Runner, build_system, run_mix, run_single
from repro.workloads.mixes import get_mix


class TestBuildSystem:
    def test_components_wired(self, quick_config):
        core, memory, hierarchy = build_system(quick_config, ["gzip", "mcf"])
        assert len(core.threads) == 2
        assert hierarchy.memory is memory
        assert core.hierarchy is hierarchy

    def test_perfect_l3_has_no_memory(self, quick_config):
        cfg = quick_config.with_(perfect_l3=True)
        core, memory, hierarchy = build_system(cfg, ["gzip"])
        assert memory is None

    def test_rdram_system(self, quick_config):
        cfg = quick_config.with_(dram_type="rdram")
        _, memory, _ = build_system(cfg, ["gzip"])
        assert memory.geometry.banks_per_logical_channel == 128

    def test_caches_prewarmed(self, quick_config):
        _, _, hierarchy = build_system(quick_config, ["gzip"])
        assert hierarchy.l3.lines_resident > 0


class TestRunMix:
    def test_result_structure(self, quick_config):
        result = run_mix(quick_config, ["gzip", "mcf"])
        assert result.apps == ("gzip", "mcf")
        assert len(result.ipcs) == 2
        assert result.throughput > 0
        assert 0.0 <= result.row_buffer_miss_rate <= 1.0

    def test_single_is_one_thread(self, quick_config):
        result = run_single(quick_config, "eon")
        assert len(result.core.threads) == 1

    def test_dram_rate_computed(self, quick_config):
        result = run_mix(quick_config, ["mcf", "ammp"])
        assert result.dram_accesses_per_100_instructions > 0.5

    def test_deterministic(self, quick_config):
        a = run_mix(quick_config, ["gzip", "mcf"])
        b = run_mix(quick_config, ["gzip", "mcf"])
        assert a.ipcs == b.ipcs
        assert a.core.cycles == b.core.cycles


class TestRunnerCaching:
    def test_single_cached(self, quick_config):
        runner = Runner()
        first = runner.single(quick_config, "gzip")
        second = runner.single(quick_config, "gzip")
        assert first is second

    def test_cache_keyed_by_config(self, quick_config):
        runner = Runner()
        a = runner.single(quick_config, "gzip")
        b = runner.single(quick_config.with_(channels=4), "gzip")
        assert a is not b

    def test_single_ipc_positive(self, quick_config):
        assert Runner().single_ipc(quick_config, "eon") > 0


class TestWeightedSpeedup:
    def test_accepts_mix_object_or_names(self, quick_config):
        runner = Runner()
        mix = get_mix("2-ILP")
        ws_obj = runner.weighted_speedup(quick_config, mix)
        ws_names = runner.weighted_speedup(quick_config, list(mix.apps))
        assert ws_obj == pytest.approx(ws_names)

    def test_reuses_supplied_result(self, quick_config):
        runner = Runner()
        mix = get_mix("2-ILP")
        result = runner.run_mix(quick_config, mix)
        ws = runner.weighted_speedup(quick_config, mix, result)
        assert 0 < ws <= 2.5

    def test_bounded_by_thread_count_approximately(self, quick_config):
        runner = Runner()
        ws = runner.weighted_speedup(quick_config, get_mix("2-ILP"))
        assert ws < 2.5  # small slack for measurement noise


class TestBaselineMultiplier:
    def test_baselines_run_longer_than_mix(self, quick_config):
        runner = Runner(baseline_multiplier=2)
        single = runner.single(quick_config, "gzip")
        assert (
            single.config.instructions_per_thread
            == 2 * quick_config.instructions_per_thread
        )

    def test_multiplier_one_preserves_budget(self, quick_config):
        runner = Runner(baseline_multiplier=1)
        single = runner.single(quick_config, "gzip")
        assert (
            single.config.instructions_per_thread
            == quick_config.instructions_per_thread
        )

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            Runner(baseline_multiplier=0)
