"""Tests for the parameter-sweep utility."""

import pytest

from repro.common.errors import ConfigError
from repro.experiments.runner import Runner
from repro.experiments.sweep import Sweep


class TestGrid:
    def test_cartesian_product(self, quick_config):
        sweep = Sweep(
            quick_config,
            axes={"channels": [2, 4], "scheduler": ["fcfs", "hit-first"]},
        )
        grid = sweep.grid()
        assert len(grid) == 4
        assert {"channels": 2, "scheduler": "fcfs"} in grid
        assert {"channels": 4, "scheduler": "hit-first"} in grid

    def test_axis_order_deterministic(self, quick_config):
        sweep = Sweep(quick_config, axes={"channels": [2, 4]})
        assert sweep.grid() == [{"channels": 2}, {"channels": 4}]

    def test_unknown_field_rejected(self, quick_config):
        with pytest.raises(ConfigError):
            Sweep(quick_config, axes={"warp_factor": [9]})

    def test_empty_axes_rejected(self, quick_config):
        with pytest.raises(ConfigError):
            Sweep(quick_config, axes={})
        with pytest.raises(ConfigError):
            Sweep(quick_config, axes={"channels": []})


class TestRun:
    def test_default_metrics(self, quick_config):
        sweep = Sweep(quick_config, axes={"channels": [2, 4]})
        points = sweep.run(["gzip", "mcf"])
        assert len(points) == 2
        for point in points:
            assert point.metrics["weighted_speedup"] > 0
            assert point.metrics["throughput"] > 0
            assert point.config.channels == point.overrides["channels"]

    def test_custom_metrics(self, quick_config):
        sweep = Sweep(quick_config, axes={"mapping": ["page", "xor"]})
        points = sweep.run(
            ["mcf"],
            metrics={"row_miss": lambda r, ctx: r.row_buffer_miss_rate},
        )
        assert all(0.0 <= p.metrics["row_miss"] <= 1.0 for p in points)

    def test_table_output(self, quick_config):
        sweep = Sweep(quick_config, axes={"channels": [2, 4]})
        headers, rows = sweep.table(["gzip"])
        assert headers[0] == "channels"
        assert len(rows) == 2
        assert rows[0][0] == 2

    def test_shared_runner_reuses_baselines(self, quick_config):
        runner = Runner()
        sweep = Sweep(
            quick_config, axes={"scheduler": ["fcfs", "hit-first"]},
            runner=runner,
        )
        sweep.run(["gzip"])
        # both scheduler configs need gzip singles; they were cached
        for scheduler in ("fcfs", "hit-first"):
            cfg = runner.baseline_config(quick_config.with_(scheduler=scheduler))
            assert (cfg.cache_key(), ("gzip",)) in runner._results
