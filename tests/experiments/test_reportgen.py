"""Tests for the markdown report generator."""

import pytest

from repro.experiments.reportgen import generate_report
from repro.experiments.runner import Runner


class TestGenerateReport:
    def test_subset_report(self, tiny_config):
        text = generate_report(
            config=tiny_config,
            experiments=["fig8"],
            runner=Runner(),
        )
        assert "# Reproduction report" in text
        assert "## Figure 8" in text
        assert "| mix | page | xor |" in text
        assert "## Configuration" in text
        assert "seed" in text

    def test_progress_callback(self, tiny_config):
        seen = []
        generate_report(
            config=tiny_config,
            experiments=["fig8"],
            runner=Runner(),
            progress=seen.append,
        )
        assert seen == ["fig8"]

    def test_unknown_experiment_rejected(self, tiny_config):
        with pytest.raises(KeyError):
            generate_report(config=tiny_config, experiments=["fig99"])

    def test_ablations_includable(self, tiny_config):
        text = generate_report(
            config=tiny_config,
            experiments=["abl-page-mode"],
            include_ablations=True,
            runner=Runner(),
        )
        assert "page mode" in text

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "r.md"
        code = main([
            "report", "--out", str(out), "--experiments", "fig8",
            "--instructions", "200", "--warmup", "50", "--scale", "32",
        ])
        assert code == 0
        assert out.read_text().startswith("# Reproduction report")
