"""Tests for the parallel experiment engine and persistent result cache."""

import pickle

import pytest

import repro.experiments.parallel as parallel
import repro.experiments.runner as runner_mod
from repro.experiments.figures import figure4
from repro.experiments.parallel import (
    CACHE_SCHEMA_VERSION,
    ParallelRunner,
    ResultCache,
    run_many,
)
from repro.experiments.runner import Runner, run_mix
from repro.workloads.mixes import MIXES


class TestResultCache:
    def test_roundtrip(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        cache.put(tiny_config, ("gzip",), result)
        loaded = cache.get(tiny_config, ("gzip",))
        assert loaded is not None
        assert loaded.ipcs == result.ipcs
        assert loaded.core.cycles == result.core.cycles

    def test_empty_cache_misses(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(tiny_config, ("gzip",)) is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_keyed_by_config_and_apps(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        cache.put(tiny_config, ("gzip",), result)
        assert cache.get(tiny_config, ("eon",)) is None
        assert cache.get(tiny_config.with_(channels=4), ("gzip",)) is None

    def test_version_bump_invalidates(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path, version=CACHE_SCHEMA_VERSION)
        result = run_mix(tiny_config, ("gzip",))
        cache.put(tiny_config, ("gzip",), result)
        bumped = ResultCache(tmp_path, version=CACHE_SCHEMA_VERSION + 1)
        assert bumped.get(tiny_config, ("gzip",)) is None
        # ... and the old stamp still resolves.
        same = ResultCache(tmp_path, version=CACHE_SCHEMA_VERSION)
        assert same.get(tiny_config, ("gzip",)) is not None

    def test_corrupt_entry_is_a_miss(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        cache.put(tiny_config, ("gzip",), result)
        # Different corruptions raise different exception classes from
        # pickle.load (UnpicklingError, ValueError, EOFError); every
        # one must read as a miss, never propagate.
        for garbage in (b"not a pickle", b"garbage\n", b""):
            cache.path_for(tiny_config, ("gzip",)).write_bytes(garbage)
            assert cache.get(tiny_config, ("gzip",)) is None

    def test_corrupt_entry_quarantined_not_rehit(self, tiny_config, tmp_path):
        """Satellite: corruption moves the file aside and is counted once.

        Before the quarantine, every lookup of a corrupt entry paid to
        fail on it again (and counted as a plain miss, hiding the
        corruption from operators).
        """
        cache = ResultCache(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        cache.put(tiny_config, ("gzip",), result)
        path = cache.path_for(tiny_config, ("gzip",))
        path.write_bytes(b"not a pickle")
        assert cache.get(tiny_config, ("gzip",)) is None
        assert cache.corrupt == 1 and cache.misses == 0
        # the entry is gone from the cache dir, parked in quarantine/
        assert not path.exists()
        assert (cache.quarantine_dir / path.name).exists()
        # the next lookup is an honest miss, not another decode failure
        assert cache.get(tiny_config, ("gzip",)) is None
        assert cache.corrupt == 1 and cache.misses == 1

    def test_corruption_logs_a_warning(self, tiny_config, tmp_path, caplog):
        cache = ResultCache(tmp_path)
        cache.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        cache.path_for(tiny_config, ("gzip",)).write_bytes(b"garbage")
        with caplog.at_level("WARNING", logger="repro.experiments.parallel"):
            assert cache.get(tiny_config, ("gzip",)) is None
        assert any("quarantined" in r.message for r in caplog.records)

    def test_wrong_type_payload_rejected(self, tiny_config, tmp_path):
        """Satellite: a valid pickle of the wrong type must not escape.

        A wrong-type payload used to propagate straight into figure
        drivers; now the schema check quarantines it like any other
        corruption.
        """
        import pickle as _pickle

        cache = ResultCache(tmp_path)
        cache.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        path = cache.path_for(tiny_config, ("gzip",))
        path.write_bytes(_pickle.dumps({"imposter": True}))
        assert cache.get(tiny_config, ("gzip",)) is None
        assert cache.corrupt == 1
        assert (cache.quarantine_dir / path.name).exists()

    def test_stale_tmp_orphans_swept_on_init(self, tiny_config, tmp_path):
        """Satellite: crashed writers' temp files are cleaned up, but a
        live writer's fresh temp file is left alone."""
        import os as _os
        import time as _time

        stale = tmp_path / "deadbeef.pkl.12345.tmp"
        stale.write_bytes(b"half a result")
        old = _time.time() - 7200
        _os.utime(stale, (old, old))
        fresh = tmp_path / "cafe.pkl.67890.tmp"
        fresh.write_bytes(b"in flight right now")
        ResultCache(tmp_path)
        assert not stale.exists()
        assert fresh.exists()

    def test_len_and_clear(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(tiny_config, ("gzip",), run_mix(tiny_config, ("gzip",)))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_results_pickle_cleanly(self, tiny_config):
        result = run_mix(tiny_config, ("gzip", "mcf"))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.ipcs == result.ipcs
        assert clone.core.stall_cycles == result.core.stall_cycles


def _hammer_cache(cache_dir, config, apps, result, rounds):
    """Worker: rewrite the same cache entry over and over."""
    cache = ResultCache(cache_dir)
    for _ in range(rounds):
        cache.put(config, apps, result)
    return True


class TestResultCacheConcurrency:
    """Satellite: the os.replace write path under concurrent writers."""

    def test_concurrent_writers_never_tear_an_entry(
        self, tiny_config, tmp_path
    ):
        from concurrent.futures import ProcessPoolExecutor

        result = run_mix(tiny_config, ("gzip",))
        cache = ResultCache(tmp_path)
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(
                    _hammer_cache, tmp_path, tiny_config, ("gzip",),
                    result, 25,
                )
                for _ in range(4)
            ]
            # read while the writers race; a reader must only ever see
            # a complete entry or (transiently) none at all
            for _ in range(50):
                loaded = cache.get(tiny_config, ("gzip",))
                if loaded is not None:
                    assert loaded.core.cycles == result.core.cycles
            assert all(f.result() for f in futures)
        final = cache.get(tiny_config, ("gzip",))
        assert final is not None
        assert final.core.cycles == result.core.cycles
        # the per-pid temp files are always renamed away, never leaked
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corrupt_entry_then_rewrite_round_trip(
        self, tiny_config, tmp_path
    ):
        cache = ResultCache(tmp_path)
        result = run_mix(tiny_config, ("gzip",))
        cache.put(tiny_config, ("gzip",), result)
        path = cache.path_for(tiny_config, ("gzip",))
        path.write_bytes(b"\x80\x05 torn mid-write")
        assert cache.get(tiny_config, ("gzip",)) is None  # corrupt = miss
        cache.put(tiny_config, ("gzip",), result)  # heal in place
        healed = cache.get(tiny_config, ("gzip",))
        assert healed is not None
        assert healed.ipcs == result.ipcs
        # Corruption is counted apart from honest misses, and the bad
        # entry was quarantined rather than silently rewritten over.
        assert cache.corrupt == 1 and cache.misses == 0 and cache.hits == 1
        assert len(list(cache.quarantine_dir.glob("*.pkl"))) == 1


class TestRunMany:
    def test_preserves_job_order(self, tiny_config):
        jobs = [
            (tiny_config, ("mcf",)),
            (tiny_config, ("gzip",)),
            (tiny_config, ("mcf", "gzip")),
        ]
        results = run_many(jobs)
        assert [r.apps for r in results] == [("mcf",), ("gzip",), ("mcf", "gzip")]

    def test_duplicate_jobs_simulated_once(self, tiny_config, monkeypatch):
        calls = []
        real = parallel._simulate

        def counting(config, apps):
            calls.append(apps)
            return real(config, apps)

        monkeypatch.setattr(parallel, "_simulate", counting)
        results = run_many(
            [(tiny_config, ("gzip",)), (tiny_config, ("gzip",))]
        )
        assert len(calls) == 1
        assert results[0] is results[1]

    def test_memo_consulted_and_populated(self, tiny_config):
        memo = {}
        first = run_many([(tiny_config, ("gzip",))], memo=memo)
        assert len(memo) == 1
        second = run_many([(tiny_config, ("gzip",))], memo=memo)
        assert second[0] is first[0]


class TestParallelDeterminism:
    def test_jobs4_bit_identical_to_serial(self, tiny_config):
        """The paper's figure fan-outs must not depend on worker count.

        Two figure-style job sets (fig2: fetch policies; fig6: channel
        counts) run serially and across four worker processes; every
        per-mix metric must match bit for bit.
        """
        mix = MIXES["2-MIX"]
        jobs = [
            (tiny_config.with_(fetch_policy=p), mix.apps)
            for p in ("icount", "dwarn")
        ] + [
            (tiny_config.with_(channels=n, gang=1), MIXES["2-MEM"].apps)
            for n in (2, 4)
        ]
        serial = run_many(jobs, parallelism=1)
        pooled = run_many(jobs, parallelism=4)
        for s, p in zip(serial, pooled):
            assert s.ipcs == p.ipcs
            assert s.core.cycles == p.core.cycles
            assert s.row_buffer_miss_rate == p.row_buffer_miss_rate
            assert s.core.stall_cycles == p.core.stall_cycles
            assert s.hierarchy == p.hierarchy

    def test_parallel_runner_figure_rows_match_serial(self, tiny_config):
        mixes = ["2-MEM"]
        serial = figure4(config=tiny_config, runner=Runner(), mixes=mixes)
        pooled = figure4(
            config=tiny_config, runner=ParallelRunner(jobs=2), mixes=mixes
        )
        assert serial.rows == pooled.rows


class TestPersistentReuse:
    def test_warm_cache_runs_zero_simulations(
        self, tiny_config, tmp_path, monkeypatch
    ):
        jobs = [(tiny_config, ("gzip",)), (tiny_config, ("gzip", "mcf"))]
        cache = ResultCache(tmp_path)
        first = run_many(jobs, cache=cache)

        def explode(config, apps):  # a warm rerun must never simulate
            raise AssertionError(f"unexpected simulation of {apps}")

        monkeypatch.setattr(parallel, "_simulate", explode)
        second = run_many(jobs, cache=ResultCache(tmp_path))
        assert [r.ipcs for r in second] == [r.ipcs for r in first]

    def test_version_bump_forces_resimulation(
        self, tiny_config, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        run_many([(tiny_config, ("gzip",))], cache=cache)
        calls = []
        real = parallel._simulate

        def counting(config, apps):
            calls.append(apps)
            return real(config, apps)

        monkeypatch.setattr(parallel, "_simulate", counting)
        bumped = ResultCache(tmp_path, version=CACHE_SCHEMA_VERSION + 1)
        run_many([(tiny_config, ("gzip",))], cache=bumped)
        assert calls == [("gzip",)]

    def test_runners_share_baselines_through_cache(
        self, tiny_config, tmp_path, monkeypatch
    ):
        """Satellite fix: independently constructed runners must not
        re-run identical single-thread baselines when they share the
        persistent cache."""
        cache = ResultCache(tmp_path)
        first = Runner(cache=cache)
        baseline = first.single(tiny_config, "gzip")

        monkeypatch.setattr(
            runner_mod,
            "run_mix",
            lambda config, apps: (_ for _ in ()).throw(
                AssertionError("baseline should come from the cache")
            ),
        )
        second = Runner(cache=ResultCache(tmp_path))
        again = second.single(tiny_config, "gzip")
        assert again.ipcs == baseline.ipcs

    def test_runner_memoizes_mix_runs_in_process(
        self, tiny_config, monkeypatch
    ):
        runner = Runner()
        first = runner.run_mix(tiny_config, ["gzip", "mcf"])
        monkeypatch.setattr(
            runner_mod,
            "run_mix",
            lambda config, apps: (_ for _ in ()).throw(
                AssertionError("second identical run must hit the memo")
            ),
        )
        assert runner.run_mix(tiny_config, ["gzip", "mcf"]) is first


class TestParallelRunnerApi:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_cache_dir_creates_cache(self, tmp_path):
        runner = ParallelRunner(cache_dir=tmp_path / "cache")
        assert isinstance(runner.cache, ResultCache)
        assert (tmp_path / "cache").is_dir()

    def test_default_has_no_persistent_cache(self):
        assert ParallelRunner().cache is None

    def test_baseline_job_matches_single(self, tiny_config):
        runner = Runner()
        config, apps = runner.baseline_job(tiny_config, "gzip")
        assert apps == ("gzip",)
        assert (
            config.instructions_per_thread
            == tiny_config.instructions_per_thread * runner.baseline_multiplier
        )
        planned = runner.run_many([(config, apps)])[0]
        assert runner.single(tiny_config, "gzip") is planned
