"""Tests for ExperimentResult export (CSV / dicts)."""

import csv
import io

from repro.experiments.figures import ExperimentResult


def sample():
    return ExperimentResult(
        name="Figure X",
        description="test",
        headers=["mix", "a", "b"],
        rows=[("2-MEM", 1.5, "50%"), ("4-MEM", 2.0, "60%")],
    )


class TestCsv:
    def test_round_trips_through_csv_reader(self):
        text = sample().to_csv()
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["mix", "a", "b"]
        assert rows[1] == ["2-MEM", "1.5", "50%"]
        assert len(rows) == 3

    def test_save_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        sample().save_csv(path)
        assert path.read_text().startswith("mix,a,b")


class TestDicts:
    def test_as_dicts(self):
        dicts = sample().as_dicts()
        assert dicts[0] == {"mix": "2-MEM", "a": 1.5, "b": "50%"}
        assert len(dicts) == 2
