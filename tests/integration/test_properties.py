"""System-level property tests (hypothesis): conservation invariants.

Random small mixes and configurations run end-to-end; structural
invariants must hold regardless of the draw.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.config import SystemConfig
from repro.experiments.runner import build_system, run_mix

APPS = ["gzip", "eon", "mcf", "swim", "ammp", "crafty"]

config_strategy = st.builds(
    SystemConfig,
    channels=st.sampled_from([2, 4]),
    mapping=st.sampled_from(["page", "xor"]),
    scheduler=st.sampled_from(["fcfs", "hit-first", "request-based"]),
    fetch_policy=st.sampled_from(["icount", "dwarn"]),
    scale=st.just(32),
    instructions_per_thread=st.just(250),
    warmup_instructions=st.just(50),
    seed=st.integers(0, 2**20),
)

mix_strategy = st.lists(st.sampled_from(APPS), min_size=1, max_size=3)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=config_strategy, apps=mix_strategy)
def test_run_completes_with_conserved_counts(config, apps):
    result = run_mix(config, apps)
    # every thread reports its committed budget or the run hit the cap
    for t in result.core.threads:
        assert 0 <= t.committed <= config.instructions_per_thread
    # hierarchy submit counts and DRAM service counts may differ only
    # by requests in flight across the warm-up reset or the run end
    in_flight = result.hierarchy.dram_reads_issued - result.dram.reads
    assert abs(in_flight) <= config.mshr_entries
    # per-thread attribution sums to the hierarchy total
    assert (
        sum(result.hierarchy.dram_loads_per_thread.values())
        == result.hierarchy.dram_reads_issued
    )
    # row-buffer accounting is a valid rate
    assert 0.0 <= result.dram.row_hit_rate <= 1.0


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=config_strategy, apps=mix_strategy)
def test_memory_system_fully_drains(config, apps):
    core, memory, hierarchy = build_system(config, apps)
    core.run(
        config.instructions_per_thread,
        warmup_instructions=config.warmup_instructions,
        max_cycles=config.max_cycles,
    )
    core.event_queue.run_all()
    assert memory.outstanding_total == 0
    assert len(hierarchy.mshr) == 0


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_seed_determinism_property(seed):
    config = SystemConfig(
        scale=32, instructions_per_thread=200, warmup_instructions=40,
        seed=seed,
    )
    a = run_mix(config, ["gzip", "mcf"])
    b = run_mix(config, ["gzip", "mcf"])
    assert a.core.cycles == b.core.cycles
    assert a.dram.reads == b.dram.reads
