"""Trace replay parity: a recorded trace reproduces the live stream's
system behaviour exactly (same µops, same addresses, same timing)."""

import io

from repro.common.events import EventQueue
from repro.common.rng import child_rng
from repro.cache.hierarchy import HierarchyParams, MemoryHierarchy
from repro.cpu.core import CoreParams, SMTCore
from repro.dram.system import MemorySystem
from repro.workloads.generator import SyntheticStream
from repro.workloads.spec2000 import get_profile
from repro.workloads.trace import TraceStream, record_trace


def run_core(stream, icache_seed=7):
    import random

    evq = EventQueue()
    memory = MemorySystem.ddr(evq)
    hierarchy = MemoryHierarchy(
        HierarchyParams(scale=16, tlb_penalty=0), evq, memory
    )
    core = SMTCore(
        CoreParams(), evq, hierarchy, "icount",
        [("w", stream)], [random.Random(icache_seed)],
    )
    result = core.run(600, warmup_instructions=0)
    return result, memory


def test_trace_replay_matches_live_stream_cycle_for_cycle():
    # record enough to cover warmup+measurement (600 committed needs
    # some slack for in-flight µops at the end)
    live = SyntheticStream(
        get_profile("ammp"), child_rng(4, "ammp"), thread_id=0, scale=16
    )
    buffer = io.StringIO()
    record_trace(live, 1200, buffer)

    fresh = SyntheticStream(
        get_profile("ammp"), child_rng(4, "ammp"), thread_id=0, scale=16
    )
    live_result, live_memory = run_core(fresh)

    replay = TraceStream.from_text(buffer.getvalue())
    replay_result, replay_memory = run_core(replay)

    assert replay_result.cycles == live_result.cycles
    assert replay_result.threads[0].ipc == live_result.threads[0].ipc
    assert replay_memory.stats.reads == live_memory.stats.reads
    assert (
        replay_memory.stats.row_buffer.hits
        == live_memory.stats.row_buffer.hits
    )


def test_trace_replay_is_config_portable():
    # the same trace under two memory configs gives different timing
    # but identical instruction counts
    live = SyntheticStream(
        get_profile("swim"), child_rng(9, "swim"), thread_id=0, scale=16
    )
    buffer = io.StringIO()
    record_trace(live, 1200, buffer)
    a_result, a_mem = run_core(TraceStream.from_text(buffer.getvalue()))
    b_stream = TraceStream.from_text(buffer.getvalue())

    import random

    evq = EventQueue()
    memory = MemorySystem.ddr(evq, channels=8)
    hierarchy = MemoryHierarchy(
        HierarchyParams(scale=16, tlb_penalty=0), evq, memory
    )
    core = SMTCore(CoreParams(), evq, hierarchy, "icount",
                   [("w", b_stream)], [random.Random(7)])
    b_result = core.run(600, warmup_instructions=0)
    assert b_result.threads[0].committed == a_result.threads[0].committed
