"""End-to-end shape tests: the paper's qualitative findings must hold.

These run small but complete simulations and assert the *direction* of
each of the paper's four major findings, not exact magnitudes.
"""

import pytest

from repro.experiments.config import SystemConfig
from repro.experiments.runner import Runner, run_mix
from repro.workloads.mixes import get_mix


@pytest.fixture(scope="module")
def runner():
    return Runner()


@pytest.fixture(scope="module")
def config():
    # scale 8 is the calibration point of the workload profiles; the
    # paper-shape assertions below are robust there (see EXPERIMENTS.md)
    # where smaller scales add noise.
    return SystemConfig(
        scale=8,
        instructions_per_thread=2500,
        warmup_instructions=800,
        seed=42,
    )


class TestFinding1Concurrency:
    """More threads -> more memory concurrency (Figures 4/5)."""

    def test_mem_mix_has_more_concurrency_than_ilp(self, config, runner):
        mem = runner.run_mix(config, get_mix("4-MEM"))
        ilp = runner.run_mix(config, get_mix("4-ILP"))
        assert mem.dram.probability_outstanding_at_least(8) > (
            ilp.dram.probability_outstanding_at_least(8)
        )

    def test_concurrency_grows_with_threads(self, config, runner):
        two = runner.run_mix(config, get_mix("2-MEM"))
        eight = runner.run_mix(config, get_mix("8-MEM"))
        assert eight.dram.probability_outstanding_at_least(16) > (
            two.dram.probability_outstanding_at_least(16)
        )

    def test_mem_concurrent_requests_come_from_many_threads(
        self, config, runner
    ):
        result = runner.run_mix(config, get_mix("4-MEM"))
        dist = result.dram.thread_concurrency_distribution()
        multi = sum(p for t, p in dist.items() if t >= 3)
        assert multi > 0.5


class TestFinding2ChannelOrganization:
    """Independent channels beat ganged organizations (Fig. 6/7)."""

    def test_more_channels_help_mem_mix(self, config, runner):
        mix = get_mix("4-MEM")
        two = runner.weighted_speedup(config.with_(channels=2), mix)
        eight = runner.weighted_speedup(config.with_(channels=8), mix)
        assert eight > two * 1.2

    def test_channels_do_not_matter_for_ilp(self, config, runner):
        mix = get_mix("2-ILP")
        two = runner.weighted_speedup(config.with_(channels=2), mix)
        eight = runner.weighted_speedup(config.with_(channels=8), mix)
        assert eight == pytest.approx(two, rel=0.15)

    def test_independent_beats_ganged(self, config, runner):
        mix = get_mix("4-MEM")
        independent = runner.weighted_speedup(
            config.with_(channels=4, gang=1), mix
        )
        ganged = runner.weighted_speedup(
            config.with_(channels=4, gang=4), mix
        )
        assert independent > ganged


class TestFinding3RowBufferLocality:
    """Row-buffer miss rates rise with thread count; XOR helps (Fig. 8/9)."""

    def test_miss_rate_rises_with_threads(self, config, runner):
        cfg = config.with_(mapping="page")
        two = runner.run_mix(cfg, get_mix("2-MEM"))
        eight = runner.run_mix(cfg, get_mix("8-MEM"))
        assert eight.row_buffer_miss_rate > two.row_buffer_miss_rate

    def test_xor_reduces_miss_rate_on_rdram(self, config, runner):
        mix = get_mix("4-MEM")
        page = runner.run_mix(
            config.with_(dram_type="rdram", mapping="page"), mix
        )
        xor = runner.run_mix(
            config.with_(dram_type="rdram", mapping="xor"), mix
        )
        assert xor.row_buffer_miss_rate <= page.row_buffer_miss_rate + 0.02


class TestFinding4ThreadAwareScheduling:
    """Thread-aware scheduling helps MEM mixes (Figure 10)."""

    def test_request_based_beats_fcfs_on_mem(self, config, runner):
        # Throughput, not weighted speedup: WS divides by separately
        # sampled single-thread baselines, whose noise at test budgets
        # can swamp the scheduling effect (see EXPERIMENTS.md).
        mix = get_mix("4-MEM")
        fcfs = runner.run_mix(config.with_(scheduler="fcfs"), mix)
        request = runner.run_mix(
            config.with_(scheduler="request-based"), mix
        )
        # note: *average* latency may rise even as throughput improves
        # (the flooding threads' deprioritized requests wait longer
        # while the latency-critical thread is served) -- so the
        # assertion is on throughput only.
        assert request.throughput > fcfs.throughput


class TestInfrastructure:
    def test_infinite_l3_bounds_real_system(self, config, runner):
        mix = get_mix("4-MEM")
        real = runner.weighted_speedup(config, mix)
        perfect = runner.weighted_speedup(config.with_(perfect_l3=True), mix)
        assert perfect > real

    def test_mem_mix_generates_more_dram_traffic_than_mix_mix(
        self, config, runner
    ):
        mem = runner.run_mix(config, get_mix("4-MEM"))
        mixed = runner.run_mix(config, get_mix("4-MIX"))
        ilp = runner.run_mix(config, get_mix("4-ILP"))
        assert (
            mem.dram_accesses_per_100_instructions
            > mixed.dram_accesses_per_100_instructions
            > ilp.dram_accesses_per_100_instructions
        )

    def test_full_run_deterministic_across_processes_shape(self, config):
        # Same config object twice: bitwise-identical results.
        a = run_mix(config, ["gzip", "mcf"])
        b = run_mix(config, ["gzip", "mcf"])
        assert a.core.cycles == b.core.cycles
        assert a.dram.reads == b.dram.reads
        assert a.dram.row_hit_rate == b.dram.row_hit_rate
