"""Build-and-run plumbing for experiments.

A :class:`Runner` turns a :class:`~repro.experiments.config.SystemConfig`
plus a list of application names into a complete simulated system
(workload streams -> SMT core -> cache hierarchy -> DRAM), runs it,
and returns a :class:`MixResult`.  Single-thread baseline runs (needed
by the weighted-speedup metric) are cached per configuration, since
every figure reuses them across many multiprogrammed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.events import EventQueue
from repro.common.rng import child_rng
from repro.cache.hierarchy import HierarchySnapshot, MemoryHierarchy
from repro.cache.prewarm import prewarm
from repro.cpu.core import SMTCore
from repro.cpu.stats import CoreResult
from repro.dram.stats import DRAMStats
from repro.dram.system import MemorySystem
from repro.experiments.config import SystemConfig
from repro.os.vm import VirtualMemory
from repro.metrics.speedup import weighted_speedup
from repro.workloads.generator import SyntheticStream
from repro.workloads.mixes import WorkloadMix
from repro.workloads.spec2000 import get_profile


@dataclass
class MixResult:
    """Everything measured from one multiprogrammed run."""

    config: SystemConfig
    apps: tuple[str, ...]
    core: CoreResult
    dram: DRAMStats | None
    hierarchy: HierarchySnapshot

    @property
    def ipcs(self) -> list[float]:
        return [t.ipc for t in self.core.threads]

    @property
    def throughput(self) -> float:
        return self.core.throughput_ipc

    @property
    def row_buffer_miss_rate(self) -> float:
        return self.dram.row_miss_rate if self.dram is not None else 0.0

    @property
    def dram_accesses_per_100_instructions(self) -> float:
        total = self.core.total_committed
        if not total or self.dram is None:
            return 0.0
        reads = sum(t.dram_accesses for t in self.core.threads)
        return 100.0 * reads / total


def build_system(
    config: SystemConfig, apps: Sequence[str]
) -> tuple[SMTCore, MemorySystem | None, MemoryHierarchy]:
    """Construct (but do not run) a full system for the given apps."""
    event_queue = EventQueue()
    if config.perfect_l3:
        memory = None
    elif config.dram_type == "ddr":
        memory = MemorySystem.ddr(
            event_queue,
            channels=config.channels,
            gang=config.gang,
            mapping=config.mapping,
            page_mode=config.page_mode_enum,
            scheduler=config.scheduler,
            controller_model=config.controller_model,
        )
    else:
        memory = MemorySystem.rdram(
            event_queue,
            channels=config.channels,
            gang=config.gang,
            mapping=config.mapping,
            page_mode=config.page_mode_enum,
            scheduler=config.scheduler,
            controller_model=config.controller_model,
        )
    translator = None
    if config.vm_policy != "none":
        translator = VirtualMemory(
            policy=config.vm_policy,
            colors=config.channels * 4,  # one color per DDR bank
            num_threads=max(1, len(apps)),
            rng=child_rng(config.seed, "vm"),
        )
    hierarchy = MemoryHierarchy(
        config.hierarchy_params(), event_queue, memory, translator=translator
    )
    workloads = []
    icache_rngs = []
    for i, app in enumerate(apps):
        stream = SyntheticStream(
            get_profile(app),
            child_rng(config.seed, f"stream:{app}:{i}"),
            thread_id=i,
            scale=config.scale,
        )
        workloads.append((app, stream))
        icache_rngs.append(child_rng(config.seed, f"icache:{app}:{i}"))
    core = SMTCore(
        config.core,
        event_queue,
        hierarchy,
        config.fetch_policy,
        workloads,
        icache_rngs,
    )
    prewarm(hierarchy, [stream.footprint() for _, stream in workloads])
    return core, memory, hierarchy


def run_mix(config: SystemConfig, apps: Sequence[str]) -> MixResult:
    """Build and run one multiprogrammed mix to completion."""
    core, memory, hierarchy = build_system(config, apps)
    result = core.run(
        config.instructions_per_thread,
        warmup_instructions=config.warmup_instructions,
        max_cycles=config.max_cycles,
    )
    dram_stats = memory.finish() if memory is not None else None
    return MixResult(
        config=config,
        apps=tuple(apps),
        core=result,
        dram=dram_stats,
        hierarchy=hierarchy.snapshot(),
    )


def run_single(config: SystemConfig, app: str) -> MixResult:
    """Run one application alone on the given configuration."""
    return run_mix(config, [app])


class Runner:
    """Caching front-end for experiment drivers.

    Every run — multiprogrammed or single-thread baseline — is memoized
    in-process, keyed by ``(config.cache_key(), apps)``; all runs are
    deterministic given that identity, so a cached result is
    bit-identical to a fresh one.  An optional persistent
    :class:`~repro.experiments.parallel.ResultCache` sits behind the
    memo, so independently constructed runners (separate figure
    drivers, repeat CLI invocations) share baselines and mix results
    across processes.

    ``baseline_multiplier`` stretches the instruction budget of
    single-thread baseline runs: weighted speedup divides by the
    baseline IPC, so baseline sampling noise amplifies through every
    WS number; longer (cached, cheap) baselines damp it.
    """

    def __init__(self, baseline_multiplier: int = 3, cache=None) -> None:
        if baseline_multiplier < 1:
            raise ValueError("baseline_multiplier must be >= 1")
        self.baseline_multiplier = baseline_multiplier
        #: Optional persistent ResultCache (see repro.experiments.parallel).
        self.cache = cache
        self._results: dict[tuple, MixResult] = {}

    def _cached_run(self, config: SystemConfig, apps: tuple[str, ...]) -> MixResult:
        key = (config.cache_key(), apps)
        result = self._results.get(key)
        if result is not None:
            return result
        if self.cache is not None:
            result = self.cache.get(config, apps)
        if result is None:
            result = run_mix(config, apps)
            if self.cache is not None:
                self.cache.put(config, apps, result)
        self._results[key] = result
        return result

    def run_mix(self, config: SystemConfig, mix: WorkloadMix | Sequence[str]) -> MixResult:
        apps = mix.apps if isinstance(mix, WorkloadMix) else tuple(mix)
        return self._cached_run(config, apps)

    def run_many(self, jobs: Sequence) -> list[MixResult]:
        """Run a list of ``(config, apps)`` jobs, returning results in order.

        The serial reference implementation; every job goes through the
        shared cache, so duplicates cost nothing.
        :class:`~repro.experiments.parallel.ParallelRunner` overrides
        this with a process-pool fan-out — figure drivers submit their
        whole job list here before reading individual results, so one
        runner swap parallelizes every experiment path.
        """
        return [
            self._cached_run(config, tuple(apps)) for config, apps in jobs
        ]

    def baseline_config(self, config: SystemConfig) -> SystemConfig:
        """The (budget-stretched) config a single-thread baseline runs on."""
        return config.with_(
            instructions_per_thread=(
                config.instructions_per_thread * self.baseline_multiplier
            )
        )

    def baseline_job(self, config: SystemConfig, app: str) -> tuple:
        """The ``(config, apps)`` job :meth:`single` would run — lets
        drivers enqueue baselines in a :meth:`run_many` batch."""
        return (self.baseline_config(config), (app,))

    def single(self, config: SystemConfig, app: str) -> MixResult:
        return self._cached_run(self.baseline_config(config), (app,))

    def single_ipc(self, config: SystemConfig, app: str) -> float:
        return self.single(config, app).core.threads[0].ipc

    def weighted_speedup(
        self,
        config: SystemConfig,
        mix: WorkloadMix | Sequence[str],
        mix_result: MixResult | None = None,
    ) -> float:
        """Weighted speedup of a mix against single-thread baselines.

        ``sum_i IPC_multi[i] / IPC_single[i]`` (Tullsen & Brown); the
        single-thread baselines run on the *same* configuration.
        """
        apps = mix.apps if isinstance(mix, WorkloadMix) else tuple(mix)
        if mix_result is None:
            mix_result = self.run_mix(config, apps)
        singles = [self.single_ipc(config, app) for app in apps]
        return weighted_speedup(mix_result.ipcs, singles)
