"""Build-and-run plumbing for experiments.

A :class:`Runner` turns a :class:`~repro.experiments.config.SystemConfig`
plus a list of application names into a complete simulated system
(workload streams -> SMT core -> cache hierarchy -> DRAM), runs it,
and returns a :class:`MixResult`.  Single-thread baseline runs (needed
by the weighted-speedup metric) are cached per configuration, since
every figure reuses them across many multiprogrammed runs.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.sanitizer import SimSanitizer
from repro.common.events import EventQueue
from repro.common.rng import child_rng
from repro.cache.hierarchy import HierarchySnapshot, MemoryHierarchy
from repro.cache.prewarm import prewarm
from repro.cpu.core import SMTCore
from repro.cpu.stats import CoreResult
from repro.dram.stats import DRAMStats
from repro.dram.system import MemorySystem
from repro.engine import core_class
from repro.experiments.config import SystemConfig
from repro.experiments.resilience import (
    ResilienceStats,
    RetryPolicy,
    execute_jobs,
)
from repro.os.vm import VirtualMemory
from repro.metrics.speedup import weighted_speedup
from repro.telemetry import MetricRegistry, Telemetry
from repro.telemetry.manifest import (
    RunManifest,
    RunRecord,
    default_manifest_dir,
    run_id as _run_id,
)
from repro.workloads.generator import SyntheticStream
from repro.workloads.mixes import WorkloadMix
from repro.workloads.spec2000 import get_profile


@dataclass
class MixResult:
    """Everything measured from one multiprogrammed run."""

    config: SystemConfig
    apps: tuple[str, ...]
    core: CoreResult
    dram: DRAMStats | None
    hierarchy: HierarchySnapshot
    #: Telemetry registry snapshot (see :mod:`repro.telemetry`); None
    #: when the run executed without a live registry.
    metrics: dict | None = field(default=None, compare=False)

    @property
    def ipcs(self) -> list[float]:
        return [t.ipc for t in self.core.threads]

    @property
    def throughput(self) -> float:
        return self.core.throughput_ipc

    @property
    def row_buffer_miss_rate(self) -> float:
        return self.dram.row_miss_rate if self.dram is not None else 0.0

    @property
    def dram_accesses_per_100_instructions(self) -> float:
        total = self.core.total_committed
        if not total or self.dram is None:
            return 0.0
        reads = sum(t.dram_accesses for t in self.core.threads)
        return 100.0 * reads / total


def build_system(
    config: SystemConfig,
    apps: Sequence[str],
    telemetry: Telemetry | None = None,
    sanitizer: SimSanitizer | None = None,
) -> tuple[SMTCore, MemorySystem | None, MemoryHierarchy]:
    """Construct (but do not run) a full system for the given apps.

    When a :class:`~repro.analysis.sanitizer.SimSanitizer` is given,
    the system is built on its checking event queue and every
    component is wrapped with invariant checks; the wrapping is
    observe-only, so the run stays bit-identical to a plain one.
    """
    event_queue: EventQueue
    if sanitizer is not None:
        event_queue = sanitizer.make_event_queue()
    else:
        event_queue = EventQueue()
    if config.perfect_l3:
        memory = None
    elif config.dram_type == "ddr":
        memory = MemorySystem.ddr(
            event_queue,
            channels=config.channels,
            gang=config.gang,
            mapping=config.mapping,
            page_mode=config.page_mode_enum,
            scheduler=config.scheduler,
            controller_model=config.controller_model,
            telemetry=telemetry,
        )
    else:
        memory = MemorySystem.rdram(
            event_queue,
            channels=config.channels,
            gang=config.gang,
            mapping=config.mapping,
            page_mode=config.page_mode_enum,
            scheduler=config.scheduler,
            controller_model=config.controller_model,
            telemetry=telemetry,
        )
    translator = None
    if config.vm_policy != "none":
        translator = VirtualMemory(
            policy=config.vm_policy,
            colors=config.channels * 4,  # one color per DDR bank
            num_threads=max(1, len(apps)),
            rng=child_rng(config.seed, "vm"),
        )
    hierarchy = MemoryHierarchy(
        config.hierarchy_params(),
        event_queue,
        memory,
        translator=translator,
        telemetry=telemetry,
    )
    workloads = []
    icache_rngs = []
    for i, app in enumerate(apps):
        stream = SyntheticStream(
            get_profile(app),
            child_rng(config.seed, f"stream:{app}:{i}"),
            thread_id=i,
            scale=config.scale,
        )
        workloads.append((app, stream))
        icache_rngs.append(child_rng(config.seed, f"icache:{app}:{i}"))
    core_kwargs = {"telemetry": telemetry}
    if config.engine == "sampled":
        core_kwargs["sampling"] = config.sampling
    core = core_class(config.engine)(
        config.core,
        event_queue,
        hierarchy,
        config.fetch_policy,
        workloads,
        icache_rngs,
        **core_kwargs,
    )
    prewarm(hierarchy, [stream.footprint() for _, stream in workloads])
    if sanitizer is not None:
        sanitizer.attach(core=core, memory=memory, hierarchy=hierarchy)
    return core, memory, hierarchy


def sanitize_requested() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitized runs."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def run_mix(
    config: SystemConfig,
    apps: Sequence[str],
    telemetry: Telemetry | None = None,
    sanitizer: SimSanitizer | None = None,
) -> MixResult:
    """Build and run one multiprogrammed mix to completion.

    Pass a :class:`~repro.analysis.sanitizer.SimSanitizer` to check
    protocol/accounting invariants throughout the run (violations
    collect on the sanitizer; inspect or raise as the caller sees
    fit).  Setting ``REPRO_SANITIZE=1`` in the environment sanitizes
    every run with an internally owned sanitizer that *raises*
    :class:`~repro.analysis.sanitizer.SanitizerError` on violations.
    """
    owned_sanitizer = sanitizer is None and sanitize_requested()
    if owned_sanitizer:
        sanitizer = SimSanitizer(
            tracer=telemetry.tracer if telemetry is not None else None
        )
    core, memory, hierarchy = build_system(
        config, apps, telemetry, sanitizer=sanitizer
    )
    result = core.run(
        config.instructions_per_thread,
        warmup_instructions=config.warmup_instructions,
        max_cycles=config.max_cycles,
    )
    dram_stats = memory.finish() if memory is not None else None
    if sanitizer is not None and dram_stats is not None:
        # The end-of-run drain (below) fires leftover events into the
        # live stats object; snapshot it first so sanitized results
        # stay bit-identical to plain ones.
        dram_stats = copy.deepcopy(dram_stats)
    snapshot = hierarchy.snapshot()
    metrics = None
    if telemetry is not None and telemetry.registry.enabled:
        registry = telemetry.registry
        registry.add_counters(
            "cache",
            {
                "loads": snapshot.loads,
                "stores": snapshot.stores,
                "dram_reads_issued": snapshot.dram_reads_issued,
                "mshr.merges": snapshot.mshr_merges,
                "mshr.rejections": snapshot.mshr_rejections,
                "mshr.allocations": hierarchy.mshr.allocations,
            },
        )
        registry.set_gauges(
            "cache",
            {
                "l1d_hit_rate": snapshot.l1d_hit_rate,
                "l2_hit_rate": snapshot.l2_hit_rate,
                "l3_hit_rate": snapshot.l3_hit_rate,
                "dtlb_hit_rate": snapshot.dtlb_hit_rate,
            },
        )
        if dram_stats is not None:
            registry.set_gauges(
                "dram", {"row_miss_rate": dram_stats.row_miss_rate}
            )
        metrics = registry.snapshot()
    if sanitizer is not None:
        sanitizer.finish()
        if owned_sanitizer:
            sanitizer.raise_if_violations()
    return MixResult(
        config=config,
        apps=tuple(apps),
        core=result,
        dram=dram_stats,
        hierarchy=snapshot,
        metrics=metrics,
    )


def run_single(config: SystemConfig, app: str) -> MixResult:
    """Run one application alone on the given configuration."""
    return run_mix(config, [app])


class Runner:
    """Caching front-end for experiment drivers.

    Every run — multiprogrammed or single-thread baseline — is memoized
    in-process, keyed by ``(config.cache_key(), apps)``; all runs are
    deterministic given that identity, so a cached result is
    bit-identical to a fresh one.  An optional persistent
    :class:`~repro.experiments.parallel.ResultCache` sits behind the
    memo, so independently constructed runners (separate figure
    drivers, repeat CLI invocations) share baselines and mix results
    across processes.

    ``baseline_multiplier`` stretches the instruction budget of
    single-thread baseline runs: weighted speedup divides by the
    baseline IPC, so baseline sampling noise amplifies through every
    WS number; longer (cached, cheap) baselines damp it.

    Fault tolerance: ``retry_policy`` (see
    :class:`~repro.experiments.resilience.RetryPolicy`) retries
    transient failures of fresh simulations; ``journal`` (a
    :class:`~repro.experiments.resilience.BatchJournal`) records every
    outcome crash-safely so an interrupted campaign resumes from
    completed work; ``fault_plan`` injects deterministic chaos.  When
    any of these are active, unrecoverable failures surface as
    :class:`~repro.common.errors.BatchAborted` (or its timeout/crash
    refinements) carrying the failing job's identity; with none of
    them (the default) execution and error behaviour are exactly as
    before.  ``runner.resilience`` accumulates retry/timeout/crash
    counters either way and is folded into the manifest.
    """

    def __init__(
        self,
        baseline_multiplier: int = 3,
        cache=None,
        collect_metrics: bool = False,
        sanitize: bool = False,
        retry_policy=None,
        fault_plan=None,
        journal=None,
    ) -> None:
        if baseline_multiplier < 1:
            raise ValueError("baseline_multiplier must be >= 1")
        self.baseline_multiplier = baseline_multiplier
        #: Optional persistent ResultCache (see repro.experiments.parallel).
        self.cache = cache
        #: When set, fresh simulations run with a live MetricRegistry
        #: and their snapshots land on ``MixResult.metrics`` and in the
        #: manifest.
        self.collect_metrics = collect_metrics
        #: When set (or REPRO_SANITIZE=1), every fresh simulation runs
        #: under a :class:`~repro.analysis.sanitizer.SimSanitizer` and
        #: raises SanitizerError if any invariant was violated.
        self.sanitize = sanitize or sanitize_requested()
        #: Fault-tolerance policy for fresh simulations (None = default).
        self.retry_policy = retry_policy
        #: Deterministic fault injection (chaos testing only).
        self.fault_plan = fault_plan
        #: Crash-safe batch journal (resume support).
        self.journal = journal
        #: Retry/timeout/crash counters + failure records for this runner.
        self.resilience = ResilienceStats()
        # Route single runs through the resilient executor only when
        # something beyond plain execution was requested, so default
        # runners keep raising original exceptions unwrapped.
        self._resilient = (
            (retry_policy is not None and retry_policy != RetryPolicy())
            or fault_plan is not None
            or journal is not None
        )
        self._results: dict[tuple, MixResult] = {}
        #: Provenance of every distinct run served, keyed by run id
        #: (first source wins -- a later memo hit does not demote a
        #: "simulated" record).
        self._records: dict[str, RunRecord] = {}

    def _record(
        self, config: SystemConfig, apps: tuple[str, ...], source: str,
        wall_time_s: float = 0.0, result: MixResult | None = None,
    ) -> None:
        rid = _run_id(config, apps)
        if rid not in self._records:
            sampling = None
            if result is not None and isinstance(result.core.extra, dict):
                sampling = result.core.extra.get("sampling")
            self._records[rid] = RunRecord.from_run(
                config, apps, source=source, wall_time_s=wall_time_s,
                sampling=sampling,
            )

    def _simulate_once(self, config: SystemConfig, apps: tuple[str, ...]) -> MixResult:
        """One fresh simulation with this runner's telemetry/sanitize setup."""
        telemetry = Telemetry() if self.collect_metrics else None
        if self.sanitize:
            sanitizer = SimSanitizer(
                tracer=telemetry.tracer if telemetry is not None else None
            )
            result = run_mix(
                config, apps, telemetry=telemetry, sanitizer=sanitizer
            )
            sanitizer.raise_if_violations()
            return result
        return run_mix(config, apps, telemetry=telemetry)

    def _cached_run(self, config: SystemConfig, apps: tuple[str, ...]) -> MixResult:
        key = (config.cache_key(), apps)
        result = self._results.get(key)
        if result is not None:
            self._record(config, apps, "memo", result=result)
            return result
        if self.cache is not None:
            result = self.cache.get(config, apps)
            if result is not None:
                self._record(config, apps, "disk-cache", result=result)
                if self.journal is not None and self.journal.completed(
                    _run_id(config, apps)
                ):
                    self.resilience.resumed_jobs += 1
        if result is None:
            start = time.perf_counter()
            if self._resilient:
                result = execute_jobs(
                    [(config, apps)],
                    self._simulate_once,
                    parallelism=1,
                    policy=self.retry_policy,
                    journal=self.journal,
                    stats=self.resilience,
                    fault_plan=self.fault_plan,
                    on_complete=lambda _i, res: (
                        self.cache.put(config, apps, res)
                        if self.cache is not None
                        else None
                    ),
                )[0]
            else:
                result = self._simulate_once(config, apps)
                if self.cache is not None:
                    self.cache.put(config, apps, result)
            self._record(
                config, apps, "simulated", time.perf_counter() - start,
                result=result,
            )
        self._results[key] = result
        return result

    # ------------------------------------------------------------------
    # provenance

    @property
    def records(self) -> list[RunRecord]:
        """Run records collected so far, in first-served order."""
        return list(self._records.values())

    def manifest(self) -> RunManifest:
        """Provenance manifest for every run this runner has served.

        When the batch met (and survived) failures, the manifest's
        ``extra["resilience"]`` block records the retry/timeout/crash
        counters and every per-attempt failure, so a sweep's provenance
        says not just what ran but what it recovered from.
        """
        extra = {}
        if self.resilience.eventful:
            extra["resilience"] = self.resilience.as_dict()
        snapshots = [
            r.metrics for r in self._results.values() if r.metrics
        ]
        return RunManifest(
            records=self.records,
            metrics=MetricRegistry.merge(snapshots) if snapshots else {},
            wall_time_s=sum(r.wall_time_s for r in self._records.values()),
            extra=extra,
        )

    def write_manifest(self, directory=None) -> Path:
        """Write the manifest (see :meth:`manifest`); return its path."""
        target = default_manifest_dir() if directory is None else directory
        return self.manifest().write(target)

    def run_mix(self, config: SystemConfig, mix: WorkloadMix | Sequence[str]) -> MixResult:
        apps = mix.apps if isinstance(mix, WorkloadMix) else tuple(mix)
        return self._cached_run(config, apps)

    def run_many(self, jobs: Sequence) -> list[MixResult]:
        """Run a list of ``(config, apps)`` jobs, returning results in order.

        The serial reference implementation; every job goes through the
        shared cache, so duplicates cost nothing.
        :class:`~repro.experiments.parallel.ParallelRunner` overrides
        this with a process-pool fan-out — figure drivers submit their
        whole job list here before reading individual results, so one
        runner swap parallelizes every experiment path.
        """
        return [
            self._cached_run(config, tuple(apps)) for config, apps in jobs
        ]

    def baseline_config(self, config: SystemConfig) -> SystemConfig:
        """The (budget-stretched) config a single-thread baseline runs on."""
        return config.with_(
            instructions_per_thread=(
                config.instructions_per_thread * self.baseline_multiplier
            )
        )

    def baseline_job(self, config: SystemConfig, app: str) -> tuple:
        """The ``(config, apps)`` job :meth:`single` would run — lets
        drivers enqueue baselines in a :meth:`run_many` batch."""
        return (self.baseline_config(config), (app,))

    def single(self, config: SystemConfig, app: str) -> MixResult:
        return self._cached_run(self.baseline_config(config), (app,))

    def single_ipc(self, config: SystemConfig, app: str) -> float:
        return self.single(config, app).core.threads[0].ipc

    def weighted_speedup(
        self,
        config: SystemConfig,
        mix: WorkloadMix | Sequence[str],
        mix_result: MixResult | None = None,
    ) -> float:
        """Weighted speedup of a mix against single-thread baselines.

        ``sum_i IPC_multi[i] / IPC_single[i]`` (Tullsen & Brown); the
        single-thread baselines run on the *same* configuration.
        """
        apps = mix.apps if isinstance(mix, WorkloadMix) else tuple(mix)
        if mix_result is None:
            mix_result = self.run_mix(config, apps)
        singles = [self.single_ipc(config, app) for app in apps]
        return weighted_speedup(mix_result.ipcs, singles)
