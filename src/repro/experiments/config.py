"""System configuration: one object describing a full simulated system.

Defaults reproduce Table 1 of the paper: a 3 GHz, 8-wide SMT processor
with 64 KB L1s, a 512 KB L2, a 4 MB L3, 16-entry MSHRs, and a
2-channel DDR SDRAM memory system with the DWarn.2.8 fetch policy.

``scale`` shrinks cache sizes and workload footprints together (the
footprint-to-capacity ratios stay fixed), which lets the pure-Python
simulator reproduce the paper's *shapes* with instruction budgets of
10^4 instead of the paper's 10^8 per thread.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError
from repro.cache.hierarchy import HierarchyParams
from repro.cpu.core import CoreParams
from repro.dram.bank import PageMode
from repro.engine import ENGINE_NAMES, SamplingParams


def _default_engine() -> str:
    """The default execution engine, overridable via ``REPRO_ENGINE``.

    Safe to key behaviour on an environment variable only because the
    engines are bit-identical by contract: the override changes how
    fast results arrive, never the results (and ``cache_key`` already
    excludes the engine for the same reason).
    """
    import os

    return os.environ.get("REPRO_ENGINE", "fast")


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build and run one simulated system."""

    # --- memory system (Section 4.1 / Table 1) ---
    dram_type: str = "ddr"  # "ddr" | "rdram"
    channels: int = 2
    gang: int = 1
    mapping: str = "xor"  # "page" | "xor" | "color-xor"
    page_mode: str = "open"  # "open" | "close"
    scheduler: str = "hit-first"
    #: "request" (fast, default) or "command" (explicit DRAM commands).
    controller_model: str = "request"
    #: Virtual-memory page allocation: "none" hands the workload's
    #: addresses straight to the hierarchy (the default; the generator
    #: already separates threads' address spaces bin-hopping-style);
    #: "bin-hopping" / "page-coloring" / "random" insert a real
    #: translation layer (see repro.os.vm).
    vm_policy: str = "none"

    # --- processor ---
    fetch_policy: str = "dwarn"
    core: CoreParams = field(default_factory=CoreParams)

    # --- cache hierarchy ---
    perfect_l1: bool = False
    perfect_l2: bool = False
    perfect_l3: bool = False
    #: Table 1 lists 16 MSHRs per cache; the hierarchy models a single
    #: combined file, and the paper's own Figure 4 shows >16 requests
    #: outstanding 54-61% of busy time for the 4/8-thread MEM mixes,
    #: so the single file defaults to 32 to approximate the combined
    #: multi-level capacity.
    mshr_entries: int = 32
    #: Stride prefetcher with Table 1's 4-entry prefetch MSHR quota.
    #: Off by default (profiles calibrated without it).
    prefetch: bool = False

    # --- run control ---
    #: Execution engine: "fast" (cycle-skipping kernel, the default),
    #: "reference" (plain per-cycle loop), or "sampled" (statistical
    #: sampling; opt-in, produces *estimates*).  Reference and fast are
    #: bit-identical by contract — see repro.engine and the
    #: ``repro engine-diff`` oracle that enforces it; sampled is held
    #: to a per-metric error bound instead.  The *default* (not an
    #: explicit choice) can be overridden with the ``REPRO_ENGINE``
    #: environment variable, which is how CI forces the whole test
    #: suite through a particular engine.
    engine: str = field(default_factory=lambda: _default_engine())
    #: Window schedule of the sampled engine (ignored by the exact
    #: engines).  Part of ``cache_key`` only when ``engine="sampled"``,
    #: since sampling parameters change the estimates.
    sampling: SamplingParams = field(default_factory=SamplingParams)
    #: Footprint/cache scale divisor (see module docstring).
    scale: int = 8
    #: Committed instructions measured per thread.
    instructions_per_thread: int = 5000
    #: Per-thread instructions committed (and discarded) before
    #: measurement, on top of structural cache pre-warming.
    warmup_instructions: int = 2000
    #: Hard cycle cap per phase as a safety net.
    max_cycles: int = 80_000_000
    #: Root of all randomness.
    seed: int = 1

    def __post_init__(self) -> None:
        if self.dram_type not in ("ddr", "rdram"):
            raise ConfigError(f"dram_type must be ddr|rdram, got {self.dram_type!r}")
        if self.page_mode not in ("open", "close"):
            raise ConfigError(f"page_mode must be open|close, got {self.page_mode!r}")
        if self.mapping not in ("page", "xor", "color-xor"):
            raise ConfigError(
                f"mapping must be page|xor|color-xor, got {self.mapping!r}"
            )
        if self.vm_policy not in ("none", "bin-hopping", "page-coloring",
                                  "random"):
            raise ConfigError(
                f"vm_policy must be none|bin-hopping|page-coloring|random, "
                f"got {self.vm_policy!r}"
            )
        if self.controller_model not in ("request", "command"):
            raise ConfigError(
                f"controller_model must be request|command, "
                f"got {self.controller_model!r}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ConfigError(
                f"engine must be {'|'.join(ENGINE_NAMES)}, "
                f"got {self.engine!r}"
            )
        if self.channels < 1:
            raise ConfigError(f"channels must be >= 1, got {self.channels}")
        if self.gang < 1 or self.channels % self.gang:
            raise ConfigError(
                f"gang {self.gang} must divide channels {self.channels}"
            )
        if self.scale < 1:
            raise ConfigError(f"scale must be >= 1, got {self.scale}")
        if self.instructions_per_thread < 1:
            raise ConfigError("instructions_per_thread must be >= 1")
        if self.warmup_instructions < 0:
            raise ConfigError("warmup_instructions must be >= 0")

    # ------------------------------------------------------------------

    @classmethod
    def table1(cls, **overrides) -> "SystemConfig":
        """The paper's baseline system (Table 1), with overrides."""
        return cls(**overrides)

    def with_(self, **overrides) -> "SystemConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    @property
    def page_mode_enum(self) -> PageMode:
        return PageMode.OPEN if self.page_mode == "open" else PageMode.CLOSE

    def hierarchy_params(self) -> HierarchyParams:
        return HierarchyParams(
            mshr_entries=self.mshr_entries,
            perfect_l1=self.perfect_l1,
            perfect_l2=self.perfect_l2,
            perfect_l3=self.perfect_l3,
            prefetch=self.prefetch,
            scale=self.scale,
        )

    def organization_name(self) -> str:
        """Paper-style channel-organization label, e.g. ``"8C-2G"``."""
        return f"{self.channels}C-{self.gang}G"

    def cache_key(self) -> tuple:
        """Hashable identity of everything that affects simulation.

        Used by the runner to cache single-thread baseline runs.
        ``core`` is flattened since dataclasses with dict fields don't
        hash.  The *exact* engines ("reference"/"fast") are deliberately
        not part of the key: they are bit-identical by contract
        (enforced by the engine-diff oracle lane), so a result computed
        under either is valid for both and caches stay shared across
        that choice.  The sampled engine produces estimates that depend
        on the window schedule, so selecting it appends a
        ``("sampled", <sampling key>)`` component — leaving every
        non-sampled config's key byte-identical to what it always was.
        """
        core = dataclasses.asdict(self.core)
        core["latencies"] = tuple(sorted(core["latencies"].items()))
        if self.engine == "sampled":
            return self._base_cache_key(core) + (
                ("sampled", self.sampling.cache_key()),
            )
        return self._base_cache_key(core)

    def _base_cache_key(self, core: dict) -> tuple:
        return (
            self.dram_type,
            self.channels,
            self.gang,
            self.mapping,
            self.page_mode,
            self.scheduler,
            self.controller_model,
            self.vm_policy,
            self.fetch_policy,
            tuple(sorted(core.items())),
            self.perfect_l1,
            self.perfect_l2,
            self.perfect_l3,
            self.mshr_entries,
            self.prefetch,
            self.scale,
            self.instructions_per_thread,
            self.warmup_instructions,
            self.seed,
        )
