"""Multi-seed repetition: means and spreads for noisy measurements.

Short synthetic runs carry sampling noise (EXPERIMENTS.md documents
the variance); any conclusion worth keeping should be checked across
seeds.  :func:`repeat_mix` reruns a configuration under several seeds
and reports mean/min/max/stdev for the interesting metrics;
:func:`compare_configs` does the same for an A/B pair and reports the
per-seed gains (paired comparison, which cancels workload-draw noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.errors import ConfigError
from repro.experiments.config import SystemConfig
from repro.experiments.runner import MixResult, Runner


@dataclass(frozen=True)
class MetricSummary:
    """Mean and spread of one metric across seeds."""

    name: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.4f} "
            f"(min {self.minimum:.4f}, max {self.maximum:.4f}, "
            f"sd {self.stdev:.4f}, n={len(self.values)})"
        )


MetricFn = Callable[[MixResult], float]

DEFAULT_METRICS: dict[str, MetricFn] = {
    "throughput": lambda r: r.throughput,
    "row_miss_rate": lambda r: r.row_buffer_miss_rate,
    "dram_per_100": lambda r: r.dram_accesses_per_100_instructions,
}


def repeat_mix(
    config: SystemConfig,
    apps: Sequence[str],
    seeds: Sequence[int] = (1, 2, 3),
    metrics: dict[str, MetricFn] | None = None,
    runner: Runner | None = None,
) -> dict[str, MetricSummary]:
    """Run the mix once per seed; summarize each metric.

    Per-seed runs are independent, so a
    :class:`~repro.experiments.parallel.ParallelRunner` passed as
    ``runner`` fans them out (and a cache-backed runner skips seeds it
    has already simulated).
    """
    if not seeds:
        raise ConfigError("at least one seed is required")
    metrics = metrics or DEFAULT_METRICS
    runner = runner or Runner()
    apps = tuple(apps)
    results = runner.run_many(
        [(config.with_(seed=seed), apps) for seed in seeds]
    )
    collected: dict[str, list[float]] = {name: [] for name in metrics}
    for result in results:
        for name, fn in metrics.items():
            collected[name].append(fn(result))
    return {
        name: MetricSummary(name, tuple(values))
        for name, values in collected.items()
    }


@dataclass(frozen=True)
class PairedComparison:
    """Per-seed paired gains of config B over config A for one metric."""

    metric: str
    gains: tuple[float, ...]  # (b - a) / a per seed

    @property
    def mean_gain(self) -> float:
        return sum(self.gains) / len(self.gains)

    @property
    def wins(self) -> int:
        """Seeds where B beat A."""
        return sum(g > 0 for g in self.gains)

    @property
    def consistent(self) -> bool:
        """All seeds agree on the sign."""
        return all(g > 0 for g in self.gains) or all(
            g < 0 for g in self.gains
        )


def compare_configs(
    config_a: SystemConfig,
    config_b: SystemConfig,
    apps: Sequence[str],
    seeds: Sequence[int] = (1, 2, 3),
    metric: MetricFn | None = None,
    metric_name: str = "throughput",
    runner: Runner | None = None,
) -> PairedComparison:
    """Paired A/B across seeds: same seed, same workload draw, two
    configurations.  Pairing removes the workload-sampling noise that
    dominates unpaired comparisons at small budgets."""
    if not seeds:
        raise ConfigError("at least one seed is required")
    metric = metric or (lambda r: r.throughput)
    runner = runner or Runner()
    apps = tuple(apps)
    results = runner.run_many(
        [(config_a.with_(seed=seed), apps) for seed in seeds]
        + [(config_b.with_(seed=seed), apps) for seed in seeds]
    )
    gains = []
    for i, seed in enumerate(seeds):
        a = metric(results[i])
        b = metric(results[i + len(seeds)])
        if a == 0:
            raise ConfigError(f"metric is zero under config A (seed {seed})")
        gains.append((b - a) / a)
    return PairedComparison(metric=metric_name, gains=tuple(gains))
