"""One driver per figure of the paper's evaluation (Section 5).

Each ``figureN()`` function reproduces the corresponding figure's
experiment and returns an :class:`ExperimentResult` with structured
rows plus a paper-style rendering.  Drivers accept a
:class:`~repro.experiments.config.SystemConfig` so callers (tests,
benches, the CLI) control the instruction budget and scale, and an
optional mix subset so smoke runs stay fast.

The registry :data:`EXPERIMENTS` maps short names (``"fig1"`` ...
``"fig10"``) to drivers; :func:`run_experiment` is the generic entry
point used by the CLI and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.experiments.config import SystemConfig
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.metrics.breakdown import cpi_breakdown
from repro.metrics.concurrency import bucket_outstanding, bucket_thread_counts
from repro.metrics.speedup import weighted_speedup
from repro.workloads.mixes import MIXES, all_mix_names
from repro.workloads.spec2000 import PROFILES

#: Mixes with meaningful memory behaviour (Figures 7 and 10 drop ILP).
MEMORY_BOUND_MIXES = (
    "2-MIX", "2-MEM", "4-MIX", "4-MEM", "8-MIX", "8-MEM",
)

#: Figure 4 bucket labels (computed once for the table header).
_OUTSTANDING_LABELS = ("1", "2-3", "4-7", "8-15", "16+")


@dataclass
class ExperimentResult:
    """Structured result of one reproduced figure."""

    name: str
    description: str
    headers: list[str]
    rows: list[tuple]
    notes: str = ""
    extra: dict = field(default_factory=dict)

    def render(self, floatfmt: str = ".3f") -> str:
        text = format_table(
            self.headers,
            self.rows,
            floatfmt=floatfmt,
            title=f"{self.name}: {self.description}",
        )
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def to_csv(self) -> str:
        """Rows as CSV text (header line first)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())

    def as_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by header names."""
        return [dict(zip(self.headers, row)) for row in self.rows]


def _mix_names(subset: Sequence[str] | None, default: Sequence[str]) -> list[str]:
    if subset is None:
        return list(default)
    unknown = [m for m in subset if m not in MIXES]
    if unknown:
        raise KeyError(f"unknown mixes {unknown}; known: {all_mix_names()}")
    return list(subset)


def _ws_jobs(runner: Runner, config: SystemConfig, mix) -> list[tuple]:
    """Jobs a ``runner.weighted_speedup(config, mix)`` call will need:
    the multiprogrammed run plus one baseline per app."""
    return [
        (config, mix.apps),
        *(runner.baseline_job(config, app) for app in mix.apps),
    ]


# Every driver below plans its complete job list up front and submits
# it through ``runner.run_many`` before computing anything.  With the
# default serial Runner this is a no-op rehearsal (results land in the
# runner's cache and the original loops read them back for free); with
# a ParallelRunner the whole figure fans out across worker processes.


# ---------------------------------------------------------------------------
# Figure 1


def figure1(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    apps: Sequence[str] | None = None,
) -> ExperimentResult:
    """CPI breakdown of the SPEC2000 applications (Figure 1).

    Each application runs single-threaded on four systems (real,
    perfect L3, perfect L2, perfect L1); the CPI differences give the
    proc/L2/L3/mem components.  Rows are sorted by rising CPI_mem, as
    in the paper.
    """
    config = config or SystemConfig()
    runner = runner or Runner()
    if apps is None:
        apps = sorted(PROFILES)
    variants = (
        config,
        config.with_(perfect_l3=True),
        config.with_(perfect_l3=True, perfect_l2=True),
        config.with_(perfect_l3=True, perfect_l2=True, perfect_l1=True),
    )
    runner.run_many(
        [runner.baseline_job(v, app) for app in apps for v in variants]
    )
    breakdowns = []
    for app in apps:
        cpi_real = 1.0 / runner.single_ipc(config, app)
        cpi_pl3 = 1.0 / runner.single_ipc(config.with_(perfect_l3=True), app)
        cpi_pl2 = 1.0 / runner.single_ipc(
            config.with_(perfect_l3=True, perfect_l2=True), app
        )
        cpi_pl1 = 1.0 / runner.single_ipc(
            config.with_(perfect_l3=True, perfect_l2=True, perfect_l1=True), app
        )
        breakdowns.append(
            cpi_breakdown(app, cpi_real, cpi_pl3, cpi_pl2, cpi_pl1)
        )
    breakdowns.sort(key=lambda b: b.cpi_mem)
    return ExperimentResult(
        name="Figure 1",
        description="CPI breakdown of SPEC2000 applications "
        "(sorted by rising CPI_mem)",
        headers=["app", "CPI_proc", "CPI_L2", "CPI_L3", "CPI_mem", "CPI_total"],
        rows=[b.as_row() for b in breakdowns],
        notes="MEM applications cluster at the bottom (largest CPI_mem); "
        "mcf should be last.",
    )


# ---------------------------------------------------------------------------
# Figure 2


def figure2(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
    policies: Sequence[str] = ("icount", "stall", "dg", "dwarn"),
) -> ExperimentResult:
    """Weighted speedup of the four fetch policies (Figure 2).

    Single-thread baselines are shared across policies (a fetch policy
    cannot meaningfully affect a one-thread run), so WS values are
    directly comparable between columns.
    """
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, all_mix_names())
    baseline_config = config.with_(fetch_policy="icount")
    jobs = []
    for mix_name in names:
        mix = MIXES[mix_name]
        jobs.extend(runner.baseline_job(baseline_config, app) for app in mix.apps)
        jobs.extend(
            (config.with_(fetch_policy=policy), mix.apps) for policy in policies
        )
    runner.run_many(jobs)
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        singles = [runner.single_ipc(baseline_config, app) for app in mix.apps]
        values = []
        for policy in policies:
            result = runner.run_mix(config.with_(fetch_policy=policy), mix)
            values.append(weighted_speedup(result.ipcs, singles))
        rows.append((mix_name, *values))
    return ExperimentResult(
        name="Figure 2",
        description="weighted speedup of four fetch policies "
        "(2-channel DDR SDRAM)",
        headers=["mix", *policies],
        rows=rows,
        notes="Expected shape: comparable for ILP mixes; the "
        "long-latency-aware policies beat ICOUNT on 8-MIX/8-MEM.",
    )


# ---------------------------------------------------------------------------
# Figure 3


def figure3(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
    policies: Sequence[str] = ("icount", "dwarn"),
) -> ExperimentResult:
    """Performance loss due to DRAM accesses (Figure 3).

    For each mix and fetch policy, weighted speedup on the real
    2-channel system is reported as a percentage of the weighted
    speedup on a system with an infinitely large L3 (ICOUNT policy),
    the paper's reference point.

    Both weighted speedups are computed against the *same*
    single-thread baselines (on the infinite-L3 reference machine);
    using per-machine baselines would cancel the DRAM effect out of
    the ratio instead of exposing it.
    """
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, all_mix_names())
    reference_config = config.with_(perfect_l3=True, fetch_policy="icount")
    jobs = []
    for mix_name in names:
        mix = MIXES[mix_name]
        jobs.extend(
            runner.baseline_job(reference_config, app) for app in mix.apps
        )
        jobs.append((reference_config, mix.apps))
        jobs.extend(
            (config.with_(fetch_policy=policy), mix.apps) for policy in policies
        )
    runner.run_many(jobs)
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        singles = [
            runner.single_ipc(reference_config, app) for app in mix.apps
        ]
        reference = runner.run_mix(reference_config, mix)
        ws_reference = weighted_speedup(reference.ipcs, singles)
        values = []
        for policy in policies:
            result = runner.run_mix(config.with_(fetch_policy=policy), mix)
            ws = weighted_speedup(result.ipcs, singles)
            values.append(100.0 * ws / ws_reference if ws_reference else 0.0)
        rows.append((mix_name, *(f"{v:.1f}%" for v in values)))
    return ExperimentResult(
        name="Figure 3",
        description="weighted speedup relative to the infinite-L3 "
        "reference (=100%)",
        headers=["mix", *policies],
        rows=rows,
        notes="Expected shape: ILP mixes stay near 100%; MEM mixes lose "
        "most of their performance; DWarn recovers more than ICOUNT "
        "on the 8-thread mixes.",
    )


# ---------------------------------------------------------------------------
# Figures 4 and 5


def figure4(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
) -> ExperimentResult:
    """Distribution of outstanding requests while DRAM is busy (Fig. 4)."""
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, all_mix_names())
    runner.run_many([(config, MIXES[m].apps) for m in names])
    rows = []
    for mix_name in names:
        result = runner.run_mix(config, MIXES[mix_name])
        dist = result.dram.busy_outstanding_distribution()
        buckets = bucket_outstanding(dist)
        rows.append(
            (mix_name, *(f"{100 * v:.1f}%" for v in buckets.values()))
        )
    return ExperimentResult(
        name="Figure 4",
        description="outstanding memory requests while the DRAM system "
        "is busy (time-weighted)",
        headers=["mix", *_OUTSTANDING_LABELS],
        rows=rows,
        notes="Expected shape: MEM mixes concentrate at 8+ outstanding "
        "requests; ILP mixes at 1-2.  An all-zero row means the mix "
        "made no main-memory accesses in the window (ILP mixes "
        "generate ~0.01/100 instructions).",
    )


def figure5(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
) -> ExperimentResult:
    """Threads generating concurrent requests (Figure 5)."""
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, all_mix_names())
    runner.run_many([(config, MIXES[m].apps) for m in names])
    max_threads = max(MIXES[m].threads for m in names)
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        result = runner.run_mix(config, mix)
        dist = result.dram.thread_concurrency_distribution()
        buckets = bucket_thread_counts(dist, mix.threads)
        padded = [
            f"{100 * buckets.get(str(t), 0.0):.1f}%" if t <= mix.threads else "-"
            for t in range(1, max_threads + 1)
        ]
        rows.append((mix_name, *padded))
    return ExperimentResult(
        name="Figure 5",
        description="number of threads with outstanding requests when "
        "multiple requests are present",
        headers=["mix", *[str(t) for t in range(1, max_threads + 1)]],
        rows=rows,
        notes="Expected shape: for MEM mixes the requests come from "
        "(almost) all threads; for ILP mixes usually from one.  An "
        "all-zero row means the mix never had two requests "
        "outstanding at once.",
    )


# ---------------------------------------------------------------------------
# Figure 6


def figure6(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
    channel_counts: Sequence[int] = (2, 4, 8),
) -> ExperimentResult:
    """Performance as the number of (independent) channels grows (Fig. 6)."""
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, all_mix_names())
    jobs = []
    for mix_name in names:
        for n in channel_counts:
            jobs.extend(
                _ws_jobs(runner, config.with_(channels=n, gang=1), MIXES[mix_name])
            )
    runner.run_many(jobs)
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        speedups = [
            runner.weighted_speedup(config.with_(channels=n, gang=1), mix)
            for n in channel_counts
        ]
        base = speedups[0] or 1.0
        rows.append((mix_name, *(s / base for s in speedups)))
    return ExperimentResult(
        name="Figure 6",
        description="weighted speedup vs channel count, normalized to "
        f"{channel_counts[0]} channels",
        headers=["mix", *(f"{n}ch" for n in channel_counts)],
        rows=rows,
        notes="Expected shape: large gains for MEM mixes (bandwidth "
        "bound), negligible for ILP mixes.",
    )


# ---------------------------------------------------------------------------
# Figure 7


def figure7(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
    organizations: Sequence[tuple[int, int]] = (
        (2, 1), (2, 2), (4, 1), (4, 2), (4, 4), (8, 1), (8, 2), (8, 4),
    ),
) -> ExperimentResult:
    """Channel ganging organizations (Figure 7).

    ``(channels, gang)`` pairs label the paper's xC-yG organizations.
    Values are weighted speedups normalized to the same-channel-count
    independent (xC-1G) organization, so the cost of ganging reads
    directly from the table.
    """
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, MEMORY_BOUND_MIXES)
    labels = [f"{c}C-{g}G" for c, g in organizations]
    jobs = []
    for mix_name in names:
        for channels, gang in organizations:
            jobs.extend(
                _ws_jobs(
                    runner,
                    config.with_(channels=channels, gang=gang),
                    MIXES[mix_name],
                )
            )
    runner.run_many(jobs)
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        raw = {}
        for channels, gang in organizations:
            raw[(channels, gang)] = runner.weighted_speedup(
                config.with_(channels=channels, gang=gang), mix
            )
        values = []
        for channels, gang in organizations:
            base = raw.get((channels, 1)) or 1.0
            values.append(raw[(channels, gang)] / base)
        rows.append((mix_name, *values))
    return ExperimentResult(
        name="Figure 7",
        description="channel ganging: WS relative to the independent "
        "(1G) organization with the same channel count",
        headers=["mix", *labels],
        rows=rows,
        notes="Expected shape: ganged organizations lose performance on "
        "memory-bound mixes (up to tens of percent).",
    )


# ---------------------------------------------------------------------------
# Figures 8 and 9


def _mapping_miss_rates(
    config: SystemConfig,
    runner: Runner,
    names: Sequence[str],
    dram_type: str,
) -> list[tuple]:
    runner.run_many(
        [
            (config.with_(dram_type=dram_type, mapping=mapping), MIXES[m].apps)
            for m in names
            for mapping in ("page", "xor")
        ]
    )
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        values = []
        for mapping in ("page", "xor"):
            result = runner.run_mix(
                config.with_(dram_type=dram_type, mapping=mapping), mix
            )
            values.append(f"{100 * result.row_buffer_miss_rate:.1f}%")
        rows.append((mix_name, *values))
    return rows


def figure8(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
) -> ExperimentResult:
    """Row-buffer miss rates, page vs XOR mapping, DDR SDRAM (Fig. 8)."""
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, all_mix_names())
    return ExperimentResult(
        name="Figure 8",
        description="row-buffer miss rates under page and XOR mappings "
        "(2-channel DDR SDRAM, 8 banks)",
        headers=["mix", "page", "xor"],
        rows=_mapping_miss_rates(config, runner, names, "ddr"),
        notes="Expected shape: XOR reduces miss rates moderately; rates "
        "rise with the thread count and stay high for MEM mixes "
        "(few banks).",
    )


def figure9(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
) -> ExperimentResult:
    """Row-buffer miss rates on Direct Rambus (many banks) (Fig. 9)."""
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, all_mix_names())
    return ExperimentResult(
        name="Figure 9",
        description="row-buffer miss rates under page and XOR mappings "
        "(2-channel Direct Rambus, 32 banks/chip)",
        headers=["mix", "page", "xor"],
        rows=_mapping_miss_rates(config, runner, names, "rdram"),
        notes="Expected shape: with many independent banks the XOR "
        "mapping is considerably more effective than on DDR.",
    )


# ---------------------------------------------------------------------------
# Figure 10


def figure10(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
    schedulers: Sequence[str] = (
        "fcfs", "hit-first", "age-based",
        "request-based", "rob-based", "iq-based",
    ),
) -> ExperimentResult:
    """Thread-aware access scheduling (Figure 10).

    Weighted speedups for the single-thread-era policies (FCFS,
    hit-first, age-based) and the paper's three thread-aware schemes,
    normalized to FCFS.
    """
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, MEMORY_BOUND_MIXES)
    jobs = []
    for mix_name in names:
        for scheduler in schedulers:
            jobs.extend(
                _ws_jobs(runner, config.with_(scheduler=scheduler), MIXES[mix_name])
            )
    runner.run_many(jobs)
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        speedups = {}
        for scheduler in schedulers:
            speedups[scheduler] = runner.weighted_speedup(
                config.with_(scheduler=scheduler), mix
            )
        base = speedups[schedulers[0]] or 1.0
        rows.append((mix_name, *(speedups[s] / base for s in schedulers)))
    return ExperimentResult(
        name="Figure 10",
        description="DRAM access schedulers: WS normalized to FCFS",
        headers=["mix", *schedulers],
        rows=rows,
        notes="Expected shape: thread-aware schemes gain most on MEM "
        "mixes, with the request-based scheme strongest on 2-MEM.",
    )


# ---------------------------------------------------------------------------
# Section 5.1 text statistic (not a numbered figure)


def issue_coverage(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
    policies: Sequence[str] = ("icount", "dwarn"),
) -> ExperimentResult:
    """Integer-issue coverage under different fetch policies.

    Section 5.1 explains ICOUNT's loss on 8-MIX with this statistic:
    under DWarn the processor can issue at least one integer
    instruction during 92.2% of cycles; under ICOUNT only 43.8%.
    This driver reports the same measurement.
    """
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, ("8-MIX", "8-MEM", "4-MEM"))
    runner.run_many(
        [
            (config.with_(fetch_policy=policy), MIXES[m].apps)
            for m in names
            for policy in policies
        ]
    )
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        values = []
        for policy in policies:
            result = runner.run_mix(config.with_(fetch_policy=policy), mix)
            values.append(f"{100 * result.core.int_issue_coverage:.1f}%")
        rows.append((mix_name, *values))
    return ExperimentResult(
        name="Issue coverage (Section 5.1)",
        description="% of cycles with at least one integer instruction "
        "issued",
        headers=["mix", *policies],
        rows=rows,
        notes="Paper (8-MIX): 92.2% under DWarn vs 43.8% under ICOUNT.",
    )


# ---------------------------------------------------------------------------
# registry

ExperimentFn = Callable[..., ExperimentResult]

EXPERIMENTS: dict[str, ExperimentFn] = {
    "fig1": figure1,
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "coverage": issue_coverage,
}


def run_experiment(name: str, **kwargs) -> ExperimentResult:
    """Run a figure driver by registry name (e.g. ``"fig6"``)."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)
