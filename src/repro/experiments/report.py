"""Plain-text table rendering for experiment results.

Every figure driver returns structured rows; these helpers turn them
into aligned text tables (and simple ASCII bar charts) so the bench
harness can print output comparable to the paper's figures.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(format(value, floatfmt))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
        )
    return "\n".join(lines)


def format_bars(
    data: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render a label -> value mapping as an ASCII bar chart."""
    if not data:
        return "(no data)"
    peak = max(data.values()) or 1.0
    label_w = max(len(k) for k in data)
    lines = [title] if title else []
    for label, value in data.items():
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(
            f"{label:<{label_w}}  {format(value, floatfmt):>8}{unit} {bar}"
        )
    return "\n".join(lines)


def format_grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 30,
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render {group: {series: value}} as grouped ASCII bars."""
    if not groups:
        return "(no data)"
    peak = max(
        (v for series in groups.values() for v in series.values()), default=1.0
    ) or 1.0
    series_w = max(
        (len(s) for series in groups.values() for s in series), default=1
    )
    lines = [title] if title else []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            bar = "#" * max(0, int(round(width * value / peak)))
            lines.append(
                f"  {name:<{series_w}}  {format(value, floatfmt):>8} {bar}"
            )
    return "\n".join(lines)
