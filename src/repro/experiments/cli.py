"""Command-line interface: ``python -m repro <experiment>``.

Examples
--------
Run one figure at the default (paper Table 1) configuration::

    python -m repro fig6

Run quickly at a reduced instruction budget, on a subset of mixes::

    python -m repro fig10 --instructions 3000 --mixes 2-MEM 4-MEM

Run a single mix and print raw statistics::

    python -m repro mix 4-MEM --scheduler request-based
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.analysis.sanitizer import SimSanitizer
from repro.common.errors import JobFailureError
from repro.engine import ENGINE_NAMES
from repro.experiments.ablations import ABLATIONS
from repro.experiments.config import SystemConfig
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner, run_mix
from repro.faults import plan_from_env
from repro.telemetry import EventTracer, Telemetry
from repro.telemetry.manifest import (
    RunManifest,
    RunRecord,
    default_manifest_dir,
)
from repro.workloads.mixes import MIXES, all_mix_names


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--instructions", type=int, default=None,
        help="measured instructions per thread (default: config default)",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="warm-up instructions per thread",
    )
    parser.add_argument("--seed", type=int, default=None, help="random seed")
    parser.add_argument(
        "--scale", type=int, default=None,
        help="cache/footprint scale divisor (default 8)",
    )
    parser.add_argument(
        "--scheduler", default=None,
        help="DRAM scheduler (fcfs, read-first, hit-first, age-based, "
        "request-based, rob-based, iq-based, critical-first)",
    )
    parser.add_argument(
        "--fetch-policy", default=None,
        help="fetch policy (round-robin, icount, stall, dg, dwarn)",
    )
    parser.add_argument("--channels", type=int, default=None)
    parser.add_argument("--gang", type=int, default=None)
    parser.add_argument("--dram", choices=("ddr", "rdram"), default=None)
    parser.add_argument(
        "--mapping", choices=("page", "xor", "color-xor"), default=None
    )
    parser.add_argument("--page-mode", choices=("open", "close"), default=None)
    parser.add_argument(
        "--controller", choices=("request", "command"), default=None,
        help="DRAM controller model (request-level or command-level)",
    )
    parser.add_argument(
        "--vm", choices=("none", "bin-hopping", "page-coloring", "random"),
        default=None, help="virtual-memory page allocation policy",
    )
    parser.add_argument(
        "--engine", choices=ENGINE_NAMES, default=None,
        help="execution engine (fast: cycle-skipping kernel, the "
        "default; reference: the plain per-cycle loop; bit-identical "
        "by contract, enforced by 'engine-diff'; sampled: windowed "
        "statistical estimates, checked by 'engine-diff --candidate "
        "sampled --tolerance')",
    )
    parser.add_argument(
        "--sampling-detail", type=int, default=None, metavar="N",
        help="sampled engine: instructions measured per detailed window",
    )
    parser.add_argument(
        "--sampling-ff", type=int, default=None, metavar="N",
        help="sampled engine: instructions fast-forwarded between "
        "windows (pacing thread)",
    )
    parser.add_argument(
        "--sampling-warmup", type=int, default=None, metavar="N",
        help="sampled engine: detailed-but-discarded instructions after "
        "each fast-forward region",
    )
    parser.add_argument(
        "--sampling-smoothing", type=int, default=None, metavar="K",
        help="sampled engine: windows on each side of a gap whose mean "
        "CPI charges it",
    )


def _add_sanitize_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize", action="store_true",
        help="check protocol/accounting invariants throughout every "
        "simulation (observe-only: results are bit-identical; fails "
        "on any violation)",
    )


def _add_manifest_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--manifest-dir", default=None, metavar="PATH",
        help="directory for run manifests (default: $REPRO_MANIFEST_DIR "
        "or a stable directory under the system temp dir)",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent simulations (default 1: "
        "serial, the reproducible reference path)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persist simulation results under PATH and reuse them on "
        "later invocations (off by default)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget; a hung worker is killed and the "
        "job retried or the batch aborted (pooled execution only)",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry crashed/timed-out/transiently-failing jobs up to N "
        "times (default 0: fail fast)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted batch from its journal: jobs recorded "
        "complete are served from the result cache without re-simulating "
        "(requires --cache-dir; results are bit-identical to an "
        "uninterrupted run)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="crash-safe batch journal path (default with --resume: "
        "<cache-dir>/batch-journal.jsonl)",
    )
    parser.add_argument(
        "--remote", default=None, metavar="URL",
        help="run every simulation on a remote repro service at URL "
        "(see 'repro serve'); results are bit-identical to local runs",
    )
    parser.add_argument(
        "--remote-store", default=None, metavar="PATH",
        help="like --remote, discovering the URL from the server.json "
        "a running 'repro serve --store PATH' advertises there",
    )
    _add_sanitize_argument(parser)
    _add_manifest_argument(parser)


def _make_runner(args: argparse.Namespace) -> Runner:
    remote = getattr(args, "remote", None)
    remote_store = getattr(args, "remote_store", None)
    if remote or remote_store:
        from repro.service.client import ServiceClient, ServiceRunner

        return ServiceRunner(
            ServiceClient(url=remote, store_dir=remote_store)
        )
    jobs = getattr(args, "jobs", 1) or 1
    cache_dir = getattr(args, "cache_dir", None)
    sanitize = getattr(args, "sanitize", False)
    timeout = getattr(args, "timeout", None)
    retries = getattr(args, "retries", 0) or 0
    resume = getattr(args, "resume", False)
    journal = getattr(args, "journal", None)
    if resume and not cache_dir:
        raise SystemExit(
            "error: --resume needs --cache-dir (completed jobs are "
            "served from the persistent result cache)"
        )
    if journal is None and resume:
        journal = str(Path(cache_dir) / "batch-journal.jsonl")
    fault_plan = plan_from_env()
    engine_options = (
        jobs > 1 or cache_dir or timeout is not None or retries
        or journal or fault_plan is not None
    )
    if engine_options:
        return ParallelRunner(
            jobs=jobs,
            cache_dir=cache_dir,
            sanitize=sanitize,
            timeout_s=timeout,
            retries=retries,
            journal=journal,
            resume=resume,
            fault_plan=fault_plan,
        )
    return Runner(sanitize=sanitize)


def _config_from_args(args: argparse.Namespace) -> SystemConfig:
    overrides = {}
    mapping = {
        "instructions": "instructions_per_thread",
        "warmup": "warmup_instructions",
        "seed": "seed",
        "scale": "scale",
        "scheduler": "scheduler",
        "fetch_policy": "fetch_policy",
        "channels": "channels",
        "gang": "gang",
        "dram": "dram_type",
        "mapping": "mapping",
        "page_mode": "page_mode",
        "controller": "controller_model",
        "vm": "vm_policy",
        "engine": "engine",
    }
    for arg_name, field_name in mapping.items():
        value = getattr(args, arg_name, None)
        if value is not None:
            overrides[field_name] = value
    sampling_args = {
        "detail_instructions": getattr(args, "sampling_detail", None),
        "ff_instructions": getattr(args, "sampling_ff", None),
        "window_warmup": getattr(args, "sampling_warmup", None),
        "gap_smoothing": getattr(args, "sampling_smoothing", None),
    }
    if any(v is not None for v in sampling_args.values()):
        from repro.engine.sampled import SamplingParams

        overrides["sampling"] = SamplingParams(
            **{k: v for k, v in sampling_args.items() if v is not None}
        )
    return SystemConfig(**overrides)


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-smt-dram",
        description="Reproduction of Zhu & Zhang, 'A Performance Comparison "
        "of DRAM Memory System Optimizations for SMT Processors' (HPCA 2005)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn in {**EXPERIMENTS, **ABLATIONS}.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        p = sub.add_parser(name, help=doc)
        _add_config_arguments(p)
        _add_engine_arguments(p)
        p.add_argument(
            "--mixes", nargs="+", default=None,
            help=f"subset of workload mixes ({', '.join(all_mix_names())})",
        )
        p.add_argument(
            "--csv", default=None, metavar="PATH",
            help="also write the result rows as CSV",
        )

    p = sub.add_parser("mix", help="run one workload mix and print statistics")
    p.add_argument("mix_name", choices=all_mix_names())
    _add_config_arguments(p)
    _add_sanitize_argument(p)
    _add_manifest_argument(p)
    p.add_argument(
        "--telemetry", action="store_true",
        help="run with a live metric registry and print a summary",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="also record an event trace and write it to PATH",
    )
    p.add_argument(
        "--trace-format", choices=("chrome", "jsonl"), default="chrome",
        help="trace export format (chrome: open in ui.perfetto.dev)",
    )
    p.add_argument(
        "--trace-capacity", type=int, default=1 << 16, metavar="N",
        help="event ring-buffer size; oldest events drop beyond this",
    )

    p = sub.add_parser(
        "trace",
        help="run one mix with cycle-level event tracing and export it",
    )
    p.add_argument("mix_name", choices=all_mix_names())
    _add_config_arguments(p)
    _add_sanitize_argument(p)
    _add_manifest_argument(p)
    p.add_argument(
        "--trace-out", default="trace.json", metavar="PATH",
        help="output path (default trace.json)",
    )
    p.add_argument(
        "--trace-format", choices=("chrome", "jsonl"), default="chrome",
        help="trace export format (chrome: open in ui.perfetto.dev)",
    )
    p.add_argument(
        "--trace-capacity", type=int, default=1 << 16, metavar="N",
        help="event ring-buffer size; oldest events drop beyond this",
    )

    p = sub.add_parser("all", help="run every figure (full evaluation)")
    _add_config_arguments(p)
    _add_engine_arguments(p)
    p.add_argument("--mixes", nargs="+", default=None)

    p = sub.add_parser(
        "report",
        help="run experiments and write a markdown report",
    )
    _add_config_arguments(p)
    _add_engine_arguments(p)
    p.add_argument("--out", default="report.md", help="output path")
    p.add_argument(
        "--experiments", nargs="+", default=None,
        help="subset of experiment names (default: all figures)",
    )
    p.add_argument(
        "--ablations", action="store_true",
        help="include the ablation studies",
    )

    p = sub.add_parser(
        "engine-diff",
        help="differential engine oracle: run two engines over the "
        "fig10 sweep and fail on the first divergence (exact mode) or "
        "out-of-tolerance metric (bounded-error mode)",
    )
    _add_config_arguments(p)
    p.add_argument(
        "--mixes", nargs="+", default=None,
        help="subset of workload mixes to sweep (default: the fig10 "
        "memory-bound mixes)",
    )
    p.add_argument(
        "--schedulers", nargs="+", default=None,
        help="subset of DRAM schedulers to sweep (default: the fig10 "
        "scheduler set)",
    )
    p.add_argument(
        "--skip-variations", action="store_true",
        help="drop the extra mapping/page-mode/controller variation "
        "configs (useful when every configuration pays a reference run)",
    )
    p.add_argument(
        "--fail-fast", action="store_true",
        help="stop at the first diverging configuration (the CI mode)",
    )
    p.add_argument(
        "--baseline", default="reference", metavar="ENGINE",
        help="trusted engine to compare against (default: reference)",
    )
    p.add_argument(
        "--candidate", default="fast", metavar="ENGINE",
        help="engine under test (default: fast)",
    )
    p.add_argument(
        "--tolerance", type=float, default=None, metavar="REL",
        help="bounded-error mode: maximum relative aggregate-CPI error "
        "(implied at 0.02 when the candidate is 'sampled'; exact "
        "structural comparison otherwise)",
    )

    p = sub.add_parser(
        "lint",
        help="run the determinism linter (see repro.analysis)",
    )
    add_lint_arguments(p)

    from repro.service.cli import add_service_parsers

    add_service_parsers(sub)

    sub.add_parser("list", help="list experiments and workload mixes")
    return parser


def _print_runner_manifest(runner: Runner, args: argparse.Namespace) -> None:
    path = runner.write_manifest(getattr(args, "manifest_dir", None))
    print(f"[manifest: {path}]")
    journal = getattr(runner, "journal", None)
    if journal is not None:
        journal.record_event("batch-end")
        journal.close()
        print(f"[journal: {journal.path}]")


def _print_resilience_summary(runner: Runner) -> None:
    stats = runner.resilience
    if stats.eventful:
        c = stats.counters()
        print(
            "[resilience: "
            f"{c['resumed_jobs']} resumed, {c['retries']} retries, "
            f"{c['timeouts']} timeouts, {c['worker_crashes']} crashes, "
            f"{c['pool_rebuilds']} pool rebuilds, "
            f"{c['serial_fallbacks']} serial fallbacks]"
        )


def _batch_failure(runner: Runner, exc: JobFailureError) -> int:
    """Report an aborted batch; exit code 3 (resumable operational failure)."""
    print(f"error: {exc}", file=sys.stderr)
    journal = getattr(runner, "journal", None)
    if journal is not None:
        journal.close()
        print(
            f"[journal: {journal.path}] completed work is safe; "
            "rerun with --resume to continue from it",
            file=sys.stderr,
        )
    return 3


def _print_single_run_manifest(
    config: SystemConfig,
    apps: tuple[str, ...],
    telemetry: Telemetry | None,
    wall_time_s: float,
    args: argparse.Namespace,
) -> None:
    manifest = RunManifest(
        records=[
            RunRecord.from_run(config, apps, wall_time_s=wall_time_s)
        ],
        metrics=(
            telemetry.snapshot()
            if telemetry is not None and telemetry.registry.enabled
            else {}
        ),
        wall_time_s=wall_time_s,
    )
    directory = getattr(args, "manifest_dir", None) or default_manifest_dir()
    print(f"[manifest: {manifest.write(directory)}]")


def _maybe_sanitized_run(
    config: SystemConfig,
    apps: tuple[str, ...],
    telemetry: Telemetry | None,
    args: argparse.Namespace,
):
    """Run one mix, under a sanitizer when ``--sanitize`` was given.

    Returns ``(result, sanitizer)``; the sanitizer is ``None`` for
    plain runs.
    """
    if not getattr(args, "sanitize", False):
        return run_mix(config, apps, telemetry=telemetry), None
    sanitizer = SimSanitizer(
        tracer=telemetry.tracer if telemetry is not None else None
    )
    result = run_mix(config, apps, telemetry=telemetry, sanitizer=sanitizer)
    return result, sanitizer


def _run_figures(names: list[str], args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    runner = _make_runner(args)
    try:
        for name in names:
            start = time.perf_counter()
            kwargs = {"config": config, "runner": runner}
            if getattr(args, "mixes", None) and name != "fig1":
                kwargs["mixes"] = args.mixes
            if name in ABLATIONS:
                result = ABLATIONS[name](**kwargs)
            else:
                result = run_experiment(name, **kwargs)
            print(result.render())
            csv_path = getattr(args, "csv", None)
            if csv_path:
                result.save_csv(csv_path)
                print(f"[rows written to {csv_path}]")
            print(f"[{name} completed in {time.perf_counter() - start:.1f}s]")
            print()
    except JobFailureError as exc:
        return _batch_failure(runner, exc)
    _print_resilience_summary(runner)
    _print_runner_manifest(runner, args)
    return 0


def _run_engine_diff(args: argparse.Namespace) -> int:
    """The ``engine-diff`` oracle sweep; exit 0 only on zero divergence.

    Exit codes: 0 all configurations pass, 1 at least one divergence /
    tolerance violation, 2 unknown engine name.
    """
    from repro.engine.oracle import Tolerance, run_fig10_sweep, summarize

    baseline = getattr(args, "baseline", "reference")
    candidate = getattr(args, "candidate", "fast")
    for name in (baseline, candidate):
        if name not in ENGINE_NAMES:
            print(
                f"error: unknown engine {name!r}; choose from "
                f"{', '.join(sorted(ENGINE_NAMES))}",
                file=sys.stderr,
            )
            return 2
    tolerance = None
    tol_arg = getattr(args, "tolerance", None)
    if tol_arg is not None:
        tolerance = Tolerance(cpi=tol_arg)
    elif candidate == "sampled" or baseline == "sampled":
        # Sampled results are estimates; an exact comparison against
        # them is meaningless, so bounded-error mode is implied.
        tolerance = Tolerance()
    config = _config_from_args(args)
    start = time.perf_counter()
    reports = run_fig10_sweep(
        config=config,
        mixes=getattr(args, "mixes", None),
        progress=lambda report: print(report.render(), flush=True),
        fail_fast=args.fail_fast,
        schedulers=getattr(args, "schedulers", None),
        include_variations=not getattr(args, "skip_variations", False),
        baseline=baseline,
        candidate=candidate,
        tolerance=tolerance,
    )
    print(f"[swept {len(reports)} configurations "
          f"in {time.perf_counter() - start:.1f}s]")
    print(summarize(reports))
    return 0 if all(r.identical for r in reports) else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return run_lint(args)
    from repro.service.cli import SERVICE_COMMANDS, run_service_command

    if args.command in SERVICE_COMMANDS:
        return run_service_command(args)
    if args.command == "engine-diff":
        return _run_engine_diff(args)
    if args.command == "list":
        print("experiments:")
        for name, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<8} {doc}")
        print("\nablations:")
        for name, fn in ABLATIONS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<18} {doc}")
        print("\nworkload mixes (Table 2):")
        for name in all_mix_names():
            print(f"  {name:<6} {', '.join(MIXES[name].apps)}")
        return 0
    if args.command == "trace":
        config = _config_from_args(args)
        apps = MIXES[args.mix_name].apps
        tracer = EventTracer(capacity=args.trace_capacity)
        telemetry = Telemetry(tracer=tracer)
        start = time.perf_counter()
        result, sanitizer = _maybe_sanitized_run(
            config, apps, telemetry, args
        )
        wall = time.perf_counter() - start
        if args.trace_format == "chrome":
            tracer.write_chrome(args.trace_out)
        else:
            tracer.write_jsonl(args.trace_out)
        print(
            f"{args.mix_name}: {result.core.cycles} cycles, "
            f"{tracer.emitted} events recorded "
            f"({tracer.dropped} dropped by the ring buffer)"
        )
        print(f"[trace written to {args.trace_out} ({args.trace_format})]")
        _print_single_run_manifest(config, apps, telemetry, wall, args)
        if sanitizer is not None:
            print(sanitizer.report())
            if not sanitizer.ok:
                return 1
        return 0
    if args.command == "mix":
        config = _config_from_args(args)
        apps = MIXES[args.mix_name].apps
        tracer = (
            EventTracer(capacity=args.trace_capacity)
            if args.trace_out else None
        )
        telemetry = None
        if args.telemetry or tracer is not None:
            telemetry = Telemetry(tracer=tracer)
        start = time.perf_counter()
        result, sanitizer = _maybe_sanitized_run(
            config, apps, telemetry, args
        )
        wall = time.perf_counter() - start
        print(result.core)
        if result.dram is not None:
            stats = result.dram
            print(
                f"DRAM: {stats.reads} reads, {stats.writes} writes, "
                f"row-buffer hit rate {stats.row_hit_rate:.1%}, "
                f"avg read latency {stats.avg_read_latency:.0f} cycles"
            )
        h = result.hierarchy
        print(
            f"caches: L1D {h.l1d_hit_rate:.1%}, L2 {h.l2_hit_rate:.1%}, "
            f"L3 {h.l3_hit_rate:.1%} hit rates"
        )
        stalls = result.core.stall_cycles
        if stalls:
            total = sum(stalls.values())
            denominator = max(1, result.core.cycles * len(result.apps))
            detail = ", ".join(
                f"{k}={v}" for k, v in stalls.items() if v
            ) or "none"
            print(
                f"front-end stalls: {min(1.0, total / denominator):.1%} "
                f"of thread-cycles ({detail})"
            )
        print(
            f"issue coverage: {result.core.int_issue_coverage:.1%} of "
            f"cycles issued an integer op"
        )
        if telemetry is not None and args.telemetry:
            snap = telemetry.snapshot()
            print(
                f"telemetry: {len(snap['counters'])} counters, "
                f"{len(snap['gauges'])} gauges, "
                f"{len(snap['histograms'])} histograms, "
                f"{len(snap['series'])} series"
            )
        if tracer is not None:
            if args.trace_format == "chrome":
                tracer.write_chrome(args.trace_out)
            else:
                tracer.write_jsonl(args.trace_out)
            print(
                f"[trace written to {args.trace_out} ({args.trace_format})]"
            )
        _print_single_run_manifest(config, apps, telemetry, wall, args)
        if sanitizer is not None:
            print(sanitizer.report())
            if not sanitizer.ok:
                return 1
        return 0
    if args.command == "all":
        return _run_figures(list(EXPERIMENTS), args)
    if args.command == "report":
        from repro.experiments.reportgen import generate_report

        known = set(EXPERIMENTS) | set(ABLATIONS)
        unknown = [e for e in (args.experiments or []) if e not in known]
        if unknown:
            print(
                f"error: unknown experiment(s): {', '.join(unknown)}; "
                f"run 'list' to see what is available",
                file=sys.stderr,
            )
            return 2
        runner = _make_runner(args)
        try:
            text = generate_report(
                config=_config_from_args(args),
                experiments=args.experiments,
                include_ablations=args.ablations,
                runner=runner,
                progress=lambda name: print(f"running {name}..."),
            )
        except JobFailureError as exc:
            return _batch_failure(runner, exc)
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
        _print_resilience_summary(runner)
        _print_runner_manifest(runner, args)
        return 0
    return _run_figures([args.command], args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
