"""Parallel experiment engine with a persistent result cache.

Every figure of the paper fans out dozens of *independent*
``(config, apps)`` simulations.  This module turns that fan-out into
an explicit job list and executes it three ways, fastest first:

1. **In-process memo** — a plain dict shared with the owning
   :class:`~repro.experiments.runner.Runner`, so repeated requests
   inside one driver (and across drivers sharing a runner) are free.
2. **Persistent on-disk cache** — :class:`ResultCache` pickles each
   :class:`~repro.experiments.runner.MixResult` under a key derived
   from ``config.cache_key()``, the app tuple, and a schema version
   stamp.  Reruns of a figure sweep (or a different driver needing the
   same baselines) complete without simulating anything.
3. **Process pool** — remaining cache misses are deduplicated and
   fanned across a :class:`concurrent.futures.ProcessPoolExecutor`.
   Results are collected *by submission index*, never by completion
   order, so the output is deterministic and bit-identical to a serial
   run (each simulation is already deterministic given its config).

:class:`ParallelRunner` is a drop-in :class:`Runner` whose
``run_many`` uses the pool; ``jobs=1`` (the default everywhere) keeps
the exact serial behaviour, so existing workflows reproduce verbatim.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Sequence

from repro.experiments.config import SystemConfig
from repro.experiments.runner import MixResult, Runner, run_mix
from repro.telemetry import Telemetry

#: Bump whenever the meaning of cached results changes (simulator
#: semantics, MixResult schema, profile calibration, ...).  A bump
#: silently invalidates every previously written cache entry.
#: v2: MixResult grew the ``metrics`` telemetry-snapshot field.
CACHE_SCHEMA_VERSION = 2


def _simulate(config: SystemConfig, apps: tuple[str, ...]) -> MixResult:
    """Worker entry point (module-level so it pickles across the pool)."""
    return run_mix(config, apps)


def _simulate_with_metrics(
    config: SystemConfig, apps: tuple[str, ...]
) -> MixResult:
    """Worker entry point with a live metric registry per simulation.

    The registry snapshot travels back to the parent on
    ``MixResult.metrics`` (plain builtins, so it pickles), where the
    owning runner merges snapshots in submission order.
    """
    return run_mix(config, apps, telemetry=Telemetry())


class ResultCache:
    """Persistent, versioned store of :class:`MixResult` objects.

    Entries are one pickle file per job under ``cache_dir``, named by
    the SHA-256 of ``(version, config.cache_key(), apps)``.  Writes go
    through a per-pid temp file and :func:`os.replace`, so concurrent
    workers (or concurrent drivers sharing a cache directory) never
    observe a torn entry.  Corrupt or unreadable entries count as
    misses and are re-simulated, never raised.
    """

    def __init__(
        self, cache_dir: str | os.PathLike, version: int = CACHE_SCHEMA_VERSION
    ) -> None:
        self.cache_dir = Path(cache_dir).expanduser()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.version = version
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def path_for(self, config: SystemConfig, apps: Sequence[str]) -> Path:
        """Cache file path for one job (exposed for inspection/tests)."""
        key = (self.version, config.cache_key(), tuple(apps))
        digest = hashlib.sha256(repr(key).encode()).hexdigest()
        return self.cache_dir / f"{digest}.pkl"

    def get(self, config: SystemConfig, apps: Sequence[str]) -> MixResult | None:
        # Unpickling corrupt bytes can raise nearly anything (ValueError,
        # UnpicklingError, EOFError, ImportError, ...); any failure to
        # read an entry is by contract a miss, so catch broadly.
        try:
            with open(self.path_for(config, apps), "rb") as handle:
                result = pickle.load(handle)
        except Exception:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(
        self, config: SystemConfig, apps: Sequence[str], result: MixResult
    ) -> None:
        path = self.path_for(config, apps)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        # Counting only -- entry order cannot influence the result.
        return sum(1 for _ in self.cache_dir.glob("*.pkl"))  # repro: allow(DET006) count only

    def clear(self) -> None:
        for entry in sorted(self.cache_dir.glob("*.pkl")):
            try:
                entry.unlink()
            except OSError:
                pass


def run_many(
    jobs: Sequence,
    parallelism: int = 1,
    cache: ResultCache | None = None,
    memo: dict | None = None,
    collect_metrics: bool = False,
) -> list[MixResult]:
    """Run a list of ``(config, apps)`` jobs, in parallel where possible.

    Results are returned in job order.  Duplicate jobs (same config
    identity and apps) are simulated once; all layers — ``memo`` (an
    in-process dict keyed ``(config.cache_key(), apps)``), the
    persistent ``cache``, and the pool — are consulted in that order.
    ``parallelism=1`` runs everything serially in-process, which is
    bit-identical to the pooled path and is the deterministic default.
    ``collect_metrics`` gives each fresh simulation a live metric
    registry whose snapshot rides back on ``MixResult.metrics``.
    """
    normalized = [(config, tuple(apps)) for config, apps in jobs]
    results: list[MixResult | None] = [None] * len(normalized)
    indices_for: dict[tuple, list[int]] = {}
    todo: list[tuple[tuple, SystemConfig, tuple[str, ...]]] = []
    for i, (config, apps) in enumerate(normalized):
        key = (config.cache_key(), apps)
        if key in indices_for:  # duplicate of a miss seen earlier
            indices_for[key].append(i)
            continue
        cached = memo.get(key) if memo is not None else None
        if cached is None and cache is not None:
            cached = cache.get(config, apps)
            if cached is not None and memo is not None:
                memo[key] = cached
        if cached is not None:
            results[i] = cached
            continue
        indices_for[key] = [i]
        todo.append((key, config, apps))

    if todo:
        simulate = _simulate_with_metrics if collect_metrics else _simulate
        if parallelism > 1 and len(todo) > 1:
            workers = min(parallelism, len(todo))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(simulate, config, apps)
                    for _, config, apps in todo
                ]
                fresh = [future.result() for future in futures]
        else:
            fresh = [simulate(config, apps) for _, config, apps in todo]
        for (key, config, apps), result in zip(todo, fresh):
            if memo is not None:
                memo[key] = result
            if cache is not None:
                cache.put(config, apps, result)
            for i in indices_for[key]:
                results[i] = result
    return results  # fully populated; None only if a job list was empty


class ParallelRunner(Runner):
    """A :class:`Runner` that fans ``run_many`` across worker processes.

    Parameters
    ----------
    jobs:
        Worker-process count for :meth:`run_many` fan-outs.  ``1``
        (default) keeps everything serial and in-process.
    cache_dir:
        Directory for the persistent :class:`ResultCache`.  ``None``
        disables on-disk persistence (the in-process memo still
        applies).
    cache:
        An existing :class:`ResultCache` to share between runners;
        overrides ``cache_dir``.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
        baseline_multiplier: int = 3,
        cache: ResultCache | None = None,
        collect_metrics: bool = False,
        sanitize: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if cache is None and cache_dir is not None:
            cache = ResultCache(cache_dir)
        super().__init__(
            baseline_multiplier=baseline_multiplier,
            cache=cache,
            collect_metrics=collect_metrics,
            sanitize=sanitize,
        )
        self.jobs = jobs

    def run_many(self, jobs: Sequence) -> list[MixResult]:
        if self.sanitize:
            # Sanitized runs go through the serial path so each gets
            # its own in-process sanitizer that raises on violations
            # (workers started before a programmatic sanitize request
            # would not inherit it).  Sanitized output is bit-identical
            # to the pooled path, just slower.
            return Runner.run_many(self, jobs)
        normalized = [(config, tuple(apps)) for config, apps in jobs]
        already = set(self._results)
        start = time.perf_counter()
        results = run_many(
            normalized,
            parallelism=self.jobs,
            cache=self.cache,
            memo=self._results,
            collect_metrics=self.collect_metrics,
        )
        wall = time.perf_counter() - start
        # Provenance, in submission order.  The batched path cannot
        # distinguish a disk-cache hit from a pool simulation cheaply,
        # so anything not already memoized is recorded as served by
        # this batch; per-record wall time is the batch total split
        # evenly (indicative, not a measurement).
        new = [
            (config, apps) for config, apps in normalized
            if (config.cache_key(), apps) not in already
        ]
        per_run = wall / len(new) if new else 0.0
        batch_source = "pool" if self.jobs > 1 else "simulated"
        for config, apps in normalized:
            key = (config.cache_key(), apps)
            if key in already:
                self._record(config, apps, "memo")
            else:
                self._record(config, apps, batch_source, per_run)
        return results

    def manifest(self):
        m = super().manifest()
        m.workers = self.jobs
        return m
