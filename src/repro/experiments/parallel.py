"""Parallel experiment engine with a persistent result cache.

Every figure of the paper fans out dozens of *independent*
``(config, apps)`` simulations.  This module turns that fan-out into
an explicit job list and executes it three ways, fastest first:

1. **In-process memo** — a plain dict shared with the owning
   :class:`~repro.experiments.runner.Runner`, so repeated requests
   inside one driver (and across drivers sharing a runner) are free.
2. **Persistent on-disk cache** — :class:`ResultCache` pickles each
   :class:`~repro.experiments.runner.MixResult` under a key derived
   from ``config.cache_key()``, the app tuple, and a schema version
   stamp.  Reruns of a figure sweep (or a different driver needing the
   same baselines) complete without simulating anything.
3. **Process pool** — remaining cache misses are deduplicated and
   fanned across a :class:`concurrent.futures.ProcessPoolExecutor`.
   Results are collected *by submission index*, never by completion
   order, so the output is deterministic and bit-identical to a serial
   run (each simulation is already deterministic given its config).

:class:`ParallelRunner` is a drop-in :class:`Runner` whose
``run_many`` uses the pool; ``jobs=1`` (the default everywhere) keeps
the exact serial behaviour, so existing workflows reproduce verbatim.
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import os
import pickle
import sys
import threading
import time
from pathlib import Path
from typing import Sequence

from repro.experiments.config import SystemConfig
from repro.experiments.resilience import (
    BatchJournal,
    ResilienceStats,
    RetryPolicy,
    execute_jobs,
)
from repro.experiments.runner import MixResult, Runner, run_mix
from repro.faults import FaultPlan
from repro.telemetry import Telemetry
from repro.telemetry.manifest import run_id

log = logging.getLogger("repro.experiments.parallel")

#: ``*.tmp`` orphans older than this are removed on cache init; younger
#: ones may belong to a concurrent writer mid-``put`` and are left alone.
STALE_TMP_SECONDS = 3600.0

#: Bump whenever the meaning of cached results changes (simulator
#: semantics, MixResult schema, profile calibration, ...).  A bump
#: silently invalidates every previously written cache entry.
#: v2: MixResult grew the ``metrics`` telemetry-snapshot field.
CACHE_SCHEMA_VERSION = 2


def _interned_strings(dc):
    """A copy of dataclass ``dc`` with every string field re-interned.

    A config that crossed a process boundary holds fresh (unpickled)
    string objects, while a locally built one holds compile-time
    interned literals shared with the simulator internals.  The values
    are equal either way, but the *object sharing* differs, so pickles
    of the two results differ byte-wise.  Re-interning in the worker
    restores the sharing, making pooled cache/store writes
    byte-identical to serial ones.
    """
    changes = {
        f.name: sys.intern(value)
        for f in dataclasses.fields(dc)
        if isinstance(value := getattr(dc, f.name), str)
    }
    return dataclasses.replace(dc, **changes) if changes else dc


def _worker_job(
    config: SystemConfig, apps: tuple[str, ...]
) -> tuple[SystemConfig, tuple[str, ...]]:
    """Normalize an unpickled job in the worker (see _interned_strings)."""
    config = _interned_strings(config)
    if config.core is not None:
        config = dataclasses.replace(config, core=_interned_strings(config.core))
    return config, tuple(sys.intern(a) for a in apps)


def _simulate(config: SystemConfig, apps: tuple[str, ...]) -> MixResult:
    """Worker entry point (module-level so it pickles across the pool)."""
    return run_mix(*_worker_job(config, apps))


def _simulate_with_metrics(
    config: SystemConfig, apps: tuple[str, ...]
) -> MixResult:
    """Worker entry point with a live metric registry per simulation.

    The registry snapshot travels back to the parent on
    ``MixResult.metrics`` (plain builtins, so it pickles), where the
    owning runner merges snapshots in submission order.
    """
    config, apps = _worker_job(config, apps)
    return run_mix(config, apps, telemetry=Telemetry())


class ResultCache:
    """Persistent, versioned store of :class:`MixResult` objects.

    Entries are one pickle file per job under ``cache_dir``, named by
    the SHA-256 of ``(version, config.cache_key(), apps)``.  Writes go
    through a per-pid temp file that is fsynced before
    :func:`os.replace`, so neither concurrent workers nor a host crash
    can leave a torn or zero-length "valid" entry behind.

    An entry that cannot be read back — truncated pickle, garbage
    bytes, or a payload that is not a :class:`MixResult` of the
    expected shape — is *quarantined*: moved to
    ``cache_dir/quarantine/`` (so the next lookup doesn't pay to fail
    on it again), counted in ``corrupt`` (separately from ``misses``),
    and logged with its path.  Lookups still just return ``None``;
    corruption is never raised at the reader.
    """

    def __init__(
        self, cache_dir: str | os.PathLike, version: int = CACHE_SCHEMA_VERSION
    ) -> None:
        self.cache_dir = Path(cache_dir).expanduser()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.version = version
        self.hits = 0
        self.misses = 0
        #: Entries quarantined because they could not be decoded.
        self.corrupt = 0
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove ``*.tmp`` orphans left by crashed writers.

        Only files older than :data:`STALE_TMP_SECONDS` are removed: a
        young temp file may belong to a live concurrent ``put`` whose
        ``os.replace`` has not happened yet.
        """
        now = time.time()  # repro: allow(DET002) file-age housekeeping, not simulation
        for tmp in sorted(self.cache_dir.glob("*.tmp")):
            try:
                if now - tmp.stat().st_mtime > STALE_TMP_SECONDS:
                    tmp.unlink()
                    log.warning("removed stale cache temp file %s", tmp)
            except OSError:
                pass  # already gone, or unreadable -- leave it

    # ------------------------------------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        return self.cache_dir / "quarantine"

    def path_for(self, config: SystemConfig, apps: Sequence[str]) -> Path:
        """Cache file path for one job (exposed for inspection/tests)."""
        key = (self.version, config.cache_key(), tuple(apps))
        digest = hashlib.sha256(repr(key).encode()).hexdigest()
        return self.cache_dir / f"{digest}.pkl"

    def _quarantine(self, path: Path, reason: str) -> None:
        self.corrupt += 1
        target = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(exist_ok=True)
            os.replace(path, target)
        except OSError:
            # Lost a race (another reader quarantined it, or a writer
            # healed it); the warning below still records the sighting.
            target = path
        log.warning(
            "quarantined corrupt cache entry %s -> %s (%s); will re-simulate",
            path.name, target, reason,
        )

    def get(self, config: SystemConfig, apps: Sequence[str]) -> MixResult | None:
        path = self.path_for(config, apps)
        # Unpickling corrupt bytes can raise nearly anything (ValueError,
        # UnpicklingError, EOFError, ImportError, ...); any failure to
        # read an entry means re-simulating, never raising.
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as exc:
            self._quarantine(path, f"{type(exc).__name__}: {exc}")
            return None
        if not self._valid_payload(result):
            self._quarantine(
                path, f"payload is {type(result).__name__}, not a MixResult"
            )
            return None
        self.hits += 1
        return result

    @staticmethod
    def _valid_payload(result: object) -> bool:
        """Schema check: only a well-formed :class:`MixResult` may escape.

        A wrong-type payload (hand-edited file, version skew, a pickle
        of something else entirely) would otherwise propagate into
        figure drivers and corrupt their output silently.
        """
        return (
            isinstance(result, MixResult)
            and isinstance(getattr(result, "apps", None), tuple)
            and getattr(result, "core", None) is not None
            and getattr(result, "hierarchy", None) is not None
        )

    def put(
        self, config: SystemConfig, apps: Sequence[str], result: MixResult
    ) -> bool:
        """Persist ``result``; returns whether this call published it.

        All writes go through :meth:`publish_path` (atomic first-writer-
        wins compare-and-publish), so two runners sharing a ``cache_dir``
        but not an in-process memo cannot race on the same key: each
        writer stages a privately named temp file and the first
        hard-link into place wins, the loser discards its
        (bit-identical) bytes.
        """
        return self.publish_path(
            self.path_for(config, apps),
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def publish_path(self, path: Path, data: bytes) -> bool:
        """Atomically publish ``data`` at ``path``; first writer wins.

        The temp file is named by pid *and* thread id: two threads of
        one process (two runners sharing a cache_dir, a scheduler next
        to an API worker) stage to different files instead of
        interleaving writes into one.  The staged file is then
        hard-linked into place — link(2) fails if the name already
        exists, so of any number of racing writers *exactly one*
        observes success, with no check-then-act window.  An existing
        entry is left untouched — every writer of a key produces the
        same deterministic bytes, so the loser just drops its copy;
        readers only ever observe a complete entry either way.
        Returns True when this call installed the entry.
        """
        if path.exists():
            return False
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        with open(tmp, "wb") as handle:
            handle.write(data)
            # Without the fsync a host crash can surface the rename but
            # not the data, leaving a zero-length entry that passes the
            # atomic-replace contract while holding nothing.
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(tmp, path)
            published = True
        except FileExistsError:
            published = False
        except OSError:  # pragma: no cover - fs without hard links
            # Degrade to replace: content is still atomic and correct,
            # only the exactly-one-True return is best-effort here.
            published = not path.exists()
            if published:
                os.replace(tmp, path)
                return True
        try:
            tmp.unlink()
        except OSError:  # pragma: no cover - already swept
            pass
        return published

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        # Counting only -- entry order cannot influence the result.
        return sum(1 for _ in self.cache_dir.glob("*.pkl"))  # repro: allow(DET006) count only

    def clear(self) -> None:
        for entry in sorted(self.cache_dir.glob("*.pkl")):
            try:
                entry.unlink()
            except OSError:
                pass


def run_many(
    jobs: Sequence,
    parallelism: int = 1,
    cache: ResultCache | None = None,
    memo: dict | None = None,
    collect_metrics: bool = False,
    policy: RetryPolicy | None = None,
    journal: BatchJournal | None = None,
    stats: ResilienceStats | None = None,
    fault_plan: FaultPlan | None = None,
) -> list[MixResult]:
    """Run a list of ``(config, apps)`` jobs, in parallel where possible.

    Results are returned in job order.  Duplicate jobs (same config
    identity and apps) are simulated once; all layers — ``memo`` (an
    in-process dict keyed ``(config.cache_key(), apps)``), the
    persistent ``cache``, and the pool — are consulted in that order.
    ``parallelism=1`` runs everything serially in-process, which is
    bit-identical to the pooled path and is the deterministic default.
    ``collect_metrics`` gives each fresh simulation a live metric
    registry whose snapshot rides back on ``MixResult.metrics``.

    Fresh simulations execute through the fault-tolerant executor
    (:func:`repro.experiments.resilience.execute_jobs`): ``policy``
    adds per-job timeouts, bounded retries, and broken-pool recovery;
    ``journal`` makes the batch crash-safe and resumable (a job
    journaled complete on a previous, interrupted invocation is served
    from the cache without re-simulating); ``stats`` accumulates
    retry/timeout/crash counters; ``fault_plan`` deterministically
    injects failures (chaos testing).  Each fresh result is memoized
    and written to the cache *as it completes* — before its journal
    line — so an interruption at any point loses at most in-flight
    work.  Unrecoverable failures raise
    :class:`~repro.common.errors.BatchAborted` (or its timeout/crash
    refinements) carrying the failing job's identity.
    """
    normalized = [(config, tuple(apps)) for config, apps in jobs]
    results: list[MixResult | None] = [None] * len(normalized)
    indices_for: dict[tuple, list[int]] = {}
    todo: list[tuple[tuple, SystemConfig, tuple[str, ...]]] = []
    for i, (config, apps) in enumerate(normalized):
        key = (config.cache_key(), apps)
        if key in indices_for:  # duplicate of a miss seen earlier
            indices_for[key].append(i)
            continue
        cached = memo.get(key) if memo is not None else None
        if cached is None and cache is not None:
            cached = cache.get(config, apps)
            if cached is not None and memo is not None:
                memo[key] = cached
            if cached is not None and journal is not None and stats is not None:
                # A journaled-complete job resumed from the cache: the
                # whole point of --resume.  (A cache hit without a
                # journal entry is ordinary cross-run reuse.)
                if journal.completed(run_id(config, apps)):
                    stats.resumed_jobs += 1
        if cached is not None:
            results[i] = cached
            continue
        indices_for[key] = [i]
        todo.append((key, config, apps))

    if todo:
        simulate = _simulate_with_metrics if collect_metrics else _simulate

        def persist(todo_index: int, result: MixResult) -> None:
            key, config, apps = todo[todo_index]
            if memo is not None:
                memo[key] = result
            if cache is not None:
                cache.put(config, apps, result)

        fresh = execute_jobs(
            [(config, apps) for _, config, apps in todo],
            simulate,
            parallelism=parallelism,
            policy=policy,
            journal=journal,
            stats=stats,
            fault_plan=fault_plan,
            on_complete=persist,
        )
        for (key, _, _), result in zip(todo, fresh):
            for i in indices_for[key]:
                results[i] = result
    return results  # fully populated; None only if a job list was empty


class ParallelRunner(Runner):
    """A :class:`Runner` that fans ``run_many`` across worker processes.

    Parameters
    ----------
    jobs:
        Worker-process count for :meth:`run_many` fan-outs.  ``1``
        (default) keeps everything serial and in-process.
    cache_dir:
        Directory for the persistent :class:`ResultCache`.  ``None``
        disables on-disk persistence (the in-process memo still
        applies).
    cache:
        An existing :class:`ResultCache` to share between runners;
        overrides ``cache_dir``.
    timeout_s / retries / backoff_s / max_pool_rebuilds:
        Fault-tolerance policy for batch execution (see
        :class:`~repro.experiments.resilience.RetryPolicy`); alternatively
        pass a full ``retry_policy``.
    journal:
        Path of a crash-safe batch journal (or an existing
        :class:`~repro.experiments.resilience.BatchJournal`).  With
        ``resume=True`` an existing journal is loaded and completed
        jobs are served from the cache without re-simulating;
        otherwise the journal is started fresh.
    fault_plan:
        A :class:`repro.faults.FaultPlan` injected into every batch
        (chaos testing only).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
        baseline_multiplier: int = 3,
        cache: ResultCache | None = None,
        collect_metrics: bool = False,
        sanitize: bool = False,
        timeout_s: float | None = None,
        retries: int = 0,
        backoff_s: float = 0.0,
        max_pool_rebuilds: int = 2,
        retry_policy: RetryPolicy | None = None,
        journal: BatchJournal | str | os.PathLike | None = None,
        resume: bool = False,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if cache is None and cache_dir is not None:
            cache = ResultCache(cache_dir)
        if retry_policy is None:
            retry_policy = RetryPolicy(
                retries=retries,
                timeout_s=timeout_s,
                backoff_base_s=backoff_s,
                max_pool_rebuilds=max_pool_rebuilds,
            )
        if journal is not None and not isinstance(journal, BatchJournal):
            journal = BatchJournal(journal, resume=resume)
        super().__init__(
            baseline_multiplier=baseline_multiplier,
            cache=cache,
            collect_metrics=collect_metrics,
            sanitize=sanitize,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
            journal=journal,
        )
        self.jobs = jobs

    def run_many(self, jobs: Sequence) -> list[MixResult]:
        if self.sanitize:
            # Sanitized runs go through the serial path so each gets
            # its own in-process sanitizer that raises on violations
            # (workers started before a programmatic sanitize request
            # would not inherit it).  Sanitized output is bit-identical
            # to the pooled path, just slower.
            return Runner.run_many(self, jobs)
        normalized = [(config, tuple(apps)) for config, apps in jobs]
        already = set(self._results)
        start = time.perf_counter()
        results = run_many(
            normalized,
            parallelism=self.jobs,
            cache=self.cache,
            memo=self._results,
            collect_metrics=self.collect_metrics,
            policy=self.retry_policy,
            journal=self.journal,
            stats=self.resilience,
            fault_plan=self.fault_plan,
        )
        wall = time.perf_counter() - start
        # Provenance, in submission order.  The batched path cannot
        # distinguish a disk-cache hit from a pool simulation cheaply,
        # so anything not already memoized is recorded as served by
        # this batch; per-record wall time is the batch total split
        # evenly (indicative, not a measurement).
        new = [
            (config, apps) for config, apps in normalized
            if (config.cache_key(), apps) not in already
        ]
        per_run = wall / len(new) if new else 0.0
        batch_source = "pool" if self.jobs > 1 else "simulated"
        for config, apps in normalized:
            key = (config.cache_key(), apps)
            if key in already:
                self._record(config, apps, "memo")
            else:
                self._record(config, apps, batch_source, per_run)
        return results

    def manifest(self):
        m = super().manifest()
        m.workers = self.jobs
        return m


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "BatchJournal",
    "ParallelRunner",
    "ResilienceStats",
    "ResultCache",
    "RetryPolicy",
    "run_many",
]
