"""Memory-only, trace-driven simulation.

For studies of the memory system in isolation (mapping schemes,
schedulers, page modes) the full SMT core is unnecessary overhead:
this driver replays per-thread memory-access traces directly against
the cache hierarchy and DRAM model, issuing each thread's next access
as soon as its previous one is ``issue_gap`` cycles old or its data
returned (a simple closed-loop injection model with configurable
memory-level parallelism per thread).

This is how classic DRAM-scheduler studies (Rixner et al., and the
paper's own references [13, 34]) evaluate controllers, and runs an
order of magnitude faster than the full-system simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.cache.hierarchy import (
    PENDING,
    RETRY,
    MemoryHierarchy,
)
from repro.dram.stats import DRAMStats
from repro.experiments.config import SystemConfig
from repro.experiments.runner import build_system  # noqa: F401 (doc link)
from repro.dram.system import MemorySystem


@dataclass
class TraceRunResult:
    """Outcome of one trace-driven memory run."""

    accesses_issued: int
    cycles: int
    dram: DRAMStats
    avg_load_latency: float

    @property
    def accesses_per_kilocycle(self) -> float:
        return 1000.0 * self.accesses_issued / self.cycles if self.cycles else 0.0


class TraceDrivenMemory:
    """Closed-loop injector replaying memory traces into the hierarchy.

    Parameters
    ----------
    config:
        Supplies the memory-system configuration (DRAM type, channels,
        mapping, scheduler, page mode, controller model, MSHRs, scale).
        Core-side fields are ignored.
    parallelism:
        Outstanding accesses each thread keeps in flight (its MLP).
    issue_gap:
        Minimum cycles between a thread's consecutive issues, modelling
        the compute between memory operations.
    """

    def __init__(
        self,
        config: SystemConfig,
        parallelism: int = 4,
        issue_gap: int = 4,
    ) -> None:
        if parallelism < 1:
            raise ConfigError(f"parallelism must be >= 1, got {parallelism}")
        if issue_gap < 0:
            raise ConfigError(f"issue_gap must be >= 0, got {issue_gap}")
        self.config = config
        self.parallelism = parallelism
        self.issue_gap = issue_gap
        self.event_queue = EventQueue()
        if config.dram_type == "ddr":
            self.memory = MemorySystem.ddr(
                self.event_queue,
                channels=config.channels,
                gang=config.gang,
                mapping=config.mapping,
                page_mode=config.page_mode_enum,
                scheduler=config.scheduler,
                controller_model=config.controller_model,
            )
        else:
            self.memory = MemorySystem.rdram(
                self.event_queue,
                channels=config.channels,
                gang=config.gang,
                mapping=config.mapping,
                page_mode=config.page_mode_enum,
                scheduler=config.scheduler,
                controller_model=config.controller_model,
            )
        self.hierarchy = MemoryHierarchy(
            config.hierarchy_params(), self.event_queue, self.memory
        )
        self._traces: list[list[tuple[int, bool]]] = []
        self._positions: list[int] = []
        self._issued = 0
        self._load_latency_sum = 0
        self._loads_completed = 0

    # ------------------------------------------------------------------

    def run(
        self,
        traces: Sequence[Sequence[tuple[int, bool]]],
        max_cycles: int = 10_000_000,
    ) -> TraceRunResult:
        """Replay one (address, is_store) trace per thread to completion."""
        if not traces or any(not t for t in traces):
            raise ConfigError("every thread needs a non-empty trace")
        self._traces = [list(t) for t in traces]
        self._positions = [0] * len(traces)
        for tid in range(len(traces)):
            for _ in range(self.parallelism):
                self.event_queue.schedule(
                    self.issue_gap, self._issue_next, tid
                )
        # Drain: each completion schedules the next issue, so running
        # the queue dry completes every trace.
        end = self.event_queue.run_all(limit=50_000_000)
        if end > max_cycles:
            raise ConfigError(
                f"trace run exceeded max_cycles ({end} > {max_cycles})"
            )
        stats = self.memory.finish()
        avg = (
            self._load_latency_sum / self._loads_completed
            if self._loads_completed
            else 0.0
        )
        return TraceRunResult(
            accesses_issued=self._issued,
            cycles=end,
            dram=stats,
            avg_load_latency=avg,
        )

    # ------------------------------------------------------------------

    def _issue_next(self, thread_id: int) -> None:
        position = self._positions[thread_id]
        trace = self._traces[thread_id]
        if position >= len(trace):
            return
        now = self.event_queue.now
        addr, is_store = trace[position]
        if is_store:
            self._positions[thread_id] = position + 1
            self._issued += 1
            self.hierarchy.store(addr, thread_id, now)
            self.event_queue.schedule(
                now + self.issue_gap, self._issue_next, thread_id
            )
            return
        issue_time = now

        def on_done(finish: int) -> None:
            self._load_latency_sum += finish - issue_time
            self._loads_completed += 1
            self.event_queue.schedule(
                max(finish, self.event_queue.now) + self.issue_gap,
                self._issue_next,
                thread_id,
            )

        result = self.hierarchy.load(
            addr, thread_id, now, callback=on_done
        )
        if result is RETRY:
            self.event_queue.schedule(now + 8, self._issue_next, thread_id)
            return
        self._positions[thread_id] = position + 1
        self._issued += 1
        if result is not PENDING:
            # hierarchy hit with a known completion time
            self._load_latency_sum += result - issue_time
            self._loads_completed += 1
            self.event_queue.schedule(
                result + self.issue_gap, self._issue_next, thread_id
            )
