"""Generic parameter sweeps over :class:`SystemConfig` fields.

The figure drivers cover the paper's evaluation; this module is the
general tool behind them for exploring *other* points: build a grid of
configurations from named axes, run a workload on each, and collect
any set of measurements into rows ready for
:func:`repro.experiments.report.format_table` or CSV export.

Example
-------
>>> from repro.experiments.sweep import Sweep           # doctest: +SKIP
>>> sweep = Sweep(base_config, axes={
...     "channels": [2, 4, 8],
...     "scheduler": ["fcfs", "request-based"],
... })
>>> rows = sweep.run(["mcf", "ammp"], metrics={
...     "ws": lambda r, ctx: ctx.weighted_speedup(r),
...     "row_miss": lambda r, ctx: r.row_buffer_miss_rate,
... })
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.common.errors import ConfigError
from repro.experiments.config import SystemConfig
from repro.experiments.runner import MixResult, Runner


@dataclass
class SweepPoint:
    """One evaluated grid point."""

    overrides: dict
    config: SystemConfig
    result: MixResult
    metrics: dict = field(default_factory=dict)

    def as_row(self, axis_names: Sequence[str]) -> tuple:
        return tuple(
            [self.overrides[name] for name in axis_names]
            + list(self.metrics.values())
        )


class _MetricContext:
    """Handed to metric callables so they can reach shared baselines."""

    def __init__(self, runner: Runner, config: SystemConfig, apps):
        self.runner = runner
        self.config = config
        self.apps = tuple(apps)

    def weighted_speedup(self, result: MixResult) -> float:
        return self.runner.weighted_speedup(self.config, self.apps, result)


MetricFn = Callable[[MixResult, _MetricContext], float]


class Sweep:
    """Cartesian-product sweep over config fields.

    Parameters
    ----------
    base_config:
        Starting configuration; each grid point replaces the axis
        fields via :meth:`SystemConfig.with_`.
    axes:
        Mapping of field name -> list of values.  Field names must be
        valid ``SystemConfig`` fields (checked eagerly).
    runner:
        Optional shared :class:`Runner` (reuses cached single-thread
        baselines across points).
    """

    def __init__(
        self,
        base_config: SystemConfig,
        axes: Mapping[str, Sequence],
        runner: Runner | None = None,
    ) -> None:
        if not axes:
            raise ConfigError("at least one sweep axis is required")
        valid_fields = set(SystemConfig.__dataclass_fields__)
        for name, values in axes.items():
            if name not in valid_fields:
                raise ConfigError(
                    f"unknown SystemConfig field {name!r}; "
                    f"valid: {sorted(valid_fields)}"
                )
            if not values:
                raise ConfigError(f"axis {name!r} has no values")
        self.base_config = base_config
        self.axes = {name: list(values) for name, values in axes.items()}
        self.runner = runner or Runner()

    @property
    def axis_names(self) -> list[str]:
        return list(self.axes)

    def grid(self) -> list[dict]:
        """All override combinations, in deterministic axis order."""
        names = self.axis_names
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*self.axes.values())
        ]

    def run(
        self,
        apps: Sequence[str],
        metrics: Mapping[str, MetricFn] | None = None,
    ) -> list[SweepPoint]:
        """Run the workload at every grid point and collect metrics.

        Without ``metrics``, each point records weighted speedup and
        throughput.
        """
        want_baselines = metrics is None
        if metrics is None:
            metrics = {
                "weighted_speedup": lambda r, ctx: ctx.weighted_speedup(r),
                "throughput": lambda r, ctx: r.throughput,
            }
        grid = self.grid()
        apps = tuple(apps)
        # Submit the whole grid up front (plus, for the default metric
        # set, the baselines its weighted-speedup column will ask for);
        # a parallel runner fans these out, a serial one just warms its
        # cache.  Custom metrics that call ctx.weighted_speedup still
        # work — their baselines run lazily through the same cache.
        jobs = []
        for overrides in grid:
            config = self.base_config.with_(**overrides)
            jobs.append((config, apps))
            if want_baselines:
                jobs.extend(
                    self.runner.baseline_job(config, app) for app in apps
                )
        self.runner.run_many(jobs)
        points = []
        for overrides in grid:
            config = self.base_config.with_(**overrides)
            result = self.runner.run_mix(config, apps)
            context = _MetricContext(self.runner, config, apps)
            values = {
                name: fn(result, context) for name, fn in metrics.items()
            }
            points.append(
                SweepPoint(
                    overrides=overrides,
                    config=config,
                    result=result,
                    metrics=values,
                )
            )
        return points

    def table(
        self,
        apps: Sequence[str],
        metrics: Mapping[str, MetricFn] | None = None,
    ) -> tuple[list[str], list[tuple]]:
        """Run the sweep and return (headers, rows) for reporting."""
        points = self.run(apps, metrics)
        metric_names = list(points[0].metrics) if points else []
        headers = self.axis_names + metric_names
        rows = [point.as_row(self.axis_names) for point in points]
        return headers, rows
