"""Experiment harness: configurations, runners, and per-figure drivers.

* :mod:`repro.experiments.config` -- :class:`SystemConfig`, one object
  describing a complete simulated system (Table 1 defaults).
* :mod:`repro.experiments.runner` -- build-and-run plumbing with
  caching of single-thread baselines for weighted-speedup metrics.
* :mod:`repro.experiments.figures` -- one driver per paper figure
  (``figure1()`` ... ``figure10()``), each returning structured rows
  and able to print a paper-style table.
"""

from repro.experiments.config import SystemConfig
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.runner import (
    MixResult,
    Runner,
    run_mix,
    run_single,
)

__all__ = [
    "EXPERIMENTS",
    "MixResult",
    "Runner",
    "SystemConfig",
    "run_experiment",
    "run_mix",
    "run_single",
]
