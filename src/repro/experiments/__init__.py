"""Experiment harness: configurations, runners, and per-figure drivers.

* :mod:`repro.experiments.config` -- :class:`SystemConfig`, one object
  describing a complete simulated system (Table 1 defaults).
* :mod:`repro.experiments.runner` -- build-and-run plumbing with
  caching of single-thread baselines for weighted-speedup metrics.
* :mod:`repro.experiments.figures` -- one driver per paper figure
  (``figure1()`` ... ``figure10()``), each returning structured rows
  and able to print a paper-style table.
* :mod:`repro.experiments.parallel` -- :class:`ParallelRunner` (a
  process-pool :class:`Runner`) and :class:`ResultCache` (a persistent
  on-disk store of simulation results).
* :mod:`repro.experiments.resilience` -- fault-tolerant batch
  execution: :class:`RetryPolicy` (timeouts/retries/pool recovery),
  :class:`BatchJournal` (crash-safe resume), and
  :class:`ResilienceStats` (what a batch survived).
"""

from repro.experiments.config import SystemConfig
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.parallel import ParallelRunner, ResultCache
from repro.experiments.resilience import (
    BatchJournal,
    ResilienceStats,
    RetryPolicy,
)
from repro.experiments.runner import (
    MixResult,
    Runner,
    run_mix,
    run_single,
)

__all__ = [
    "BatchJournal",
    "EXPERIMENTS",
    "MixResult",
    "ParallelRunner",
    "ResilienceStats",
    "ResultCache",
    "RetryPolicy",
    "Runner",
    "SystemConfig",
    "run_experiment",
    "run_mix",
    "run_single",
]
