"""Ablation studies beyond the paper's figures.

DESIGN.md documents several modelling choices; each ablation quantifies
one of them so users can see what the choice costs or buys:

* :func:`page_mode_ablation` -- open vs close page mode (Section 2
  describes both; the paper evaluates open page).
* :func:`mshr_ablation` -- MSHR capacity vs performance (DESIGN.md's
  combined-32-entry substitution).
* :func:`scheduler_mapping_ablation` -- do access scheduling and the
  XOR mapping compose?
* :func:`color_mapping_ablation` -- the thread-color mapping extension
  (Section 5.4 suggests mapping research that considers inter-thread
  conflicts).
* :func:`critical_scheduler_ablation` -- the criticality-based policy
  of Section 3.1 against the paper's evaluated schemes.

All return :class:`~repro.experiments.figures.ExperimentResult` so the
same rendering/export paths apply.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import SystemConfig
from repro.experiments.figures import ExperimentResult, _mix_names, _ws_jobs
from repro.experiments.runner import Runner
from repro.workloads.mixes import MIXES

_DEFAULT_MIXES = ("2-MEM", "4-MEM")


def page_mode_ablation(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
) -> ExperimentResult:
    """Open vs close page mode: WS and row-buffer miss rates."""
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, _DEFAULT_MIXES)
    runner.run_many(
        [
            job
            for m in names
            for mode in ("open", "close")
            for job in _ws_jobs(runner, config.with_(page_mode=mode), MIXES[m])
        ]
    )
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        values = []
        for mode in ("open", "close"):
            cfg = config.with_(page_mode=mode)
            result = runner.run_mix(cfg, mix)
            values.append(runner.weighted_speedup(cfg, mix, result))
        rows.append((mix_name, *values))
    return ExperimentResult(
        name="Ablation: page mode",
        description="weighted speedup under open vs close page modes",
        headers=["mix", "open", "close"],
        rows=rows,
        notes="Open page exploits row-buffer locality; close page "
        "removes the precharge from the conflict path.",
    )


def mshr_ablation(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
    capacities: Sequence[int] = (4, 16, 32, 64),
) -> ExperimentResult:
    """Performance vs MSHR capacity (memory-level-parallelism cap)."""
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, _DEFAULT_MIXES)
    runner.run_many(
        [
            (config.with_(mshr_entries=n), MIXES[m].apps)
            for m in names
            for n in capacities
        ]
    )
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        # Throughput, not weighted speedup: the WS baselines would
        # shift with the MSHR count and cancel the effect under study.
        values = [
            runner.run_mix(config.with_(mshr_entries=n), mix).throughput
            for n in capacities
        ]
        rows.append((mix_name, *values))
    return ExperimentResult(
        name="Ablation: MSHR capacity",
        description="aggregate IPC vs outstanding-miss capacity",
        headers=["mix", *(f"mshr={n}" for n in capacities)],
        rows=rows,
        notes="Throughput should rise with capacity and saturate; "
        "see DESIGN.md on the combined 32-entry default.",
    )


def scheduler_mapping_ablation(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
) -> ExperimentResult:
    """Interaction grid: {fcfs, hit-first} x {page, xor}."""
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, _DEFAULT_MIXES)
    combos = [
        (scheduler, mapping)
        for scheduler in ("fcfs", "hit-first")
        for mapping in ("page", "xor")
    ]
    runner.run_many(
        [
            job
            for m in names
            for scheduler, mapping in combos
            for job in _ws_jobs(
                runner,
                config.with_(scheduler=scheduler, mapping=mapping),
                MIXES[m],
            )
        ]
    )
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        values = []
        for scheduler, mapping in combos:
            cfg = config.with_(scheduler=scheduler, mapping=mapping)
            values.append(runner.weighted_speedup(cfg, mix))
        rows.append((mix_name, *values))
    return ExperimentResult(
        name="Ablation: scheduler x mapping",
        description="weighted speedup for scheduler/mapping combinations",
        headers=["mix", *(f"{s}+{m}" for s, m in combos)],
        rows=rows,
        notes="Hit-first exploits the locality the XOR mapping "
        "preserves; the combination should be at least as good as "
        "either alone.",
    )


def color_mapping_ablation(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
) -> ExperimentResult:
    """Row-buffer miss rates of page / xor / color-xor mappings."""
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, ("4-MEM", "8-MEM"))
    runner.run_many(
        [
            (config.with_(mapping=mapping), MIXES[m].apps)
            for m in names
            for mapping in ("page", "xor", "color-xor")
        ]
    )
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        values = []
        for mapping in ("page", "xor", "color-xor"):
            result = runner.run_mix(config.with_(mapping=mapping), mix)
            values.append(f"{100 * result.row_buffer_miss_rate:.1f}%")
        rows.append((mix_name, *values))
    return ExperimentResult(
        name="Ablation: thread-color mapping",
        description="row-buffer miss rates; color-xor folds thread bits "
        "into the bank permutation (extension)",
        headers=["mix", "page", "xor", "color-xor"],
        rows=rows,
        notes="Section 5.4 calls for mappings that consider conflicts "
        "from multiple threads; color-xor is one such candidate.",
    )


def vm_policy_ablation(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
) -> ExperimentResult:
    """OS page-allocation policies (Section 5.4's suggested direction).

    Compares the generator's native disjoint address spaces ("none")
    with real translation layers: bin hopping (what the paper's
    simulation uses), page coloring (banks partitioned between
    threads), and random allocation.  Reports row-buffer miss rate and
    weighted speedup.
    """
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, ("4-MEM",))
    policies = ("none", "bin-hopping", "page-coloring", "random")
    runner.run_many(
        [
            job
            for m in names
            for policy in policies
            for job in _ws_jobs(runner, config.with_(vm_policy=policy), MIXES[m])
        ]
    )
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        values = []
        for policy in policies:
            cfg = config.with_(vm_policy=policy)
            result = runner.run_mix(cfg, mix)
            ws = runner.weighted_speedup(cfg, mix, result)
            values.append(
                f"{ws:.3f}/{100 * result.row_buffer_miss_rate:.0f}%"
            )
        rows.append((mix_name, *values))
    return ExperimentResult(
        name="Ablation: VM page allocation",
        description="WS / row-buffer miss rate per allocation policy",
        headers=["mix", *policies],
        rows=rows,
        notes="Page coloring partitions DRAM banks between threads; "
        "Section 5.4 suggests exactly this direction for reducing "
        "inter-thread row conflicts.",
    )


def critical_scheduler_ablation(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
) -> ExperimentResult:
    """The criticality-based policy against the paper's schemes."""
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, _DEFAULT_MIXES)
    schedulers = ("fcfs", "hit-first", "request-based", "critical-first")
    runner.run_many(
        [
            job
            for m in names
            for s in schedulers
            for job in _ws_jobs(runner, config.with_(scheduler=s), MIXES[m])
        ]
    )
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        speedups = [
            runner.weighted_speedup(config.with_(scheduler=s), mix)
            for s in schedulers
        ]
        base = speedups[0] or 1.0
        rows.append((mix_name, *(v / base for v in speedups)))
    return ExperimentResult(
        name="Ablation: criticality-based scheduling",
        description="WS normalized to FCFS, including the Section 3.1 "
        "criticality policy (extension)",
        headers=["mix", *schedulers],
        rows=rows,
    )


def prefetch_ablation(
    config: SystemConfig | None = None,
    runner: Runner | None = None,
    mixes: Sequence[str] | None = None,
) -> ExperimentResult:
    """The Table 1 stride prefetcher on vs off.

    Streaming-heavy MEM mixes (swim/lucas in 4-MEM) should benefit;
    pointer-chasing traffic (mcf) has no stride to learn.
    """
    config = config or SystemConfig()
    runner = runner or Runner()
    names = _mix_names(mixes, ("4-MEM", "2-MIX"))
    runner.run_many(
        [
            (config.with_(prefetch=enabled), MIXES[m].apps)
            for m in names
            for enabled in (False, True)
        ]
    )
    rows = []
    for mix_name in names:
        mix = MIXES[mix_name]
        values = []
        for enabled in (False, True):
            cfg = config.with_(prefetch=enabled)
            result = runner.run_mix(cfg, mix)
            values.append(
                f"{result.throughput:.3f}"
                + (f" ({result.hierarchy.prefetch_fills} fills)"
                   if enabled else "")
            )
        rows.append((mix_name, *values))
    return ExperimentResult(
        name="Ablation: stride prefetcher",
        description="aggregate IPC without/with the Table 1 prefetcher",
        headers=["mix", "off", "on"],
        rows=rows,
    )


ABLATIONS = {
    "abl-page-mode": page_mode_ablation,
    "abl-mshr": mshr_ablation,
    "abl-sched-mapping": scheduler_mapping_ablation,
    "abl-color-mapping": color_mapping_ablation,
    "abl-critical": critical_scheduler_ablation,
    "abl-vm-policy": vm_policy_ablation,
    "abl-prefetch": prefetch_ablation,
}
