"""Fault-tolerant batch execution for the experiment engine.

The paper's evaluation is built from large sweeps of independent
``(config, apps)`` simulations (Figures 5-14, Table 2 mixes x
configurations).  ``run_many`` fans those across a process pool; this
module makes that fan-out survive the failures a multi-hour campaign
actually meets:

* **Per-job wall-clock timeouts** — a watchdog in the parent tracks a
  deadline for every in-flight pooled job; a hung worker is detected,
  the pool is torn down (a stuck worker cannot be cancelled any other
  way), and the job is retried or the batch aborted with
  :class:`~repro.common.errors.SimulationTimeout`.  Jobs are submitted
  in windows of at most ``parallelism`` so a queued job's clock never
  starts before it runs.
* **Bounded retries with deterministic backoff** — timeouts, worker
  crashes, and *transient* exceptions (anything whose ``transient``
  attribute is true, e.g. :class:`repro.faults.InjectedFault`) are
  retried up to ``RetryPolicy.retries`` times; every attempt leaves a
  :class:`~repro.common.errors.JobFailure` record in the stats and the
  journal.  Backoff is derived from the job's content identity, not a
  wall-clock RNG, so reruns pause identically.
* **Broken-pool recovery** — a worker that dies (OOM-kill, segfault,
  injected ``os._exit``) breaks the whole ``ProcessPoolExecutor``; the
  executor rebuilds the pool and resubmits unfinished work, and after
  ``max_pool_rebuilds`` rebuilds degrades gracefully to serial
  in-process execution so a pathological environment still completes.
* **Crash-safe batch journal** — an append-only JSONL file records
  every job outcome (fsynced line by line), written *after* the result
  is durably in the ResultCache.  An interrupted sweep rerun with the
  same journal resumes from completed work: journaled-complete jobs
  are served from the cache with zero re-simulation.

Determinism: recovery never changes results.  A retried or resumed job
re-runs the same deterministic simulation and the caller collects
results by submission index, so a batch that lost workers, timed out,
or was killed and resumed is bit-identical to an undisturbed one — the
chaos suite (``tests/chaos``) asserts exactly this.
"""

from __future__ import annotations

import json
import logging
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.common.errors import (
    BatchAborted,
    JobFailure,
    JobFailureError,
    SimulationTimeout,
    WorkerCrashed,
)
from repro.common.rng import derive_seed
from repro.faults import FaultPlan, InjectedCrash
from repro.telemetry.manifest import config_hash, run_id

log = logging.getLogger("repro.experiments.resilience")

#: Journal document schema version (bump on incompatible line changes).
JOURNAL_SCHEMA = 1


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor fights for each job.

    The default policy — no retries, no timeout — makes the executor
    behave exactly like the plain engine: first failure propagates.
    """

    #: Extra attempts after the first (0 = fail fast).
    retries: int = 0
    #: Per-job wall-clock budget in seconds; ``None`` disables the
    #: watchdog.  Enforced for pooled execution only — a serial job
    #: runs in-process and cannot be preempted.
    timeout_s: float | None = None
    #: First retry waits this long, doubling per attempt, plus a
    #: deterministic (content-derived) jitter fraction.  0 = no wait.
    backoff_base_s: float = 0.0
    #: Pool rebuilds tolerated before degrading to serial execution.
    max_pool_rebuilds: int = 2

    def backoff_s(self, job_id: str, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt`` (1-based)."""
        if self.backoff_base_s <= 0:
            return 0.0
        base = self.backoff_base_s * (2 ** (attempt - 1))
        jitter = (derive_seed(0, f"{job_id}:backoff:{attempt}") % 1024) / 1024.0
        return base * (1.0 + jitter)


@dataclass
class ResilienceStats:
    """Counters and per-attempt failure records for one batch (or runner).

    Mirrored into the run manifest (``extra["resilience"]``) so a
    sweep's provenance says not just what ran but what it survived.
    """

    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    injected_faults: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    #: Jobs served from the journal + cache on a resumed batch.
    resumed_jobs: int = 0
    failures: list[JobFailure] = field(default_factory=list)

    def counters(self) -> dict:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "injected_faults": self.injected_faults,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
            "resumed_jobs": self.resumed_jobs,
        }

    @property
    def eventful(self) -> bool:
        """Whether anything beyond plain execution happened."""
        return any(self.counters().values()) or bool(self.failures)

    def as_dict(self) -> dict:
        return {
            **self.counters(),
            "failures": [f.as_dict() for f in self.failures],
        }


class BatchJournal:
    """Append-only, crash-safe JSONL record of batch job outcomes.

    One line per event; ``complete`` lines are written only after the
    job's result is durable in the persistent cache, and every line is
    flushed and fsynced before the write returns, so the journal never
    claims more than the cache holds.  Loading tolerates a torn final
    line (the write the crash interrupted).

    ``resume=True`` loads completed job ids from an existing file and
    appends; otherwise an existing journal is truncated (a fresh
    batch).
    """

    def __init__(self, path: str | os.PathLike, resume: bool = False) -> None:
        self.path = Path(path).expanduser()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._completed: dict[str, dict] = {}
        self.replayed_failures = 0
        mode = "a" if resume and self.path.exists() else "w"
        if mode == "a":
            self._load()
        self._handle = open(self.path, mode)
        if mode == "w":
            self._write_line(
                {"event": "batch-start", "schema": JOURNAL_SCHEMA}
            )

    # ------------------------------------------------------------------

    def _load(self) -> None:
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # A torn final line from the interrupted run; the
                    # event it described never durably happened.
                    continue
                if record.get("event") == "complete":
                    self._completed[record["job"]] = record
                elif record.get("event") == "failure":
                    self.replayed_failures += 1

    def _write_line(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------

    def completed(self, job_id: str) -> bool:
        return job_id in self._completed

    @property
    def completed_jobs(self) -> dict[str, dict]:
        return dict(self._completed)

    def record_complete(
        self, job_id: str, attempts: int, source: str, wall_s: float
    ) -> None:
        record = {
            "event": "complete",
            "job": job_id,
            "attempts": attempts,
            "source": source,
            "wall_s": round(wall_s, 6),
        }
        self._write_line(record)
        self._completed[job_id] = record

    def record_failure(self, failure: JobFailure) -> None:
        self._write_line(
            {
                "event": "failure",
                "job": failure.job_id,
                "attempt": failure.attempt,
                "kind": failure.kind,
                "detail": failure.detail,
            }
        )

    def record_event(self, event: str, **fields) -> None:
        self._write_line({"event": event, **fields})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# worker entry point


def _attempt_in_worker(
    simulate: Callable,
    plan: FaultPlan | None,
    job_id: str,
    attempt: int,
    config: Any,
    apps: tuple[str, ...],
):
    """Pool-worker wrapper: fire any planned fault, then simulate.

    Module-level so it pickles; ``simulate`` must itself be a
    module-level callable (``repro.experiments.parallel._simulate``).
    """
    if plan is not None:
        plan.maybe_fire(job_id, apps, attempt, in_worker=True)
    return simulate(config, apps)


# ----------------------------------------------------------------------
# the executor


class _JobState:
    """Bookkeeping for one deduplicated job inside ``execute_jobs``."""

    __slots__ = ("index", "config", "apps", "job_id", "cfg_hash", "attempts")

    def __init__(self, index: int, config: Any, apps: tuple[str, ...]) -> None:
        self.index = index
        self.config = config
        self.apps = apps
        self.job_id = run_id(config, apps)
        self.cfg_hash = config_hash(config)
        self.attempts = 0  # failed attempts so far


def execute_jobs(
    jobs: Sequence[tuple],
    simulate: Callable,
    parallelism: int = 1,
    policy: RetryPolicy | None = None,
    journal: BatchJournal | None = None,
    stats: ResilienceStats | None = None,
    fault_plan: FaultPlan | None = None,
    on_complete: Callable[[int, Any], None] | None = None,
) -> list:
    """Run ``jobs`` (a deduplicated ``(config, apps)`` list) to completion.

    Returns results in job order.  ``on_complete(index, result)`` fires
    as soon as a job's result exists — *before* its journal line — so
    callers persist results (memo + cache) ahead of the completion
    record; a crash between the two re-simulates one job instead of
    trusting a journal entry with no backing data.

    Raises :class:`~repro.common.errors.SimulationTimeout`,
    :class:`~repro.common.errors.WorkerCrashed`, or
    :class:`~repro.common.errors.BatchAborted` (all carrying the
    failing job's identity and the per-attempt failure records) when a
    job cannot be recovered within the policy.  ``KeyboardInterrupt``
    cancels pending work, journals the interruption, and propagates —
    the journal plus cache make the batch resumable.
    """
    policy = policy if policy is not None else RetryPolicy()
    stats = stats if stats is not None else ResilienceStats()
    states = [_JobState(i, config, tuple(apps)) for i, (config, apps) in enumerate(jobs)]
    results: list = [None] * len(states)
    pending: set[int] = set(range(len(states)))

    # ------------------------------------------------------------------
    # shared outcome handling

    def finish(state: _JobState, result: Any, source: str, wall_s: float) -> None:
        results[state.index] = result
        pending.discard(state.index)
        if on_complete is not None:
            on_complete(state.index, result)
        if journal is not None:
            journal.record_complete(
                state.job_id, state.attempts + 1, source, wall_s
            )

    def fail(state: _JobState, kind: str, detail: str, cause: BaseException | None,
             retryable: bool) -> bool:
        """Record one failed attempt; True if the job should be retried."""
        state.attempts += 1
        failure = JobFailure(
            job_id=state.job_id,
            config_hash=state.cfg_hash,
            apps=state.apps,
            attempt=state.attempts,
            kind=kind,
            detail=detail,
        )
        stats.failures.append(failure)
        if kind == "timeout":
            stats.timeouts += 1
        elif kind == "crash":
            stats.worker_crashes += 1
        elif kind == "injected":
            stats.injected_faults += 1
        if journal is not None:
            journal.record_failure(failure)
        log.warning(
            "job %s (apps=%s) attempt %d failed: %s: %s",
            state.job_id[:16], ",".join(state.apps), state.attempts, kind, detail,
        )
        if retryable and state.attempts <= policy.retries:
            stats.retries += 1
            delay = policy.backoff_s(state.job_id, state.attempts)
            if delay > 0:
                time.sleep(delay)
            return True
        if journal is not None:
            journal.record_event("abort", job=state.job_id, kind=kind)
        error_cls = {
            "timeout": SimulationTimeout,
            "crash": WorkerCrashed,
        }.get(kind, BatchAborted)
        verb = {
            "timeout": "timed out",
            "crash": "crashed",
        }.get(kind, f"failed ({detail})" if detail else "failed")
        raise error_cls(
            f"batch aborted: job {verb} on attempt {state.attempts} "
            f"(policy allows {policy.retries} retries)",
            job_id=state.job_id,
            config_hash=state.cfg_hash,
            apps=state.apps,
            attempts=state.attempts,
            failures=tuple(stats.failures),
        ) from cause

    def classify(exc: BaseException) -> tuple[str, bool]:
        """Map an exception to (failure kind, retryable)."""
        if isinstance(exc, InjectedCrash):
            return "crash", True
        if getattr(exc, "transient", False):
            return "injected", True
        return "exception", False

    # ------------------------------------------------------------------
    # serial execution (parallelism == 1, or the degraded fallback)

    def run_serial() -> None:
        queue = deque(sorted(pending))
        while queue:
            state = states[queue.popleft()]
            if fault_plan is not None:
                # Service-scope faults fire in (and may kill or crash)
                # the owning process itself — deliberately outside the
                # per-job retry handling below.
                fault_plan.maybe_fire_service(
                    state.job_id, state.apps, state.attempts
                )
            try:
                if fault_plan is not None:
                    fault_plan.maybe_fire(
                        state.job_id, state.apps, state.attempts, in_worker=False
                    )
                start = time.perf_counter()
                result = simulate(state.config, state.apps)
                finish(state, result, "serial", time.perf_counter() - start)
            except KeyboardInterrupt:
                if journal is not None:
                    journal.record_event("interrupted", job=state.job_id)
                raise
            except Exception as exc:
                kind, retryable = classify(exc)
                if fail(state, kind, str(exc), exc, retryable):
                    queue.appendleft(state.index)  # retry before moving on

    # ------------------------------------------------------------------
    # pooled execution

    def kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear down a pool that holds a hung worker.

        A running task cannot be cancelled through the executor API, so
        the watchdog terminates the worker processes directly (a
        CPython implementation detail, guarded accordingly) and
        abandons the pool object.
        """
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    rebuilds = 0  # this batch only; stats accumulate across batches

    def run_pool_round() -> None:
        """One pool lifetime: submit pending work, harvest until done or broken.

        Leaves unresolved jobs in ``pending``; the outer loop rebuilds
        the pool (or falls back to serial) for whatever remains.
        """
        nonlocal rebuilds
        workers = min(parallelism, len(pending))
        pool = ProcessPoolExecutor(max_workers=workers)
        queue = deque(sorted(pending))
        inflight: dict = {}  # future -> (state, deadline, start)
        broken = False
        killed = False
        try:
            while queue or inflight:
                # Windowed submission: a job's timeout clock must not
                # start while it is still queued behind busy workers.
                while queue and len(inflight) < workers:
                    state = states[queue.popleft()]
                    if fault_plan is not None:
                        # Dispatch-time, in the owning process: this is
                        # where a service-scope sigkill takes the whole
                        # daemon down mid-campaign.
                        fault_plan.maybe_fire_service(
                            state.job_id, state.apps, state.attempts
                        )
                    future = pool.submit(
                        _attempt_in_worker,
                        simulate,
                        fault_plan,
                        state.job_id,
                        state.attempts,
                        state.config,
                        state.apps,
                    )
                    deadline = (
                        time.monotonic() + policy.timeout_s
                        if policy.timeout_s is not None
                        else None
                    )
                    inflight[future] = (state, deadline, time.perf_counter())
                wait_s = None
                deadlines = [d for (_, d, _) in inflight.values() if d is not None]
                if deadlines:
                    wait_s = max(0.0, min(deadlines) - time.monotonic())
                done, _ = wait(
                    set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
                )
                for future in sorted(done, key=lambda f: inflight[f][0].index):
                    state, _, start = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        if fail(
                            state, "crash",
                            "worker process died (process pool broken)",
                            None, retryable=True,
                        ):
                            pass  # stays in pending; outer loop resubmits
                    except KeyboardInterrupt:  # pragma: no cover - defensive
                        raise
                    except Exception as exc:
                        kind, retryable = classify(exc)
                        if fail(state, kind, str(exc), exc, retryable):
                            queue.append(state.index)
                        continue
                    else:
                        finish(state, result, "pool", time.perf_counter() - start)
                if broken:
                    # Remaining in-flight futures are doomed too; their
                    # jobs stay pending for the rebuilt pool (without
                    # consuming an attempt — the crash was charged to
                    # the futures that already surfaced it).
                    rebuilds += 1
                    stats.pool_rebuilds += 1
                    if journal is not None:
                        journal.record_event("pool-rebuild", reason="broken")
                    return
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, deadline, _) in inflight.items()
                    if deadline is not None and now >= deadline
                    and not future.done()
                ]
                if expired:
                    for future in sorted(
                        expired, key=lambda f: inflight[f][0].index
                    ):
                        state, _, _ = inflight.pop(future)
                        fail(
                            state, "timeout",
                            f"exceeded {policy.timeout_s:.3f}s wall-clock budget",
                            None, retryable=True,
                        )
                    # The hung workers hold pool slots hostage; kill the
                    # pool and let the outer loop rebuild for everything
                    # still pending (in-flight innocents are requeued
                    # without consuming an attempt).
                    rebuilds += 1
                    stats.pool_rebuilds += 1
                    if journal is not None:
                        journal.record_event("pool-rebuild", reason="timeout")
                    kill_pool(pool)
                    killed = True
                    return
        except KeyboardInterrupt:
            for future in inflight:
                future.cancel()
            if journal is not None:
                journal.record_event("interrupted")
            kill_pool(pool)
            killed = True
            raise
        except JobFailureError:
            kill_pool(pool)
            killed = True
            raise
        finally:
            if not killed:
                # Clean completion joins the workers; a broken pool's
                # processes are already gone, so don't block on them.
                pool.shutdown(wait=not broken, cancel_futures=True)

    # ------------------------------------------------------------------

    if parallelism > 1 and len(pending) > 1:
        while pending:
            if rebuilds > policy.max_pool_rebuilds:
                stats.serial_fallbacks += 1
                if journal is not None:
                    journal.record_event(
                        "serial-fallback", remaining=len(pending)
                    )
                log.warning(
                    "process pool broke %d times; finishing %d job(s) serially",
                    rebuilds, len(pending),
                )
                break
            run_pool_round()
    if pending:
        run_serial()
    return results
