"""The paper's Table 2 workload mixes.

Nine mixes: {2, 4, 8} threads x {ILP, MIX, MEM}.  The ILP mixes contain
only compute-bound applications, the MEM mixes only memory-bound ones,
and the MIX mixes half of each.  mcf appears in the 2-thread MEM mix
because it has the highest overall CPI and a high CPI_mem share
(footnote 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.spec2000 import get_profile


@dataclass(frozen=True)
class WorkloadMix:
    """One row of Table 2."""

    name: str
    threads: int
    kind: str  # "ILP" | "MIX" | "MEM"
    apps: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.apps) != self.threads:
            raise ValueError(
                f"{self.name}: {self.threads} threads but {len(self.apps)} apps"
            )
        for app in self.apps:
            get_profile(app)  # raises KeyError for unknown names


MIXES: dict[str, WorkloadMix] = {
    mix.name: mix
    for mix in (
        WorkloadMix("2-ILP", 2, "ILP", ("bzip2", "gzip")),
        WorkloadMix("2-MIX", 2, "MIX", ("gzip", "mcf")),
        WorkloadMix("2-MEM", 2, "MEM", ("mcf", "ammp")),
        WorkloadMix("4-ILP", 4, "ILP", ("bzip2", "gzip", "sixtrack", "eon")),
        WorkloadMix("4-MIX", 4, "MIX", ("gzip", "mcf", "bzip2", "ammp")),
        WorkloadMix("4-MEM", 4, "MEM", ("mcf", "ammp", "swim", "lucas")),
        WorkloadMix(
            "8-ILP", 8, "ILP",
            ("gzip", "bzip2", "sixtrack", "eon",
             "mesa", "galgel", "crafty", "wupwise"),
        ),
        WorkloadMix(
            "8-MIX", 8, "MIX",
            ("gzip", "mcf", "bzip2", "ammp",
             "sixtrack", "swim", "eon", "lucas"),
        ),
        WorkloadMix(
            "8-MEM", 8, "MEM",
            ("mcf", "ammp", "swim", "lucas",
             "equake", "applu", "vpr", "facerec"),
        ),
    )
}


def all_mix_names() -> list[str]:
    """Mix names in the paper's presentation order."""
    order = ("ILP", "MIX", "MEM")
    return sorted(
        MIXES, key=lambda n: (MIXES[n].threads, order.index(MIXES[n].kind))
    )


def get_mix(name: str) -> WorkloadMix:
    """Look up a Table 2 mix, e.g. ``"4-MEM"``."""
    try:
        return MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown mix {name!r}; known: {all_mix_names()}"
        ) from None
