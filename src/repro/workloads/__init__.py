"""Synthetic SPEC CPU2000-like workloads.

The paper drives its simulator with 100M-instruction SimPoint clips of
the 26 SPEC CPU2000 applications.  SPEC binaries and traces cannot be
redistributed, so this package substitutes *statistical profiles*: for
each application a parameterized generator produces an endless µop
stream whose instruction mix, dependence structure, branch behaviour
and multi-region memory-address stream land the application in the
same qualitative class the paper uses (compute-bound "ILP" vs
memory-bound "MEM", with mcf the most memory-intensive).

Table 2's workload mixes are reproduced verbatim in
:mod:`repro.workloads.mixes`.
"""

from repro.workloads.analysis import StreamStats, analyze_stream, validate_profile
from repro.workloads.generator import SyntheticStream, Uop
from repro.workloads.mixes import (
    MIXES,
    WorkloadMix,
    all_mix_names,
    get_mix,
)
from repro.workloads.profile import AppProfile, Region
from repro.workloads.spec2000 import PROFILES, get_profile, profile_names
from repro.workloads.trace import (
    TraceStream,
    TraceWriter,
    extract_memory_trace,
    load_trace,
    record_trace,
)

__all__ = [
    "AppProfile",
    "StreamStats",
    "TraceStream",
    "TraceWriter",
    "analyze_stream",
    "extract_memory_trace",
    "load_trace",
    "record_trace",
    "validate_profile",
    "MIXES",
    "PROFILES",
    "Region",
    "SyntheticStream",
    "Uop",
    "WorkloadMix",
    "all_mix_names",
    "get_mix",
    "get_profile",
    "profile_names",
]
