"""Synthetic µop stream generator.

Turns an :class:`~repro.workloads.profile.AppProfile` into an endless,
deterministic stream of :class:`Uop` records for one hardware thread.
Each thread gets a disjoint address space (the paper's bin-hopping
virtual-to-physical mapping assigns threads non-overlapping physical
pages, which disjoint bases model directly).

Dependences are expressed as backwards distances in the dynamic
instruction stream; the core resolves them against its recent-history
ring.  Pointer-chasing loads (``ptr_chase``) depend on the *previous
load*, which serializes their cache misses -- the key behaviour that
makes mcf latency-bound rather than bandwidth-bound.
"""

from __future__ import annotations

# Typing only: streams draw from an injected seed-derived RNG (see
# repro.common.rng.child_rng); no module-level randomness exists here.
import random  # repro: allow(DET001) typing only; RNGs are injected
from typing import Iterator

from repro.common.errors import ConfigError
from repro.common.types import OpClass
from repro.workloads.profile import AppProfile, Region

#: Maximum backwards dependence distance the core tracks.
MAX_DEP_DISTANCE = 64

#: Bytes of address space reserved per thread (16 GiB keeps regions of
#: different threads in different DRAM rows and cache tags).
THREAD_ADDRESS_STRIDE = 1 << 34

#: Gap between consecutive regions of one thread, in bytes.
_REGION_GAP = 1 << 24

_LINE = 64

#: Static branch sites synthesized per thread.
_BRANCH_SITES = 256


class _BranchSite:
    """One static branch: either outcome-biased or loop-patterned.

    Biased sites draw Bernoulli outcomes (hard for any predictor when
    the bias is weak); loop sites repeat "taken k-1 times, then not
    taken", which a local-history predictor learns perfectly.  The
    mix is tuned so a hybrid predictor lands near the profile's
    ``mispredict_rate``.
    """

    __slots__ = ("pc", "kind", "p_taken", "period", "position")

    def __init__(self, pc: int, kind: str, p_taken: float, period: int):
        self.pc = pc
        self.kind = kind
        self.p_taken = p_taken
        self.period = period
        self.position = 0

    def next_outcome(self, rng: random.Random) -> bool:
        if self.kind == "loop":
            self.position = (self.position + 1) % self.period
            return self.position != 0
        return rng.random() < self.p_taken


def _make_branch_sites(
    profile: AppProfile, thread_id: int, rng: random.Random
) -> list["_BranchSite"]:
    """Synthesize the thread's static branches from the profile.

    70% of sites are Bernoulli with a bias chosen so that an
    always-predict-majority predictor mispredicts at about the
    profile's rate; 30% are loop-pattern sites a local predictor
    captures almost perfectly.
    """
    bernoulli_rate = min(0.5, profile.mispredict_rate / 0.7)
    base_pc = (thread_id + 1) << 20
    sites = []
    for i in range(_BRANCH_SITES):
        pc = base_pc + i * 4
        if i % 10 < 3:
            sites.append(_BranchSite(pc, "loop", 0.0, 4 + (i % 13)))
        else:
            sites.append(
                _BranchSite(pc, "bernoulli", 1.0 - bernoulli_rate, 0)
            )
    rng.shuffle(sites)
    return sites


class Uop:
    """One dynamic micro-operation.

    ``mispredict`` is the pre-drawn outcome used by the core's default
    stochastic branch model; ``pc``/``taken`` carry the static branch
    site and its actual direction for the optional hybrid predictor
    (:mod:`repro.cpu.branch`).
    """

    __slots__ = ("opc", "addr", "dep1", "dep2", "mispredict", "pc", "taken")

    def __init__(
        self,
        opc: OpClass,
        addr: int = 0,
        dep1: int = 0,
        dep2: int = 0,
        mispredict: bool = False,
        pc: int = 0,
        taken: bool = False,
    ) -> None:
        self.opc = opc
        self.addr = addr
        self.dep1 = dep1
        self.dep2 = dep2
        self.mispredict = mispredict
        self.pc = pc
        self.taken = taken

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" addr={self.addr:#x}" if self.opc.is_memory else ""
        return f"Uop({self.opc.name}{extra} dep1={self.dep1} dep2={self.dep2})"


class _RegionState:
    """Runtime state of one footprint region (scaled, with stream pointers)."""

    __slots__ = (
        "region",
        "base",
        "size",
        "pointers",
        "repeat_left",
        "current",
        "burst_left",
        "rand_line",
        "rand_repeat_left",
    )

    def __init__(self, region: Region, base: int, scale: int, rng: random.Random):
        self.region = region
        self.base = base
        self.size = max(region.size_lines // scale, 16)
        if region.kind == "stream":
            self.pointers = [rng.randrange(self.size) for _ in range(region.streams)]
            self.repeat_left = [0] * region.streams
            self.current = [0] * region.streams
        else:
            self.pointers = []
            self.repeat_left = []
            self.current = []
        # random-region walk state: a random jump, then `burst`
        # sequential lines with `repeats` accesses each.
        self.burst_left = 0
        self.rand_line = 0
        self.rand_repeat_left = 0

    def next_address(self, rng: random.Random) -> int:
        """Next byte address drawn from this region."""
        region = self.region
        if region.kind == "random":
            if self.rand_repeat_left > 0:
                self.rand_repeat_left -= 1
            elif self.burst_left > 0:
                self.burst_left -= 1
                self.rand_line = (self.rand_line + 1) % self.size
                self.rand_repeat_left = region.repeats - 1
            else:
                self.rand_line = rng.randrange(self.size)
                self.burst_left = region.burst - 1
                self.rand_repeat_left = region.repeats - 1
            return self.base + self.rand_line * _LINE
        idx = rng.randrange(len(self.pointers)) if len(self.pointers) > 1 else 0
        if self.repeat_left[idx] > 0:
            self.repeat_left[idx] -= 1
        else:
            self.pointers[idx] = (
                self.pointers[idx] + self.region.stride
            ) % self.size
            self.current[idx] = self.pointers[idx]
            self.repeat_left[idx] = self.region.repeats - 1
        return self.base + self.current[idx] * _LINE


class SyntheticStream:
    """Endless deterministic µop stream for one (application, thread).

    Parameters
    ----------
    profile:
        The application model.
    rng:
        Source of all randomness; pass a child RNG derived from the
        experiment seed for reproducibility.
    thread_id:
        Selects the thread's disjoint address-space base.
    scale:
        Footprint divisor, matched with the cache-size scale of
        :class:`~repro.cache.hierarchy.HierarchyParams`.
    """

    def __init__(
        self,
        profile: AppProfile,
        rng: random.Random,
        thread_id: int = 0,
        scale: int = 1,
    ) -> None:
        if scale < 1:
            raise ConfigError(f"scale must be >= 1, got {scale}")
        self.profile = profile
        self.thread_id = thread_id
        self.scale = scale
        self._rng = rng
        self._regions: list[_RegionState] = []
        base = (thread_id + 1) * THREAD_ADDRESS_STRIDE
        for index, region in enumerate(profile.regions):
            # Stagger region bases by a per-(thread, region) offset so
            # different threads' regions do not alias to the same cache
            # sets (bases and gaps are powers of two otherwise, which
            # would pile every thread onto the same set indices).
            skew = ((thread_id * 2654435761 + index * 40503) % 4096) * _LINE
            state = _RegionState(region, base + skew, scale, rng)
            self._regions.append(state)
            base += skew + state.size * _LINE + _REGION_GAP
        total = profile.total_region_weight
        self._cum_weights: list[float] = []
        acc = 0.0
        for region in profile.regions:
            acc += region.weight / total
            self._cum_weights.append(acc)
        self._cum_weights[-1] = 1.0  # guard against float drift
        self._since_last_load = MAX_DEP_DISTANCE
        self._dep_span = max(1, int(2 * profile.dep_mean))
        self._visit_region: _RegionState | None = None
        self._visit_left = 0
        self._visit_span = max(1, int(2 * profile.cluster))
        self._branch_sites = _make_branch_sites(profile, thread_id, rng)
        self.generated = 0

    # ------------------------------------------------------------------

    def footprint(self) -> list[tuple[int, int, Region]]:
        """The thread's memory layout: (base line address, lines, region).

        Used by :func:`repro.cache.prewarm.prewarm` to install
        steady-state cache contents before measurement, so short runs
        don't spend their whole budget on cold-start misses.
        """
        return [
            (state.base // _LINE, state.size, state.region)
            for state in self._regions
        ]

    def _pick_region(self, r: float) -> _RegionState:
        for i, cum in enumerate(self._cum_weights):
            if r <= cum:
                return self._regions[i]
        return self._regions[-1]

    def _current_region(self, rng: random.Random) -> _RegionState:
        """Region for the next access, with phased (clustered) visits.

        A region is chosen with probability proportional to its weight
        and then *stays current* for a random number of accesses with
        mean ``profile.cluster``, so misses to slow regions arrive in
        clusters rather than uniformly.
        """
        if self._visit_left <= 0 or self._visit_region is None:
            self._visit_region = self._pick_region(rng.random())
            self._visit_left = 1 + int(rng.random() * self._visit_span)
        self._visit_left -= 1
        return self._visit_region

    def _dep_distance(self, rng: random.Random) -> int:
        return min(MAX_DEP_DISTANCE, 1 + int(rng.random() * self._dep_span))

    def next_uop(self) -> Uop:
        """Generate the next dynamic instruction."""
        rng = self._rng
        p = self.profile
        self.generated += 1
        self._since_last_load += 1
        r = rng.random()
        if r < p.mem_frac:
            is_store = rng.random() < p.store_frac
            region = self._current_region(rng)
            addr = region.next_address(rng)
            if not is_store:
                if (
                    p.ptr_chase
                    and self._since_last_load <= MAX_DEP_DISTANCE
                    and rng.random() < p.ptr_chase
                ):
                    dep1 = self._since_last_load
                else:
                    dep1 = self._dep_distance(rng) if rng.random() < p.dep_prob else 0
                self._since_last_load = 0
                return Uop(OpClass.LOAD, addr, dep1)
            dep1 = self._dep_distance(rng) if rng.random() < p.dep_prob else 0
            dep2 = self._dep_distance(rng) if rng.random() < p.dep2_prob else 0
            return Uop(OpClass.STORE, addr, dep1, dep2)
        if r < p.mem_frac + p.branch_frac:
            dep1 = self._dep_distance(rng) if rng.random() < p.dep_prob else 0
            # favour low-index (hot) branch sites quadratically
            sites = self._branch_sites
            site = sites[int(len(sites) * rng.random() * rng.random())]
            return Uop(
                OpClass.BRANCH,
                dep1=dep1,
                mispredict=rng.random() < p.mispredict_rate,
                pc=site.pc,
                taken=site.next_outcome(rng),
            )
        if rng.random() < p.fp_frac:
            opc = OpClass.FP_MULT if rng.random() < p.mult_frac else OpClass.FP_ALU
        else:
            opc = OpClass.INT_MULT if rng.random() < p.mult_frac else OpClass.INT_ALU
        dep1 = self._dep_distance(rng) if rng.random() < p.dep_prob else 0
        dep2 = self._dep_distance(rng) if rng.random() < p.dep2_prob else 0
        return Uop(opc, dep1=dep1, dep2=dep2)

    def __iter__(self) -> Iterator[Uop]:
        while True:
            yield self.next_uop()
