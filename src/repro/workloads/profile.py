"""Application profile model.

An :class:`AppProfile` captures, statistically, everything the SMT core
and memory system need from a SPEC CPU2000 application:

* instruction mix (memory / branch / int / fp fractions),
* dependence structure (how far back producers sit, and whether loads
  chase pointers through other loads),
* branch predictability,
* and a *multi-region address model*: a small set of
  :class:`Region` descriptors, each either uniformly random (pointer /
  hash-table style, row-buffer hostile) or streaming (array walks,
  row-buffer friendly), sized relative to the cache hierarchy so each
  application reproduces its qualitative L2/L3/DRAM behaviour.

Region sizes are given in cache lines *at full scale* (64 KB L1,
512 KB L2 = 8192 lines, 4 MB L3 = 65536 lines); the generator divides
them by the experiment's footprint scale so scaled-down runs keep the
same footprint-to-capacity ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class Region:
    """One component of an application's memory footprint.

    Attributes
    ----------
    size_lines:
        Footprint of the region in 64 B cache lines (full scale).
    weight:
        Relative probability that a memory access falls here.
    kind:
        ``"random"`` -- jump to a uniformly random line, then touch
        ``burst`` sequential lines (hash tables, pointer soup; mostly
        row-buffer hostile, with the short spatial tail real pointer
        codes show).
        ``"stream"`` -- sequential walks; ``streams`` independent
        pointers advance ``stride`` lines per step, giving high
        spatial locality and row-buffer friendliness.
    streams:
        Number of concurrent walk pointers (stream regions only).
    stride:
        Lines advanced per step (stream regions only).
    repeats:
        Consecutive accesses to a line before moving on; models
        word-granular walks (8 words per 64 B line) and controls how
        many L1 hits each fetched line earns.  One line is fetched
        per ``repeats`` accesses.
    burst:
        Sequential lines touched after each random jump (random
        regions only).
    """

    size_lines: int
    weight: float
    kind: str = "random"
    streams: int = 4
    stride: int = 1
    repeats: int = 1
    burst: int = 1

    def __post_init__(self) -> None:
        if self.size_lines < 1:
            raise ConfigError(f"region size must be >= 1 line, got {self.size_lines}")
        if self.weight <= 0:
            raise ConfigError(f"region weight must be > 0, got {self.weight}")
        if self.kind not in ("random", "stream"):
            raise ConfigError(f"unknown region kind {self.kind!r}")
        if self.streams < 1 or self.stride < 1 or self.repeats < 1:
            raise ConfigError("streams, stride and repeats must be >= 1")
        if self.burst < 1:
            raise ConfigError("burst must be >= 1")


@dataclass(frozen=True)
class AppProfile:
    """Statistical model of one application.

    ``category`` is the paper's classification used to build Table 2:
    ``"ILP"`` (compute-bound), ``"MEM"`` (memory-bound), or ``"MID"``
    (in between; not used in mixes but present for completeness).
    """

    name: str
    category: str
    #: Fraction of dynamic instructions that are loads or stores.
    mem_frac: float
    #: Of the memory operations, the fraction that are stores.
    store_frac: float
    #: Fraction of dynamic instructions that are branches.
    branch_frac: float
    #: Probability a branch is mispredicted.
    mispredict_rate: float
    #: Of the remaining compute ops, fraction that are floating point.
    fp_frac: float
    #: Of compute ops, fraction that are multiplies (long latency).
    mult_frac: float = 0.1
    #: Probability an instruction-fetch group misses the L1 I-cache.
    icache_miss_rate: float = 0.001
    #: Mean backwards dependence distance (higher = more ILP).
    dep_mean: float = 5.0
    #: Probability an instruction has a first source operand at all.
    dep_prob: float = 0.8
    #: Probability of a second source operand.
    dep2_prob: float = 0.25
    #: Probability a load's address depends on the previous load
    #: (pointer chasing -- serializes misses; high for mcf).
    ptr_chase: float = 0.0
    #: Mean length (in memory accesses) of a stay in one region before
    #: moving to another.  Values above 1 make accesses *phased*, so
    #: cache misses arrive in clusters -- the behaviour the paper's
    #: access scheduling exploits (Section 3, citing Pai & Adve).
    cluster: float = 8.0
    #: Memory footprint model.
    regions: tuple[Region, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.category not in ("ILP", "MEM", "MID"):
            raise ConfigError(f"unknown category {self.category!r}")
        for frac_name in (
            "mem_frac",
            "store_frac",
            "branch_frac",
            "mispredict_rate",
            "fp_frac",
            "mult_frac",
            "icache_miss_rate",
            "dep_prob",
            "dep2_prob",
            "ptr_chase",
        ):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{self.name}: {frac_name}={value} not in [0, 1]")
        if self.mem_frac + self.branch_frac > 1.0:
            raise ConfigError(
                f"{self.name}: mem_frac + branch_frac exceeds 1.0"
            )
        if self.dep_mean < 1.0:
            raise ConfigError(f"{self.name}: dep_mean must be >= 1")
        if self.cluster < 1.0:
            raise ConfigError(f"{self.name}: cluster must be >= 1")
        if not self.regions:
            raise ConfigError(f"{self.name}: needs at least one region")

    @property
    def total_region_weight(self) -> float:
        return sum(r.weight for r in self.regions)

    @property
    def footprint_lines(self) -> int:
        """Total footprint (full scale), in cache lines."""
        return sum(r.size_lines for r in self.regions)
