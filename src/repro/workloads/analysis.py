"""Empirical workload-stream analysis.

Measures, from a window of generated µops, the statistics the profiles
promise: instruction mix, dependence distances, branch behaviour,
footprint and reuse.  Used to validate profiles against their
parameters (the calibration tests in ``tests/workloads``) and to
characterize custom workloads before simulating them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.types import OpClass

_LINE = 64


@dataclass
class StreamStats:
    """Measured statistics of one µop-stream window."""

    instructions: int
    loads: int
    stores: int
    branches: int
    fp_ops: int
    mispredict_flags: int
    distinct_lines: int
    distinct_pages: int
    mean_dep1: float
    line_reuse: float
    #: lines touched per 100 instructions that were first touches
    new_lines_per_100: float
    opclass_counts: dict = field(default_factory=dict)

    @property
    def mem_frac(self) -> float:
        return (self.loads + self.stores) / self.instructions

    @property
    def store_frac(self) -> float:
        mem = self.loads + self.stores
        return self.stores / mem if mem else 0.0

    @property
    def branch_frac(self) -> float:
        return self.branches / self.instructions

    @property
    def mispredict_rate(self) -> float:
        return (
            self.mispredict_flags / self.branches if self.branches else 0.0
        )

    @property
    def fp_frac(self) -> float:
        compute = self.instructions - self.loads - self.stores - self.branches
        return self.fp_ops / compute if compute else 0.0


def analyze_stream(stream, window: int = 20000, page_bytes: int = 8192) -> StreamStats:
    """Generate ``window`` µops from ``stream`` and measure them."""
    if window < 1:
        raise ConfigError(f"window must be >= 1, got {window}")
    loads = stores = branches = fp_ops = mispredicts = 0
    dep1_sum = dep1_count = 0
    lines: dict[int, int] = {}
    pages: set[int] = set()
    opclass_counts: dict[str, int] = {}
    accesses = 0
    for _ in range(window):
        uop = stream.next_uop()
        opclass_counts[uop.opc.name] = opclass_counts.get(uop.opc.name, 0) + 1
        if uop.dep1:
            dep1_sum += uop.dep1
            dep1_count += 1
        if uop.opc is OpClass.LOAD:
            loads += 1
        elif uop.opc is OpClass.STORE:
            stores += 1
        elif uop.opc is OpClass.BRANCH:
            branches += 1
            mispredicts += uop.mispredict
        elif uop.opc.is_fp:
            fp_ops += 1
        if uop.opc.is_memory:
            accesses += 1
            line = uop.addr // _LINE
            lines[line] = lines.get(line, 0) + 1
            pages.add(uop.addr // page_bytes)
    distinct = len(lines)
    reuse = accesses / distinct if distinct else 0.0
    return StreamStats(
        instructions=window,
        loads=loads,
        stores=stores,
        branches=branches,
        fp_ops=fp_ops,
        mispredict_flags=mispredicts,
        distinct_lines=distinct,
        distinct_pages=len(pages),
        mean_dep1=dep1_sum / dep1_count if dep1_count else 0.0,
        line_reuse=reuse,
        new_lines_per_100=100.0 * distinct / window,
        opclass_counts=opclass_counts,
    )


def validate_profile(stream, window: int = 20000, tolerance: float = 0.03) -> list[str]:
    """Check a synthetic stream against its profile's parameters.

    Returns a list of human-readable discrepancies (empty = all
    measured fractions within ``tolerance`` of the profile).
    """
    profile = stream.profile
    stats = analyze_stream(stream, window)
    problems = []
    checks = [
        ("mem_frac", stats.mem_frac, profile.mem_frac),
        ("store_frac", stats.store_frac, profile.store_frac),
        ("branch_frac", stats.branch_frac, profile.branch_frac),
        ("mispredict_rate", stats.mispredict_rate, profile.mispredict_rate),
    ]
    for name, measured, expected in checks:
        if abs(measured - expected) > tolerance:
            problems.append(
                f"{profile.name}: {name} measured {measured:.3f} vs "
                f"profile {expected:.3f}"
            )
    return problems
