"""Trace recording and replay.

The paper drives its simulators with instruction traces (SimPoint
clips); this module provides the equivalent plumbing for the synthetic
workloads so experiments can be decoupled from generation:

* :class:`TraceWriter` / :func:`record_trace` — capture any µop stream
  (synthetic or hand-built) into a compact text format.
* :class:`TraceStream` — replay a recorded trace as a drop-in
  workload stream for :class:`~repro.cpu.core.SMTCore` (loops back to
  the start when exhausted, like the endless synthetic streams).
* :func:`extract_memory_trace` — reduce a µop stream to its memory
  accesses, for the memory-only driver in
  :mod:`repro.experiments.tracedriven`.

Format: one µop per line, ``opclass[,field=value...]``; ``#`` lines
are comments.  Fields: ``a`` (byte address, hex), ``d1``/``d2``
(dependence distances), ``m`` (mispredicted branch flag).  A header
comment records the source profile name so replays keep I-cache
behaviour.
"""

from __future__ import annotations

import io
from typing import Iterable, TextIO

from repro.common.errors import ConfigError
from repro.common.types import OpClass
from repro.workloads.generator import Uop
from repro.workloads.profile import AppProfile, Region
from repro.workloads.spec2000 import PROFILES

_OPC_NAMES = {op.name: op for op in OpClass}


class TraceWriter:
    """Streams µops into a trace file."""

    def __init__(self, handle: TextIO, profile_name: str = "trace") -> None:
        self._handle = handle
        self.count = 0
        handle.write(f"# repro-trace v1 profile={profile_name}\n")

    def write(self, uop: Uop) -> None:
        parts = [uop.opc.name]
        if uop.opc.is_memory:
            parts.append(f"a={uop.addr:x}")
        if uop.dep1:
            parts.append(f"d1={uop.dep1}")
        if uop.dep2:
            parts.append(f"d2={uop.dep2}")
        if uop.mispredict:
            parts.append("m=1")
        self._handle.write(",".join(parts) + "\n")
        self.count += 1


def record_trace(
    stream, count: int, handle: TextIO, profile_name: str | None = None
) -> int:
    """Record ``count`` µops from ``stream`` into ``handle``."""
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    name = profile_name or getattr(
        getattr(stream, "profile", None), "name", "trace"
    )
    writer = TraceWriter(handle, name)
    for _ in range(count):
        writer.write(stream.next_uop())
    return writer.count


def _parse_line(line: str) -> Uop:
    parts = line.split(",")
    try:
        opc = _OPC_NAMES[parts[0]]
    except KeyError:
        raise ConfigError(f"unknown op class {parts[0]!r} in trace") from None
    addr = 0
    dep1 = dep2 = 0
    mispredict = False
    for field in parts[1:]:
        key, _, value = field.partition("=")
        if key == "a":
            addr = int(value, 16)
        elif key == "d1":
            dep1 = int(value)
        elif key == "d2":
            dep2 = int(value)
        elif key == "m":
            mispredict = value == "1"
        else:
            raise ConfigError(f"unknown trace field {key!r}")
    return Uop(opc, addr, dep1, dep2, mispredict)


def load_trace(handle: TextIO) -> tuple[list[Uop], str]:
    """Parse a trace; returns (µops, source profile name)."""
    profile_name = "trace"
    uops = []
    for raw in handle:
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                if token.startswith("profile="):
                    profile_name = token.split("=", 1)[1]
            continue
        uops.append(_parse_line(line))
    if not uops:
        raise ConfigError("trace contains no instructions")
    return uops, profile_name


_FALLBACK_PROFILE = AppProfile(
    name="trace",
    category="MID",
    mem_frac=0.3,
    store_frac=0.3,
    branch_frac=0.1,
    mispredict_rate=0.05,
    fp_frac=0.0,
    regions=(Region(size_lines=1024, weight=1.0),),
)


class TraceStream:
    """Replays a recorded trace as an endless workload stream.

    Exposes the same interface as
    :class:`~repro.workloads.generator.SyntheticStream` (``next_uop``,
    ``profile``, ``generated``), so the SMT core accepts it directly.
    The trace loops when exhausted; the ``profile`` attribute (used by
    the core for I-cache behaviour) is resolved from the recorded
    profile name when known.
    """

    def __init__(self, uops: list[Uop], profile_name: str = "trace") -> None:
        if not uops:
            raise ConfigError("trace must contain at least one µop")
        self._uops = uops
        self._index = 0
        self.generated = 0
        self.profile = PROFILES.get(profile_name, _FALLBACK_PROFILE)

    @classmethod
    def from_file(cls, path) -> "TraceStream":
        with open(path) as handle:
            uops, profile_name = load_trace(handle)
        return cls(uops, profile_name)

    @classmethod
    def from_text(cls, text: str) -> "TraceStream":
        uops, profile_name = load_trace(io.StringIO(text))
        return cls(uops, profile_name)

    def __len__(self) -> int:
        return len(self._uops)

    def next_uop(self) -> Uop:
        uop = self._uops[self._index]
        self._index += 1
        if self._index >= len(self._uops):
            self._index = 0
        self.generated += 1
        return uop

    def footprint(self) -> list:
        """Traces carry no region metadata; nothing to pre-warm."""
        return []


def extract_memory_trace(uops: Iterable[Uop]) -> list[tuple[int, bool]]:
    """Reduce µops to (byte address, is_store) memory accesses."""
    return [
        (uop.addr, uop.opc is OpClass.STORE)
        for uop in uops
        if uop.opc.is_memory
    ]
