"""Profiles for the 26 SPEC CPU2000 applications.

Each profile is tuned so the application lands in the qualitative class
the paper's Figure 1 assigns it (applications sorted by rising
CPI_mem): the compute-bound group (sixtrack, eon, mesa, crafty, gzip,
bzip2, galgel, wupwise, ...) has negligible main-memory traffic, the
middle group touches the L3 occasionally, and the memory-bound group
(facerec, vpr, applu, equake, lucas, swim, ammp, mcf) generates
substantial DRAM traffic -- with mcf the most memory-intensive by a
wide margin, dominated by serialized pointer chasing.

Calibration.  With region weights summing to 1.0, the expected
single-threaded DRAM demand of a region far larger than the L3 is::

    accesses/100 instr  =  100 * mem_frac * weight / repeats

The DRAM-region weights below target the paper's reported rates: the
2/4/8-thread MEM mixes average 3.6/2.6/1.5 accesses per 100
instructions, so mcf sits near 4.5, ammp near 2.8, swim/lucas near
2.2-2.6, and the remaining MEM applications between 0.9 and 1.6;
ILP applications stay below ~0.05 single-threaded (their 8-thread
traffic comes from L3 contention, as in the paper's 8-ILP discussion).

Footprint reference points (full scale, 64 B lines): L1D holds 1024
lines, the L2 8192 lines, the L3 65536 lines.  Regions sized well
beyond 65536 lines are DRAM-resident.  The numbers are *statistical
stand-ins*, not measurements: they encode the well-known qualitative
behaviour of these benchmarks (mcf = pointer chasing over tens of MB;
swim/lucas/applu = large FP array streaming; eon/sixtrack = tiny
working sets).
"""

from __future__ import annotations

from repro.workloads.profile import AppProfile, Region

# Shorthand region constructors -------------------------------------------


def _stack(weight: float, lines: int = 256) -> Region:
    """Small hot region: stack, globals, hot structures -- L1-resident."""
    return Region(size_lines=lines, weight=weight, kind="random")


def _l2(weight: float, lines: int = 4096) -> Region:
    """Working set that overflows the L1 but fits the 8192-line L2."""
    return Region(size_lines=lines, weight=weight, kind="random", repeats=2)


def _l3(weight: float, lines: int = 32768) -> Region:
    """Working set that overflows the L2 but fits the 65536-line L3."""
    return Region(size_lines=lines, weight=weight, kind="random", repeats=2)


def _dram_rand(weight: float, lines: int = 524288, burst: int = 2) -> Region:
    """DRAM-resident pointer-style region (mostly row-buffer hostile)."""
    return Region(size_lines=lines, weight=weight, kind="random", burst=burst)


def _dram_stream(
    weight: float, lines: int = 393216, streams: int = 4, repeats: int = 5
) -> Region:
    """DRAM-resident sequential walks (row-buffer friendly)."""
    return Region(
        size_lines=lines, weight=weight, kind="stream", streams=streams,
        repeats=repeats,
    )


PROFILES: dict[str, AppProfile] = {}


def _register(profile: AppProfile) -> None:
    if profile.name in PROFILES:
        raise ValueError(f"duplicate profile {profile.name}")
    PROFILES[profile.name] = profile


# ---------------------------------------------------------------------------
# Compute-bound ("ILP") applications

_register(AppProfile(
    name="sixtrack", category="ILP",
    mem_frac=0.18, store_frac=0.30, branch_frac=0.08, mispredict_rate=0.02,
    fp_frac=0.60, mult_frac=0.20, dep_mean=7.0,
    regions=(_stack(0.82, 192), _l2(0.18, 2048)),
))

_register(AppProfile(
    name="eon", category="ILP",
    mem_frac=0.28, store_frac=0.40, branch_frac=0.11, mispredict_rate=0.03,
    fp_frac=0.25, mult_frac=0.12, dep_mean=5.0,
    regions=(_stack(0.80, 256), _l2(0.20, 1536)),
))

_register(AppProfile(
    name="mesa", category="ILP",
    mem_frac=0.26, store_frac=0.35, branch_frac=0.09, mispredict_rate=0.03,
    fp_frac=0.40, mult_frac=0.15, dep_mean=6.0,
    regions=(_stack(0.68, 256), _l2(0.28, 3072), _l3(0.04, 4096)),
))

_register(AppProfile(
    name="crafty", category="ILP",
    mem_frac=0.27, store_frac=0.25, branch_frac=0.13, mispredict_rate=0.08,
    fp_frac=0.00, mult_frac=0.08, dep_mean=5.0,
    regions=(_stack(0.65, 320), _l2(0.31, 3072), _l3(0.04, 4096)),
))

_register(AppProfile(
    name="gzip", category="ILP",
    mem_frac=0.24, store_frac=0.30, branch_frac=0.15, mispredict_rate=0.07,
    fp_frac=0.00, mult_frac=0.05, dep_mean=4.0,
    regions=(_stack(0.58, 256), _l2(0.30, 4096), _l3(0.119, 4096),
             _dram_rand(0.001, 131072)),
))

_register(AppProfile(
    name="bzip2", category="ILP",
    mem_frac=0.26, store_frac=0.35, branch_frac=0.13, mispredict_rate=0.08,
    fp_frac=0.00, mult_frac=0.05, dep_mean=4.0,
    regions=(_stack(0.55, 256), _l2(0.28, 5120), _l3(0.168, 4096),
             _dram_rand(0.002, 131072)),
))

_register(AppProfile(
    name="galgel", category="ILP",
    mem_frac=0.30, store_frac=0.25, branch_frac=0.06, mispredict_rate=0.01,
    fp_frac=0.70, mult_frac=0.25, dep_mean=8.0,
    regions=(_stack(0.55, 256), _l2(0.42, 6144), _l3(0.03, 4096)),
))

_register(AppProfile(
    name="wupwise", category="ILP",
    mem_frac=0.28, store_frac=0.30, branch_frac=0.05, mispredict_rate=0.01,
    fp_frac=0.65, mult_frac=0.30, dep_mean=8.0,
    regions=(_stack(0.55, 256), _l2(0.30, 4096), _l3(0.15, 4096)),
))

_register(AppProfile(
    name="perlbmk", category="ILP",
    mem_frac=0.30, store_frac=0.40, branch_frac=0.14, mispredict_rate=0.05,
    fp_frac=0.00, mult_frac=0.05, dep_mean=4.0,
    regions=(_stack(0.62, 320), _l2(0.33, 3584), _l3(0.05, 4096)),
))

_register(AppProfile(
    name="fma3d", category="ILP",
    mem_frac=0.30, store_frac=0.35, branch_frac=0.07, mispredict_rate=0.02,
    fp_frac=0.55, mult_frac=0.20, dep_mean=6.0,
    regions=(_stack(0.52, 256), _l2(0.33, 4096), _l3(0.15, 4096)),
))

# ---------------------------------------------------------------------------
# Middle-of-the-road applications

_register(AppProfile(
    name="gap", category="MID",
    mem_frac=0.30, store_frac=0.35, branch_frac=0.10, mispredict_rate=0.04,
    fp_frac=0.05, mult_frac=0.10, dep_mean=5.0,
    regions=(_stack(0.47, 256), _l2(0.30, 4096), _l3(0.225, 8192),
             _dram_rand(0.005, 262144)),
))

_register(AppProfile(
    name="vortex", category="MID",
    mem_frac=0.33, store_frac=0.40, branch_frac=0.12, mispredict_rate=0.03,
    fp_frac=0.00, mult_frac=0.05, dep_mean=5.0,
    regions=(_stack(0.45, 320), _l2(0.30, 5120), _l3(0.245, 8192),
             _dram_rand(0.005, 262144)),
))

_register(AppProfile(
    name="gcc", category="MID",
    mem_frac=0.32, store_frac=0.40, branch_frac=0.15, mispredict_rate=0.06,
    fp_frac=0.00, mult_frac=0.05, dep_mean=4.0, icache_miss_rate=0.01,
    regions=(_stack(0.44, 384), _l2(0.30, 5120), _l3(0.252, 8192),
             _dram_rand(0.008, 262144)),
))

_register(AppProfile(
    name="parser", category="MID",
    mem_frac=0.30, store_frac=0.30, branch_frac=0.15, mispredict_rate=0.07,
    fp_frac=0.00, mult_frac=0.05, dep_mean=4.0, ptr_chase=0.15,
    regions=(_stack(0.45, 256), _l2(0.28, 4096), _l3(0.26, 8192),
             _dram_rand(0.01, 262144)),
))

_register(AppProfile(
    name="mgrid", category="MID",
    mem_frac=0.34, store_frac=0.25, branch_frac=0.04, mispredict_rate=0.01,
    fp_frac=0.70, mult_frac=0.25, dep_mean=8.0,
    regions=(_stack(0.40, 192), _l2(0.27, 4096), _l3(0.27, 8192),
             _dram_stream(0.06, 262144, streams=3, repeats=8)),
))

_register(AppProfile(
    name="twolf", category="MID",
    mem_frac=0.30, store_frac=0.25, branch_frac=0.13, mispredict_rate=0.08,
    fp_frac=0.05, mult_frac=0.08, dep_mean=4.0, ptr_chase=0.10,
    regions=(_stack(0.42, 256), _l2(0.28, 4096), _l3(0.285, 8192),
             _dram_rand(0.015, 262144)),
))

_register(AppProfile(
    name="apsi", category="MID",
    mem_frac=0.32, store_frac=0.30, branch_frac=0.06, mispredict_rate=0.02,
    fp_frac=0.60, mult_frac=0.20, dep_mean=7.0,
    regions=(_stack(0.40, 256), _l2(0.28, 4096), _l3(0.26, 8192),
             _dram_stream(0.06, 262144, streams=3, repeats=8)),
))

_register(AppProfile(
    name="art", category="MID",
    mem_frac=0.35, store_frac=0.20, branch_frac=0.08, mispredict_rate=0.02,
    fp_frac=0.55, mult_frac=0.25, dep_mean=6.0,
    regions=(_stack(0.38, 192), _l2(0.26, 6144), _l3(0.28, 8192),
             _dram_stream(0.08, 196608, streams=2, repeats=6)),
))

# ---------------------------------------------------------------------------
# Memory-bound ("MEM") applications, in rising CPI_mem order

_register(AppProfile(
    name="facerec", category="MEM",
    mem_frac=0.33, store_frac=0.25, branch_frac=0.06, mispredict_rate=0.02,
    fp_frac=0.55, mult_frac=0.20, dep_mean=7.0, cluster=20.0,
    regions=(_stack(0.36, 256), _l2(0.23, 4096), _l3(0.27, 6144),
             _dram_stream(0.14, 327680, streams=4, repeats=5)),
))

_register(AppProfile(
    name="vpr", category="MEM",
    mem_frac=0.32, store_frac=0.30, branch_frac=0.12, mispredict_rate=0.09,
    fp_frac=0.10, mult_frac=0.08, dep_mean=4.0, ptr_chase=0.15, cluster=12.0,
    regions=(_stack(0.40, 256), _l2(0.27, 4096), _l3(0.295, 6144),
             _dram_rand(0.035, 327680)),
))

_register(AppProfile(
    name="applu", category="MEM",
    mem_frac=0.36, store_frac=0.30, branch_frac=0.04, mispredict_rate=0.01,
    fp_frac=0.70, mult_frac=0.25, dep_mean=9.0, cluster=24.0,
    regions=(_stack(0.32, 192), _l2(0.20, 4096), _l3(0.28, 8192),
             _dram_stream(0.20, 524288, streams=4, repeats=5)),
))

_register(AppProfile(
    name="equake", category="MEM",
    mem_frac=0.36, store_frac=0.25, branch_frac=0.08, mispredict_rate=0.03,
    fp_frac=0.50, mult_frac=0.20, dep_mean=6.0, ptr_chase=0.10, cluster=16.0,
    regions=(_stack(0.375, 256), _l2(0.22, 4096), _l3(0.24, 6144),
             _dram_stream(0.15, 393216, streams=3, repeats=5),
             _dram_rand(0.015, 262144)),
))

_register(AppProfile(
    name="lucas", category="MEM",
    mem_frac=0.34, store_frac=0.30, branch_frac=0.03, mispredict_rate=0.01,
    fp_frac=0.75, mult_frac=0.30, dep_mean=9.0, cluster=32.0,
    regions=(_stack(0.32, 192), _l2(0.16, 4096), _l3(0.20, 6144),
             _dram_stream(0.32, 655360, streams=2, repeats=5)),
))

_register(AppProfile(
    name="swim", category="MEM",
    mem_frac=0.36, store_frac=0.30, branch_frac=0.02, mispredict_rate=0.01,
    fp_frac=0.75, mult_frac=0.25, dep_mean=10.0, cluster=32.0,
    regions=(_stack(0.30, 192), _l2(0.14, 4096), _l3(0.20, 6144),
             _dram_stream(0.36, 786432, streams=6, repeats=5)),
))

_register(AppProfile(
    name="ammp", category="MEM",
    mem_frac=0.36, store_frac=0.25, branch_frac=0.08, mispredict_rate=0.03,
    fp_frac=0.50, mult_frac=0.20, dep_mean=5.0, ptr_chase=0.05, cluster=28.0,
    regions=(_stack(0.42, 256), _l2(0.25, 4096), _l3(0.25, 6144),
             _dram_rand(0.08, 393216)),
))

_register(AppProfile(
    name="mcf", category="MEM",
    mem_frac=0.38, store_frac=0.20, branch_frac=0.17, mispredict_rate=0.08,
    fp_frac=0.00, mult_frac=0.05, dep_mean=3.0, ptr_chase=0.60, cluster=10.0,
    regions=(_stack(0.40, 256), _l2(0.24, 4096), _l3(0.24, 6144),
             _dram_rand(0.12, 1048576)),
))


def profile_names() -> list[str]:
    """All 26 application names, sorted alphabetically."""
    return sorted(PROFILES)


def get_profile(name: str) -> AppProfile:
    """Look up an application profile by SPEC name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {profile_names()}"
        ) from None
