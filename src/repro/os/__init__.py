"""Operating-system-level memory management.

The paper touches the OS in two places:

* Section 6 notes its simulation uses **bin hopping** — virtual pages
  are mapped to physical pages sequentially, which reduces cache
  interference between threads (citing Lo et al.).
* Section 5.4 suggests **OS manipulations of memory allocations (for
  example, using the page coloring)** as a direction for reducing
  row-buffer conflicts between threads.

:mod:`repro.os.vm` implements both (plus a random-allocation strawman)
as a virtual-to-physical translation layer that can be inserted in
front of the cache hierarchy.
"""

from repro.os.vm import VirtualMemory, vm_policy_names

__all__ = ["VirtualMemory", "vm_policy_names"]
