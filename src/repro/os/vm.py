"""Virtual-to-physical page allocation policies.

:class:`VirtualMemory` lazily allocates a physical frame the first
time a (thread, virtual page) pair is touched and translates all later
accesses.  Three allocation policies:

* ``"bin-hopping"`` — frames are handed out sequentially from a single
  global counter, regardless of thread or virtual address.  This is
  the policy the paper's simulation uses (Section 6, after Lo et al.):
  pages touched close together in time land in consecutive frames, so
  concurrent threads' working sets interleave smoothly across cache
  sets and DRAM banks.
* ``"page-coloring"`` — frames are partitioned into ``colors`` classes
  by ``frame % colors``; each thread owns a disjoint subset of colors
  and its pages are allocated round-robin within that subset.  With
  colors aligned to the DRAM bank count this implements exactly the
  Section 5.4 suggestion: different threads' pages cannot collide on a
  bank's row buffer.
* ``"random"`` — frames drawn uniformly at random (strawman baseline;
  maximizes accidental conflicts).

Physical memory is unbounded (the paper's workloads never swap); a
frame is never handed out twice.
"""

from __future__ import annotations

# Typing only: VirtualMemory accepts any random.Random-compatible
# source; live systems inject seed-derived DeterministicRng children.
import random  # repro: allow(DET001) typing only; instances are injected
from typing import Dict, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng

_POLICIES = ("bin-hopping", "page-coloring", "random")


def vm_policy_names() -> tuple[str, ...]:
    """Allocation policies accepted by :class:`VirtualMemory`."""
    return _POLICIES


class VirtualMemory:
    """Lazy page allocator + translator for all hardware threads.

    Parameters
    ----------
    policy:
        One of :func:`vm_policy_names`.
    page_bytes:
        Page size (must be a power of two; Table 1-era systems use
        8 KB).
    colors:
        Number of frame colors (page-coloring only).  Align with the
        number of DRAM banks touched by the page-index bits — e.g.
        ``banks_per_channel * channels`` — to partition banks between
        threads.
    num_threads:
        Thread count used to partition colors (page-coloring only).
    rng:
        Randomness source for the ``"random"`` policy.
    """

    def __init__(
        self,
        policy: str = "bin-hopping",
        page_bytes: int = 8192,
        colors: int = 8,
        num_threads: int = 1,
        rng: random.Random | None = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ConfigError(
                f"unknown VM policy {policy!r}; available: {_POLICIES}"
            )
        if page_bytes < 1 or page_bytes & (page_bytes - 1):
            raise ConfigError(f"page_bytes must be a power of two, got {page_bytes}")
        if colors < 1:
            raise ConfigError(f"colors must be >= 1, got {colors}")
        if num_threads < 1:
            raise ConfigError(f"num_threads must be >= 1, got {num_threads}")
        self.policy = policy
        self.page_bytes = page_bytes
        self.colors = colors
        self.num_threads = num_threads
        # Fixed-seed default keeps standalone construction reproducible
        # (and matches the old raw-random default's stream).
        self._rng = rng or DeterministicRng(12345, tag="vm:default")
        self._page_table: Dict[Tuple[int, int], int] = {}
        self._next_frame = 0
        # page-coloring: per-color sequential counters plus each
        # thread's rotation position within its color set.
        self._color_counters = [0] * colors
        self._thread_color_pos: Dict[int, int] = {}
        self._random_used: set[int] = set()

    # ------------------------------------------------------------------

    def translate(self, thread_id: int, vaddr: int) -> int:
        """Translate a virtual byte address; allocates on first touch."""
        page_bytes = self.page_bytes
        vpage = vaddr // page_bytes
        key = (thread_id, vpage)
        frame = self._page_table.get(key)
        if frame is None:
            frame = self._allocate(thread_id)
            self._page_table[key] = frame
        return frame * page_bytes + (vaddr % page_bytes)

    def _allocate(self, thread_id: int) -> int:
        if self.policy == "bin-hopping":
            frame = self._next_frame
            self._next_frame += 1
            return frame
        if self.policy == "page-coloring":
            colors = self._thread_colors(thread_id)
            position = self._thread_color_pos.get(thread_id, 0)
            color = colors[position % len(colors)]
            self._thread_color_pos[thread_id] = position + 1
            index = self._color_counters[color]
            self._color_counters[color] = index + 1
            return color + self.colors * index
        # random
        while True:
            frame = self._rng.randrange(1 << 24)
            if frame not in self._random_used:
                self._random_used.add(frame)
                return frame

    def _thread_colors(self, thread_id: int) -> list[int]:
        """The disjoint color subset owned by ``thread_id``.

        Colors are dealt round-robin over threads; with fewer colors
        than threads, threads share colors modulo the color count.
        """
        share = thread_id % min(self.num_threads, self.colors)
        owned = [
            c for c in range(self.colors)
            if c % min(self.num_threads, self.colors) == share
        ]
        return owned or list(range(self.colors))

    # ------------------------------------------------------------------

    @property
    def pages_allocated(self) -> int:
        return len(self._page_table)

    def frame_of(self, thread_id: int, vaddr: int) -> int | None:
        """The allocated frame for an address, or None if untouched."""
        return self._page_table.get((thread_id, vaddr // self.page_bytes))
