"""``python -m repro`` — experiment CLI entry point."""

import sys

from repro.experiments.cli import main

sys.exit(main())
