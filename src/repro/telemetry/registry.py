"""Hierarchical metric registry: counters, gauges, histograms, series.

Components register instruments against a shared dotted-name hierarchy
(``cpu.t0.rob_occupancy``, ``dram.ch0.row_hits``, ``cache.mshr.merges``)
and update them through tiny objects with ``__slots__``.  A
:class:`NullRegistry` hands out shared no-op instruments instead, so a
component written against the registry API costs a single dynamic
dispatch per update when telemetry is disabled -- and components on
per-cycle paths additionally guard with ``if tracer is not None`` so
the disabled configuration stays bit-identical and near-free.

Snapshots are plain nested dicts of builtins (sorted keys), so they
pickle across process pools and merge deterministically:
:meth:`MetricRegistry.merge` folds any number of snapshots in argument
order, summing counters and histograms and keeping the last write for
gauges.
"""

from __future__ import annotations

from typing import Iterable, Mapping


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins scalar (rates, occupancies, ratios)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Log-scale (power-of-two bin) histogram of non-negative values.

    Bin ``b`` counts observations with ``bit_length() == b``, i.e. bin
    0 holds zeros, bin 1 holds 1, bin 2 holds 2-3, bin 3 holds 4-7 and
    so on -- the standard latency/occupancy binning that keeps the
    footprint O(log(max)) regardless of run length.
    """

    __slots__ = ("name", "bins", "count", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.bins: dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative value {value}")
        b = int(value).bit_length()
        self.bins[b] = self.bins.get(b, 0) + 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name}, n={self.count})"


class Series:
    """Append-only ``(time, value)`` samples (timeline-style data)."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[tuple[int, int]] = []

    def record(self, t: int, value: int) -> None:
        self.samples.append((t, value))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Series({self.name}, n={len(self.samples)})"


class _NullCounter:
    __slots__ = ()

    def add(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: int) -> None:
        pass


class _NullSeries:
    __slots__ = ()

    def record(self, t: int, value: int) -> None:
        pass


#: Shared no-op instruments handed out by :class:`NullRegistry`.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_SERIES = _NullSeries()


class MetricRegistry:
    """Get-or-create instrument store keyed by dotted metric name.

    Requesting the same name twice returns the same instrument;
    requesting it with a different type is an error (one name, one
    meaning).
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    # ------------------------------------------------------------------
    # instrument factories

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def series(self, name: str) -> Series:
        return self._get(name, Series)

    # ------------------------------------------------------------------
    # bulk helpers

    def add_counters(self, prefix: str, values: Mapping[str, int]) -> None:
        """Fold a plain ``{name: count}`` mapping into counters."""
        for key in sorted(values):
            self.counter(f"{prefix}.{key}").add(values[key])

    def set_gauges(self, prefix: str, values: Mapping[str, float]) -> None:
        for key in sorted(values):
            self.gauge(f"{prefix}.{key}").set(values[key])

    def names(self, prefix: str = "") -> list[str]:
        """Registered metric names under ``prefix``, sorted."""
        return sorted(
            n for n in self._metrics
            if not prefix or n == prefix or n.startswith(prefix + ".")
        )

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # snapshots

    def snapshot(self) -> dict:
        """Plain-builtin, picklable, deterministic view of every metric."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        series: dict[str, list] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            elif isinstance(metric, Histogram):
                histograms[name] = {
                    "bins": dict(sorted(metric.bins.items())),
                    "count": metric.count,
                    "total": metric.total,
                }
            else:
                series[name] = list(metric.samples)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "series": series,
        }

    @staticmethod
    def merge(snapshots: Iterable[dict]) -> dict:
        """Fold snapshots in argument order into one snapshot dict.

        Counters and histograms sum; gauges keep the last write; series
        concatenate.  Deterministic given the input order, which is how
        parallel runs aggregate worker metrics reproducibly (results
        are collected in submission order, never completion order).
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        series: dict[str, list] = {}
        for snap in snapshots:
            if not snap:
                continue
            for name, value in snap.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            gauges.update(snap.get("gauges", {}))
            for name, h in snap.get("histograms", {}).items():
                into = histograms.setdefault(
                    name, {"bins": {}, "count": 0, "total": 0}
                )
                for b, c in h["bins"].items():
                    into["bins"][b] = into["bins"].get(b, 0) + c
                into["count"] += h["count"]
                into["total"] += h["total"]
            for name, samples in snap.get("series", {}).items():
                series.setdefault(name, []).extend(samples)
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                k: {**v, "bins": dict(sorted(v["bins"].items()))}
                for k, v in sorted(histograms.items())
            },
            "series": dict(sorted(series.items())),
        }


class NullRegistry(MetricRegistry):
    """The disabled fast path: every factory returns a shared no-op.

    ``snapshot()`` is always empty and instruments store nothing, so a
    component holding null instruments pays one no-op call per update
    and the registry itself never grows.
    """

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return NULL_HISTOGRAM  # type: ignore[return-value]

    def series(self, name: str) -> Series:  # type: ignore[override]
        return NULL_SERIES  # type: ignore[return-value]

    def add_counters(self, prefix, values) -> None:  # type: ignore[override]
        pass

    def set_gauges(self, prefix, values) -> None:  # type: ignore[override]
        pass


#: Shared disabled registry (stateless, safe to share everywhere).
NULL_REGISTRY = NullRegistry()


def _prometheus_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus grammar."""
    return "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )


def prometheus_text(snapshot: Mapping, prefix: str = "repro") -> str:
    """Render a registry snapshot in the Prometheus text format.

    Counters and gauges map directly; log2 histograms become native
    Prometheus histograms — bin ``b`` holds values with
    ``bit_length() == b``, i.e. everything ``<= 2**b - 1`` once
    cumulated, which is exactly the ``le`` bucket contract — plus the
    standard ``_sum``/``_count`` series.  Series are omitted (they are
    trace data, not scrape data).  Output is sorted, so identical
    snapshots scrape identically.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = f"{prefix}_{_prometheus_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = f"{prefix}_{_prometheus_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = f"{prefix}_{_prometheus_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for b in sorted(int(k) for k in hist["bins"]):
            cumulative += hist["bins"][b] if b in hist["bins"] else hist["bins"][str(b)]
            le = (1 << b) - 1
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {hist['total']}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n" if lines else ""
