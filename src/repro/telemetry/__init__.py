"""repro.telemetry -- unified instrumentation for the simulator.

Three pieces, designed to be wired through every component while
costing near-nothing when disabled:

* :class:`~repro.telemetry.registry.MetricRegistry` -- counters,
  gauges, log-scale histograms, and timeline series registered under a
  shared dotted hierarchy (``cpu.t0.rob_occupancy``,
  ``dram.ch0.row_hits``); the :class:`NullRegistry` fast path hands
  out shared no-op instruments so disabled runs stay bit-identical.
* :class:`~repro.telemetry.tracer.EventTracer` -- a bounded ring
  buffer of structured events (fetch gating, MSHR allocation,
  PRE/ACT/CAS commands, scheduler picks with reasons) exported as
  Chrome-trace/Perfetto JSON or compact JSONL.
* :class:`~repro.telemetry.manifest.RunManifest` -- per-run provenance
  (config hash, seed, workload mix, package version, wall time)
  emitted by the experiment runners and merged deterministically
  across process-pool workers.

Usage::

    from repro import SystemConfig, run_mix
    from repro.telemetry import Telemetry, EventTracer

    tel = Telemetry(tracer=EventTracer())
    result = run_mix(SystemConfig(), ["mcf", "gzip"], telemetry=tel)
    tel.tracer.write_chrome("trace.json")      # open in ui.perfetto.dev
    print(tel.registry.snapshot()["counters"]["dram.ch0.row_hits"])

See ``docs/observability.md`` for the naming scheme and trace schema.
"""

from __future__ import annotations

from repro.telemetry.manifest import (
    RunManifest,
    RunRecord,
    config_hash,
    default_manifest_dir,
    run_id,
)
from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    Series,
    prometheus_text,
)
from repro.telemetry.tracer import (
    EventTracer,
    TraceEvent,
    load_jsonl,
    validate_chrome_trace,
)


class Telemetry:
    """One run's telemetry session: a registry plus an optional tracer.

    Components accept ``telemetry=None`` (disabled, the default
    everywhere) or a ``Telemetry`` instance.  ``Telemetry()`` enables
    metrics only; pass ``tracer=EventTracer()`` to also record events.
    """

    __slots__ = ("registry", "tracer")

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        tracer: EventTracer | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer

    @property
    def enabled(self) -> bool:
        """Whether any sink is live (null registry + no tracer = off)."""
        return self.registry.enabled or self.tracer is not None

    @classmethod
    def disabled(cls) -> "Telemetry":
        """An explicitly-off session (null registry, no tracer)."""
        return cls(registry=NULL_REGISTRY, tracer=None)

    def snapshot(self) -> dict:
        return self.registry.snapshot()


__all__ = [
    "Counter",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "RunManifest",
    "RunRecord",
    "Series",
    "Telemetry",
    "TraceEvent",
    "config_hash",
    "default_manifest_dir",
    "load_jsonl",
    "prometheus_text",
    "run_id",
    "validate_chrome_trace",
]
