"""Run manifests: what ran, on what configuration, and what it measured.

A manifest is the provenance record of an experiment invocation: one
:class:`RunRecord` per distinct ``(config, apps)`` simulation (config
hash, seed, workload mix, where the result came from, wall time) plus
run-wide metadata (package version, worker count, merged metric
snapshot).  :class:`~repro.experiments.runner.Runner` and
:class:`~repro.experiments.parallel.ParallelRunner` collect records for
every run they serve; the CLI writes the merged manifest next to the
results and prints its path, so any figure or table can be traced back
to the exact configuration that produced it.

Run identities are content-derived (SHA-256 over the config cache key
and app tuple), so the same job set always yields the same manifest
filename and the metric aggregation -- performed in job-submission
order -- is deterministic across serial and process-pool execution.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.telemetry.registry import MetricRegistry

#: Manifest document schema version.
MANIFEST_SCHEMA = 1


def _package_version() -> str:
    from repro import __version__  # local import: repro imports telemetry

    return __version__


def config_hash(config) -> str:
    """Stable hex digest of everything that affects a simulation."""
    return hashlib.sha256(repr(config.cache_key()).encode()).hexdigest()


def run_id(config, apps: Sequence[str]) -> str:
    """Deterministic identity of one ``(config, apps)`` run."""
    key = (config.cache_key(), tuple(apps))
    return hashlib.sha256(repr(key).encode()).hexdigest()


@dataclass(frozen=True)
class RunRecord:
    """Provenance of one simulation inside a manifest."""

    run_id: str
    config_hash: str
    seed: int
    apps: tuple[str, ...]
    scheduler: str
    fetch_policy: str
    instructions_per_thread: int
    warmup_instructions: int
    #: Where the result came from: simulated | memo | disk-cache | pool.
    source: str = "simulated"
    wall_time_s: float = 0.0
    #: Execution engine the result was produced under.  Exact engines
    #: ("reference"/"fast") are interchangeable; "sampled" marks the
    #: result as an estimate.
    engine: str = "fast"
    #: Sampled-engine window/error metadata (schedule knobs, windows
    #: run, measured fraction, CPI confidence interval) — None for
    #: exact-engine runs.
    sampling: dict | None = None

    def as_dict(self) -> dict:
        """JSON-safe view of this record (what the service API serves)."""
        return asdict(self)

    @classmethod
    def from_run(
        cls, config, apps: Sequence[str],
        source: str = "simulated", wall_time_s: float = 0.0,
        sampling: dict | None = None,
    ) -> "RunRecord":
        engine = getattr(config, "engine", "fast")
        if sampling is None and engine == "sampled":
            # No per-run metadata supplied (e.g. a cache hit): record
            # at least the schedule, which is part of the run identity.
            s = config.sampling
            sampling = {
                "detail_instructions": s.detail_instructions,
                "ff_instructions": s.ff_instructions,
                "window_warmup": s.window_warmup,
                "gap_smoothing": s.gap_smoothing,
            }
        return cls(
            run_id=run_id(config, apps),
            config_hash=config_hash(config),
            seed=config.seed,
            apps=tuple(apps),
            scheduler=config.scheduler,
            fetch_policy=config.fetch_policy,
            instructions_per_thread=config.instructions_per_thread,
            warmup_instructions=config.warmup_instructions,
            source=source,
            wall_time_s=wall_time_s,
            engine=engine,
            sampling=sampling,
        )


@dataclass
class RunManifest:
    """A batch of run records plus run-wide metadata and metrics."""

    records: list[RunRecord] = field(default_factory=list)
    package_version: str = field(default_factory=_package_version)
    workers: int = 1
    #: Merged metric snapshot (see MetricRegistry.merge); empty dicts
    #: when the batch ran without telemetry.
    metrics: dict = field(default_factory=dict)
    #: Wall-clock time of the whole batch, seconds.
    wall_time_s: float = 0.0
    #: Unix timestamp the manifest was created (not part of identity).
    created: float = field(default_factory=time.time)
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def manifest_id(self) -> str:
        """Content-derived identity: stable for the same job set."""
        ids = sorted(r.run_id for r in self.records)
        return hashlib.sha256("\n".join(ids).encode()).hexdigest()

    def to_dict(self) -> dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "package": "repro",
            "package_version": self.package_version,
            "manifest_id": self.manifest_id,
            "created": self.created,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "runs": [asdict(r) for r in self.records],
            "metrics": self.metrics,
            "extra": self.extra,
        }

    def write(self, directory: str | os.PathLike) -> Path:
        """Write ``manifest-<id>.json`` under ``directory``; return path."""
        directory = Path(directory).expanduser()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"manifest-{self.manifest_id[:16]}.json"
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def read(cls, path) -> dict:
        """Load a written manifest back as a plain dict."""
        with open(path) as handle:
            return json.load(handle)

    # ------------------------------------------------------------------

    @classmethod
    def merge(cls, manifests: Iterable["RunManifest"]) -> "RunManifest":
        """Fold per-worker/per-driver manifests into one.

        Records concatenate in argument order (deduplicated by run id,
        first occurrence wins); metric snapshots merge with
        :meth:`MetricRegistry.merge`, so the result is deterministic
        for a deterministic input order.
        """
        records: list[RunRecord] = []
        seen: set[str] = set()
        snapshots: list[dict] = []
        workers = 1
        wall = 0.0
        extra: dict = {}
        version = _package_version()
        for m in manifests:
            version = m.package_version
            workers = max(workers, m.workers)
            wall += m.wall_time_s
            extra.update(m.extra)
            if m.metrics:
                snapshots.append(m.metrics)
            for record in m.records:
                if record.run_id not in seen:
                    seen.add(record.run_id)
                    records.append(record)
        return cls(
            records=records,
            package_version=version,
            workers=workers,
            metrics=MetricRegistry.merge(snapshots) if snapshots else {},
            wall_time_s=wall,
            extra=extra,
        )


def default_manifest_dir() -> Path:
    """Where manifests go when no ``--manifest-dir`` is given.

    ``REPRO_MANIFEST_DIR`` overrides; otherwise a stable directory
    under the system temp dir, so test and smoke runs never litter the
    working tree.
    """
    override = os.environ.get("REPRO_MANIFEST_DIR")
    if override:
        return Path(override)
    import tempfile

    return Path(tempfile.gettempdir()) / "repro-manifests"
