"""Structured event tracer with Chrome-trace / Perfetto and JSONL export.

The tracer records pipeline and DRAM events (fetch gating, MSHR
allocation, PRE/ACT/CAS commands, scheduler picks with their reason)
into a bounded ring buffer.  Hot paths hold the tracer behind an
``if tracer is not None`` guard, so a run without tracing executes the
exact same instruction sequence it did before the tracer existed.

Timestamps are simulated CPU cycles.  The Chrome exporter writes them
into the ``ts`` field unscaled (one cycle renders as one microsecond),
which is the conventional trick for cycle-level traces: absolute time
is meaningless in the viewer, relative structure is what matters.

Export formats
--------------
* :meth:`EventTracer.chrome_trace` / :meth:`write_chrome` -- the Trace
  Event Format consumed by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``: ``{"traceEvents": [...]}`` with complete
  (``"ph": "X"``) and instant (``"ph": "i"``) events.
* :meth:`write_jsonl` -- one compact JSON object per line, for ad-hoc
  ``grep``/pandas analysis of big traces.

:func:`validate_chrome_trace` checks a document against the subset of
the trace-event schema this module emits; the test suite runs every
exported trace through it.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterable, NamedTuple


class TraceEvent(NamedTuple):
    """One recorded event (``dur`` is None for instant events)."""

    ts: int
    name: str
    cat: str
    tid: int
    dur: int | None
    args: dict | None


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent` records.

    When the buffer is full the *oldest* events are dropped (the tail
    of a run is almost always the interesting part); ``dropped`` says
    how many were lost so exporters can annotate truncation.
    """

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    # ------------------------------------------------------------------
    # recording

    def emit(
        self,
        ts: int,
        name: str,
        cat: str,
        tid: int = 0,
        dur: int | None = None,
        args: dict | None = None,
    ) -> None:
        """Record one event at cycle ``ts`` (duration makes it a span)."""
        self._events.append(TraceEvent(ts, name, cat, tid, dur, args))
        self.emitted += 1

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self, cat: str | None = None) -> list[TraceEvent]:
        """Recorded events in emission order, optionally one category."""
        if cat is None:
            return list(self._events)
        return [e for e in self._events if e.cat == cat]

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    # ------------------------------------------------------------------
    # export

    def chrome_trace(self, pid: int = 0) -> dict:
        """The trace as a Trace-Event-Format document (a plain dict)."""
        trace_events: list[dict] = []
        for e in self._events:
            event: dict = {
                "name": e.name,
                "cat": e.cat,
                "ts": e.ts,
                "pid": pid,
                "tid": e.tid,
            }
            if e.dur is None:
                event["ph"] = "i"
                event["s"] = "t"  # thread-scoped instant
            else:
                event["ph"] = "X"
                event["dur"] = e.dur
            if e.args:
                event["args"] = e.args
            trace_events.append(event)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "cpu-cycles (1 cycle rendered as 1 us)",
                "emitted": self.emitted,
                "dropped": self.dropped,
            },
        }

    def write_chrome(self, path, pid: int = 0) -> None:
        """Write the Chrome-trace/Perfetto JSON document to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(pid=pid), handle)

    def write_jsonl(self, path) -> None:
        """Write one compact JSON object per event to ``path``."""
        with open(path, "w") as handle:
            for e in self._events:
                record: dict = {"ts": e.ts, "name": e.name, "cat": e.cat,
                                "tid": e.tid}
                if e.dur is not None:
                    record["dur"] = e.dur
                if e.args:
                    record["args"] = e.args
                handle.write(json.dumps(record, separators=(",", ":")))
                handle.write("\n")


def validate_chrome_trace(document: dict) -> list[str]:
    """Validate a document against the trace-event schema we emit.

    Returns a list of human-readable problems; an empty list means the
    document is a well-formed Trace Event Format trace (JSON Object
    Format, ``X``/``i`` phases).
    """
    errors: list[str] = []
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key, types in (
            ("name", str), ("cat", str), ("ph", str),
            ("ts", (int, float)), ("pid", int), ("tid", int),
        ):
            if not isinstance(event.get(key), types):
                errors.append(f"{where}: missing or mistyped {key!r}")
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            errors.append(f"{where}: unsupported phase {ph!r}")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            errors.append(f"{where}: 'X' event without numeric 'dur'")
        if ph == "i" and event.get("s") not in ("g", "p", "t"):
            errors.append(f"{where}: 'i' event scope must be g|p|t")
        ts = event.get("ts")
        if isinstance(ts, (int, float)) and ts < 0:
            errors.append(f"{where}: negative ts")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
    return errors


def load_jsonl(path) -> list[dict]:
    """Read a JSONL trace back as a list of dicts (test/analysis aid)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def events_from_iterable(events: Iterable[TraceEvent]) -> "EventTracer":
    """Build a tracer pre-loaded with events (exporter tests)."""
    tracer = EventTracer()
    for e in events:
        tracer.emit(*e)
    return tracer
