"""repro.service -- simulation-as-a-service over the experiment engine.

The ROADMAP's serving story, in four pieces that compose with (never
fork) the existing execution stack:

* :class:`~repro.service.store.ResultStore` -- the persistent
  :class:`~repro.experiments.parallel.ResultCache` generalized into a
  content-addressed artifact store: a versioned JSON index with
  per-entry integrity digests, atomic compare-and-publish writes, and
  ``stats``/``verify``/``gc`` maintenance.  Same file naming as the
  cache, so a store opened over any old ``--cache-dir`` serves its
  results.
* :class:`~repro.service.scheduler.CampaignScheduler` -- a daemon that
  accepts jobs and whole figure campaigns (expanded by the *real*
  drivers via :class:`~repro.service.jobs.PlanningRunner`), dedupes
  them by cache key with exactly-once semantics, and executes misses
  through the fault-tolerant batch executor with a crash-safe
  persisted queue (``--resume`` finishes interrupted campaigns).
* :mod:`~repro.service.api` -- a stdlib-only threaded HTTP API:
  ``POST /jobs`` answers stored results on a microsecond warm path (an
  in-memory LRU; a hit never spawns a simulation) and enqueues genuine
  misses; results, manifests, campaign progress, health, and
  Prometheus metrics are all ``GET``-able.
* :class:`~repro.service.client.ServiceClient` /
  :class:`~repro.service.client.ServiceRunner` -- a typed client and a
  drop-in :class:`~repro.experiments.runner.Runner` that make any
  figure driver run against a remote service transparently
  (``python -m repro fig10 --remote-store DIR``), bit-identical to a
  local run.

See ``docs/service.md`` for architecture, endpoints, and the
exactly-once contract.
"""

from __future__ import annotations

from repro.service.api import (
    DEFAULT_LRU_ENTRIES,
    PayloadLRU,
    ServiceApp,
    ServiceServer,
    make_server,
)
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceRunner,
    discover_url,
    write_server_info,
)
from repro.service.jobs import (
    JobSpec,
    PlanningRunner,
    campaign_id,
    campaign_jobs,
    campaign_names,
    config_from_dict,
    config_to_dict,
)
from repro.service.scheduler import CampaignScheduler
from repro.service.store import (
    GCReport,
    ResultStore,
    StoreStats,
    VerifyReport,
    payload_digest,
)

__all__ = [
    "CampaignScheduler",
    "DEFAULT_LRU_ENTRIES",
    "GCReport",
    "JobSpec",
    "PayloadLRU",
    "PlanningRunner",
    "ResultStore",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "ServiceRunner",
    "ServiceServer",
    "StoreStats",
    "VerifyReport",
    "campaign_id",
    "campaign_jobs",
    "campaign_names",
    "config_from_dict",
    "config_to_dict",
    "discover_url",
    "make_server",
    "payload_digest",
    "write_server_info",
]
