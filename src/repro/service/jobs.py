"""Job and campaign specifications: the service's wire format.

A job is ``(SystemConfig, apps)`` — exactly what ``run_many`` takes —
serialized to plain JSON so it can cross an HTTP boundary and land in
a persisted queue.  The codec round-trips every field (including
nested :class:`~repro.cpu.core.CoreParams` and its enum-keyed latency
table), so a config rebuilt from JSON has the *same*
``config.cache_key()`` — and therefore the same store key and run id —
as the original: a job submitted remotely is bit-for-bit the job a
local runner would have executed.

A campaign is a whole figure/ablation/sweep worth of jobs.  Rather
than re-encode each driver's job-planning logic (and let it drift),
:func:`campaign_jobs` runs the real driver against a
:class:`PlanningRunner` whose ``run_many`` captures the submitted job
list and aborts the driver before any simulation — every driver plans
its complete job list up front and submits it in one ``run_many``
call (see ``repro.experiments.figures``), so the capture *is* the
campaign.
"""

from __future__ import annotations

import dataclasses
import hashlib
import sys
from dataclasses import dataclass
from typing import Sequence

from repro.common.types import OpClass
from repro.cpu.core import CoreParams
from repro.engine.sampled import SamplingParams
from repro.experiments.config import SystemConfig
from repro.experiments.runner import Runner
from repro.telemetry.manifest import run_id


def config_to_dict(config: SystemConfig) -> dict:
    """Serialize a :class:`SystemConfig` to JSON-safe builtins."""
    doc = dataclasses.asdict(config)
    doc["core"]["latencies"] = {
        op.name: latency for op, latency in config.core.latencies.items()
    }
    return doc


def _intern_strings(doc: dict) -> dict:
    """Intern every string value (JSON produces fresh objects).

    A config field rebuilt from JSON would otherwise hold an equal-but-
    distinct string from the compile-time-interned literal the
    simulator uses internally, which changes pickle memo sharing — and
    the served payload bytes — without changing any value.
    """
    return {
        key: sys.intern(value) if isinstance(value, str) else value
        for key, value in doc.items()
    }


def config_from_dict(doc: dict) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output.

    Unknown fields raise ``ValueError`` (protocol drift must be loud,
    not silently dropped — a dropped field would silently change the
    job's identity).  Missing fields take their defaults, so clients
    may send sparse override dicts.
    """
    doc = _intern_strings(doc)
    core_doc = doc.pop("core", None)
    sampling_doc = doc.pop("sampling", None)
    known = {f.name for f in dataclasses.fields(SystemConfig)}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise ValueError(f"unknown SystemConfig field(s): {', '.join(unknown)}")
    if core_doc is not None:
        core_doc = _intern_strings(core_doc)
        core_known = {f.name for f in dataclasses.fields(CoreParams)}
        core_unknown = sorted(set(core_doc) - core_known)
        if core_unknown:
            raise ValueError(
                f"unknown CoreParams field(s): {', '.join(core_unknown)}"
            )
        latencies = core_doc.pop("latencies", None)
        if latencies is not None:
            unknown_ops = sorted(set(latencies) - {op.name for op in OpClass})
            if unknown_ops:
                raise ValueError(
                    f"unknown latency op class(es): {', '.join(unknown_ops)}"
                )
            # Rebuild in OpClass definition order, not wire order: dict
            # insertion order feeds the pickled bytes, and the served
            # payload must be bit-identical to a locally built config's.
            core_doc["latencies"] = {
                op: latencies[op.name] for op in OpClass
                if op.name in latencies
            }
        doc["core"] = CoreParams(**core_doc)
    if sampling_doc is not None:
        sampling_known = {f.name for f in dataclasses.fields(SamplingParams)}
        sampling_unknown = sorted(set(sampling_doc) - sampling_known)
        if sampling_unknown:
            raise ValueError(
                "unknown SamplingParams field(s): "
                f"{', '.join(sampling_unknown)}"
            )
        doc["sampling"] = SamplingParams(**sampling_doc)
    return SystemConfig(**doc)


@dataclass(frozen=True)
class JobSpec:
    """One simulation job as it travels through queue and API."""

    config: SystemConfig
    apps: tuple[str, ...]

    @classmethod
    def of(cls, config: SystemConfig, apps: Sequence[str]) -> "JobSpec":
        return cls(config=config, apps=tuple(apps))

    @property
    def run_id(self) -> str:
        """The telemetry/journal identity of this job."""
        return run_id(self.config, self.apps)

    def to_dict(self) -> dict:
        return {"config": config_to_dict(self.config), "apps": list(self.apps)}

    @classmethod
    def from_dict(cls, doc: dict) -> "JobSpec":
        apps = doc.get("apps")
        if not apps or not all(isinstance(a, str) for a in apps):
            raise ValueError("job spec needs a non-empty list of app names")
        return cls(
            config=config_from_dict(doc.get("config") or {}),
            apps=tuple(sys.intern(a) for a in apps),
        )


# ----------------------------------------------------------------------
# campaign expansion


class _PlanCaptured(Exception):
    """Raised by :class:`PlanningRunner` once the job list is captured."""


class PlanningRunner(Runner):
    """A :class:`Runner` that records ``run_many`` submissions.

    Figure/ablation drivers submit their complete job list through one
    up-front ``run_many`` call before computing anything; this runner
    captures that list and aborts the driver, turning any driver into
    a job enumerator at zero simulation cost.
    """

    def __init__(self) -> None:
        super().__init__()
        self.jobs: list[tuple[SystemConfig, tuple[str, ...]]] = []

    def run_many(self, jobs: Sequence) -> list:
        self.jobs = [(config, tuple(apps)) for config, apps in jobs]
        raise _PlanCaptured


def campaign_names() -> list[str]:
    """Every experiment/ablation name a campaign may reference."""
    from repro.experiments.ablations import ABLATIONS
    from repro.experiments.figures import EXPERIMENTS

    return sorted({**EXPERIMENTS, **ABLATIONS})


def campaign_jobs(
    experiment: str,
    config: SystemConfig | None = None,
    mixes: Sequence[str] | None = None,
) -> list[tuple[SystemConfig, tuple[str, ...]]]:
    """Expand one figure/ablation into its full deduplicated job list."""
    from repro.experiments.ablations import ABLATIONS
    from repro.experiments.figures import EXPERIMENTS

    drivers = {**EXPERIMENTS, **ABLATIONS}
    if experiment not in drivers:
        raise KeyError(
            f"unknown campaign experiment {experiment!r}; "
            f"known: {', '.join(campaign_names())}"
        )
    runner = PlanningRunner()
    kwargs: dict = {"config": config or SystemConfig(), "runner": runner}
    if mixes and experiment != "fig1":  # fig1 takes apps, not mixes
        kwargs["mixes"] = list(mixes)
    try:
        drivers[experiment](**kwargs)
    except _PlanCaptured:
        pass
    seen: set[tuple] = set()
    jobs = []
    for job_config, apps in runner.jobs:
        identity = (job_config.cache_key(), apps)
        if identity not in seen:
            seen.add(identity)
            jobs.append((job_config, apps))
    return jobs


def campaign_id(
    experiment: str, jobs: Sequence[tuple[SystemConfig, tuple[str, ...]]]
) -> str:
    """Content-derived campaign identity: stable for the same job set."""
    ids = sorted(run_id(config, apps) for config, apps in jobs)
    return hashlib.sha256(
        "\n".join([experiment, *ids]).encode()
    ).hexdigest()[:16]


__all__ = [
    "JobSpec",
    "PlanningRunner",
    "campaign_id",
    "campaign_jobs",
    "campaign_names",
    "config_from_dict",
    "config_to_dict",
]
