"""Lease-based job supervision for the campaign scheduler.

The scheduler trusts its worker machinery: a batch that wedges
(a hung pool worker with no timeout policy, an OOM-killed process
whose pool never surfaces the break, a scheduler thread stuck in a
syscall) holds its jobs in ``running`` forever, and a ``kill -9`` of
the whole service orphans every in-flight job until someone notices.
This module closes that gap with one mechanism — the **lease**:

* Every job entering execution is granted a persisted lease: an
  fsynced JSONL record (``service/leases.jsonl``) naming the job key,
  its run id, the holding batch, and the attempt number, plus an
  in-memory heartbeat deadline.
* Progress is the heartbeat.  The :class:`Supervisor` thread watches
  the content-addressed store: a lease whose result has landed is
  released; any landing renews every sibling lease (a batch that is
  completing jobs is alive, however slow).
* A lease that outlives its deadline with no progress anywhere means
  the worker is wedged.  The supervisor *reclaims* it: a ``reclaim``
  record is written, the wedged worker processes are killed (the
  scheduler's callback), and the job re-queues with its attempt
  history — so a hang converges to the same recovery path a crash or
  an OOM kill already takes (broken pool → rebuild → retry).
* A ``kill -9`` of the whole service leaves ``grant`` records with no
  ``release``.  On ``resume=True`` those orphans are detected,
  journaled as reclaimed, and counted — and because the queue replay
  re-runs exactly the jobs whose results are not in the store, a
  resumed scheduler never double-runs or orphans a job.

The log is the exactly-once proof: for any recovered deployment,
:meth:`LeaseLog.completions` must map every job key to exactly one
``release``/``done`` event, however many grants, reclaims, and
process deaths happened in between.  The chaos suite asserts this.

Determinism note: lease records carry durations and attempt counts,
never wall-clock timestamps — deadlines live only in memory (monotonic
clock) and are meaningless across processes, so nothing
nondeterministic is persisted.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

log = logging.getLogger("repro.service.supervision")

#: Lease document schema version.
LEASE_SCHEMA = 1

#: Default heartbeat budget: a batch must complete *some* job (or be
#: explicitly renewed) this often or it is considered wedged.
DEFAULT_LEASE_S = 30.0

#: Terminal outcomes a release record may carry.
RELEASE_OUTCOMES = ("done", "failed", "requeued", "shutdown")


@dataclass
class Lease:
    """One in-flight job's liveness contract (in-memory view)."""

    key: str
    run_id: str
    holder: str
    attempt: int
    lease_s: float
    #: Monotonic heartbeat deadline; renewals push it forward.
    deadline: float
    renewals: int = 0

    def renew(self, now: float) -> None:
        self.deadline = now + self.lease_s
        self.renewals += 1

    def expired(self, now: float) -> bool:
        return now >= self.deadline

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "run_id": self.run_id,
            "holder": self.holder,
            "attempt": self.attempt,
            "renewals": self.renewals,
        }


@dataclass
class SupervisionStats:
    """Counters for everything the supervision layer did.

    Mirrored into the scheduler's manifest (``extra["supervision"]``)
    and the ``/healthz`` document, so an operator — or the chaos
    harness — can see what a deployment survived.
    """

    granted: int = 0
    released: int = 0
    renewals: int = 0
    reclaimed: int = 0
    orphans_recovered: int = 0
    worker_kills: int = 0
    requeues: int = 0
    scheduler_crashes: int = 0
    shed: int = 0
    read_only_rejections: int = 0
    deadline_rejections: int = 0

    def as_dict(self) -> dict:
        return {
            "granted": self.granted,
            "released": self.released,
            "renewals": self.renewals,
            "reclaimed": self.reclaimed,
            "orphans_recovered": self.orphans_recovered,
            "worker_kills": self.worker_kills,
            "requeues": self.requeues,
            "scheduler_crashes": self.scheduler_crashes,
            "shed": self.shed,
            "read_only_rejections": self.read_only_rejections,
            "deadline_rejections": self.deadline_rejections,
        }

    @property
    def eventful(self) -> bool:
        """Whether anything beyond plain grant/release happened."""
        plain = {"granted", "released", "renewals"}
        return any(v for k, v in self.as_dict().items() if k not in plain)


class LeaseLog:
    """Append-only, crash-safe JSONL record of job leases.

    Mirrors the batch journal's discipline: one object per line, every
    line flushed and fsynced before the write returns, torn final
    lines tolerated on load.  ``resume=True`` replays an existing log
    and resolves every orphaned grant (a grant the killed process
    never released): if ``has_result`` says the job's result landed,
    the orphan gets the ``release/done`` record the crash swallowed —
    the store entry is proof the job completed, and without the
    compensating record the exactly-once proof (:meth:`completions`)
    would undercount a job that did run.  Orphans with no result are
    reclaimed with ``reason="orphaned"`` so the scheduler re-runs
    them.  Without ``resume`` the log is truncated for a fresh
    deployment.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        resume: bool = False,
        stats: SupervisionStats | None = None,
        has_result: Callable[[str], bool] | None = None,
    ) -> None:
        self.path = Path(path).expanduser()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.stats = stats if stats is not None else SupervisionStats()
        self._active: dict[str, Lease] = {}
        orphans: list[dict] = []
        mode = "a" if resume and self.path.exists() else "w"
        if mode == "a":
            orphans = self._replay()
        self._handle = open(self.path, mode)
        if mode == "w":
            self._append({"event": "lease-log-start", "schema": LEASE_SCHEMA})
        else:
            # A kill -9 can leave the final line unterminated; appending
            # straight onto it would corrupt the next record too.
            tail = self.path.read_bytes()[-1:]
            if tail not in (b"", b"\n"):
                self._handle.write("\n")
                self._handle.flush()
        completed = 0
        for grant in orphans:
            key = grant["key"]
            record = {
                "key": key,
                "holder": grant.get("holder", ""),
                "attempt": grant.get("attempt", 0),
            }
            if has_result is not None and has_result(key):
                # The killed process wrote this result but died before
                # a supervisor tick could release the lease (the store
                # write and the release are separate fsyncs, so a
                # kill -9 can land between them).
                self._append(
                    {"event": "release", "outcome": "done", **record}
                )
                self.stats.released += 1
                completed += 1
            else:
                self._append(
                    {"event": "reclaim", "reason": "orphaned", **record}
                )
                self.stats.reclaimed += 1
            self.stats.orphans_recovered += 1
        if orphans:
            log.warning(
                "recovered %d orphaned lease(s) from the previous "
                "deployment (%d already had results)",
                len(orphans),
                completed,
            )

    # ------------------------------------------------------------------
    # persistence

    def _replay(self) -> list[dict]:
        """Load the log; returns grant records never released/reclaimed."""
        open_grants: dict[str, dict] = {}
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # Torn final line from the interrupted run.
                    continue
                event = record.get("event")
                key = record.get("key")
                if event == "grant" and isinstance(key, str):
                    open_grants[key] = record
                elif event in ("release", "reclaim") and isinstance(key, str):
                    open_grants.pop(key, None)
        return [open_grants[k] for k in sorted(open_grants)]

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    # ------------------------------------------------------------------
    # the lease lifecycle

    def grant(
        self,
        key: str,
        run_id: str,
        holder: str,
        attempt: int,
        lease_s: float = DEFAULT_LEASE_S,
        now: float | None = None,
    ) -> Lease:
        """Grant (or re-grant) the lease for one in-flight job."""
        now = time.monotonic() if now is None else now
        lease = Lease(
            key=key,
            run_id=run_id,
            holder=holder,
            attempt=attempt,
            lease_s=lease_s,
            deadline=now + lease_s,
        )
        self._active[key] = lease
        self._append(
            {
                "event": "grant",
                "key": key,
                "run": run_id,
                "holder": holder,
                "attempt": attempt,
                "lease_s": lease_s,
            }
        )
        self.stats.granted += 1
        return lease

    def renew(self, key: str, now: float | None = None) -> bool:
        """Heartbeat: push the lease deadline forward (in-memory only)."""
        lease = self._active.get(key)
        if lease is None:
            return False
        lease.renew(time.monotonic() if now is None else now)
        self.stats.renewals += 1
        return True

    def renew_all(self, now: float | None = None) -> int:
        now = time.monotonic() if now is None else now
        for lease in self._active.values():
            lease.renew(now)
            self.stats.renewals += 1
        return len(self._active)

    def release(self, key: str, outcome: str = "done") -> bool:
        """Release an active lease; False if no lease is held for ``key``."""
        if outcome not in RELEASE_OUTCOMES:
            raise ValueError(f"unknown release outcome {outcome!r}")
        lease = self._active.pop(key, None)
        if lease is None:
            return False
        self._append(
            {
                "event": "release",
                "key": key,
                "holder": lease.holder,
                "attempt": lease.attempt,
                "outcome": outcome,
            }
        )
        self.stats.released += 1
        return True

    def reclaim(self, key: str, reason: str) -> Lease | None:
        """Forcibly take back an active lease (the holder is wedged/dead)."""
        lease = self._active.pop(key, None)
        if lease is None:
            return None
        self._append(
            {
                "event": "reclaim",
                "key": key,
                "holder": lease.holder,
                "attempt": lease.attempt,
                "reason": reason,
            }
        )
        self.stats.reclaimed += 1
        return lease

    # ------------------------------------------------------------------
    # queries

    def active(self) -> dict[str, Lease]:
        return dict(self._active)

    def held(self, key: str) -> bool:
        return key in self._active

    def expired(self, now: float | None = None) -> list[Lease]:
        now = time.monotonic() if now is None else now
        return [
            self._active[key]
            for key in sorted(self._active)
            if self._active[key].expired(now)
        ]

    def states(self) -> dict:
        """Lease-state summary for health/readiness reporting."""
        return {
            "held": len(self._active),
            "granted": self.stats.granted,
            "released": self.stats.released,
            "reclaimed": self.stats.reclaimed,
            "orphans_recovered": self.stats.orphans_recovered,
        }

    # ------------------------------------------------------------------
    # the exactly-once proof

    def history(self) -> list[dict]:
        """Every durable lease event, in order (parsed from disk)."""
        events = []
        try:
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except ValueError:
                        continue
        except FileNotFoundError:
            pass
        return events

    def completions(self) -> dict[str, int]:
        """``key -> count of release/done events`` over the whole log.

        For a correctly recovered deployment every executed job maps to
        exactly ``1`` — the chaos harness's exactly-once assertion.
        """
        counts: dict[str, int] = {}
        for record in self.history():
            if (
                record.get("event") == "release"
                and record.get("outcome") == "done"
            ):
                key = record.get("key")
                if isinstance(key, str):
                    counts[key] = counts.get(key, 0) + 1
        return counts

    def __enter__(self) -> "LeaseLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Supervisor:
    """The scheduler's watchdog thread.

    Periodically, under the scheduler's lock:

    1. releases leases whose results have landed in the store (landing
       *is* the heartbeat);
    2. renews every remaining lease if anything landed this tick — a
       slow batch that is making progress is healthy;
    3. reclaims leases past their deadline and hands them to
       ``on_expired`` (the scheduler kills the wedged workers and
       requeues the jobs);
    4. if the scheduler thread itself has crashed, reclaims everything
       (nothing will ever land) so lease state reflects reality while
       the API degrades to read-only.

    All dependencies are injected, so the supervisor is unit-testable
    with plain callables — no scheduler required.
    """

    def __init__(
        self,
        leases: LeaseLog,
        cond: threading.Condition,
        has_result: Callable[[str], bool],
        on_expired: Callable[[list[Lease]], None],
        is_crashed: Callable[[], bool] = lambda: False,
        on_landed: Callable[[str], None] | None = None,
        poll_s: float = 0.25,
    ) -> None:
        self.leases = leases
        self.cond = cond
        self.has_result = has_result
        self.on_expired = on_expired
        self.is_crashed = is_crashed
        self.on_landed = on_landed
        self.poll_s = poll_s
        self.ticks = 0
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------

    def tick(self, now: float | None = None) -> list[Lease]:
        """One supervision pass; returns the leases reclaimed (if any)."""
        now = time.monotonic() if now is None else now
        with self.cond:
            self.ticks += 1
            active = self.leases.active()
            landed = [
                key for key in sorted(active) if self.has_result(key)
            ]
            for key in landed:
                self.leases.release(key, "done")
                if self.on_landed is not None:
                    self.on_landed(key)
            if landed:
                # Progress anywhere proves the worker is alive; give
                # every sibling a fresh heartbeat window.
                self.leases.renew_all(now)
                self.cond.notify_all()
            if self.is_crashed():
                reclaimed = [
                    lease
                    for lease in (
                        self.leases.reclaim(key, "scheduler-crashed")
                        for key in sorted(self.leases.active())
                    )
                    if lease is not None
                ]
            else:
                reclaimed = []
                for lease in self.leases.expired(now):
                    taken = self.leases.reclaim(lease.key, "lease-expired")
                    if taken is not None:
                        reclaimed.append(taken)
        if reclaimed:
            # Outside the lock: the callback may kill processes and
            # mutate scheduler state under its own locking discipline.
            self.on_expired(reclaimed)
        return reclaimed

    def _loop(self) -> None:
        while not self._wake.wait(self.poll_s):
            try:
                self.tick()
            except Exception:  # pragma: no cover - defensive watchdog
                log.exception("supervisor tick failed")

    def start(self) -> "Supervisor":
        if self._thread is None:
            self._wake.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None


def kill_worker_processes() -> int:
    """SIGKILL every live child worker process; returns the body count.

    The wedged-worker reclamation path: pool workers are the only
    child processes a scheduler owns, and killing them converges a
    hang onto the exact recovery path an OOM kill already takes —
    ``BrokenProcessPool`` → pool rebuild → bounded retry.
    """
    import multiprocessing

    killed = 0
    for proc in multiprocessing.active_children():
        try:
            proc.kill()
            killed += 1
        except Exception:  # pragma: no cover - already-dead race
            pass
    return killed


__all__ = [
    "DEFAULT_LEASE_S",
    "LEASE_SCHEMA",
    "Lease",
    "LeaseLog",
    "RELEASE_OUTCOMES",
    "Supervisor",
    "SupervisionStats",
    "kill_worker_processes",
]
