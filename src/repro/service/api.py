"""Stdlib-only threaded HTTP API over the store and scheduler.

The serving contract the ROADMAP asks for: *millions of readers
hitting precomputed sweeps never trigger a simulation* — a ``POST
/jobs`` for a key the store holds is answered on the warm path (an
in-memory LRU over payload bytes, microseconds, no disk, no
scheduler); only a genuine miss reaches
:meth:`~repro.service.scheduler.CampaignScheduler.submit_job`, whose
lock makes the enqueue exactly-once.

Endpoints (JSON unless noted):

====================================  =====================================
``GET /healthz``                      liveness + store/queue summary
``GET /metrics``                      Prometheus text format
``GET /results/<key>``                result envelope (state, size, sha256)
``GET /results/<key>/payload``        the pickled MixResult, byte-exact
``GET /manifests/<run_id>``           provenance record of one run
``GET /campaigns/<id>``               campaign progress and per-job states
``POST /jobs``                        submit a job or campaign spec
====================================  =====================================

``POST /jobs`` bodies: ``{"config": {...}, "apps": ["mcf", ...]}`` for
one job, or ``{"campaign": {"experiment": "fig10", "mixes": [...],
"config": {...}}}`` for a whole figure.  Responses carry ``state``
(``done`` | ``queued`` | ``running`` | ``failed``) and the
content-addressed ``key`` to fetch.

Payloads are Python pickles (that is what makes the served result
bit-identical to a local run); bind the server to loopback or a
trusted network only — see docs/service.md.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.service.jobs import JobSpec, campaign_names, config_from_dict
from repro.service.scheduler import CampaignScheduler
from repro.service.store import payload_digest
from repro.telemetry import MetricRegistry, prometheus_text

log = logging.getLogger("repro.service.api")

#: Default capacity (entries) of the in-memory warm-path LRU.
DEFAULT_LRU_ENTRIES = 256


class PayloadLRU:
    """Tiny thread-safe LRU of ``key -> payload bytes``.

    Entries are content-addressed and immutable, so there is no
    invalidation — only capacity eviction.
    """

    def __init__(self, max_entries: int = DEFAULT_LRU_ENTRIES) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> bytes | None:
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return data

    def put(self, key: str, data: bytes) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            self._entries[key] = data
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ServiceApp:
    """The request-handling logic, separate from HTTP plumbing.

    Every handler method returns ``(status, payload)`` where payload
    is a JSON-safe dict — or raw bytes for the payload endpoint — so
    the whole surface is unit-testable without a socket.
    """

    def __init__(
        self,
        scheduler: CampaignScheduler,
        lru_entries: int = DEFAULT_LRU_ENTRIES,
    ) -> None:
        self.scheduler = scheduler
        self.store = scheduler.store
        self.lru = PayloadLRU(lru_entries)
        self.registry = MetricRegistry()
        self._hits_warm = self.registry.counter("service.hits.warm")
        self._hits_store = self.registry.counter("service.hits.store")
        self._misses = self.registry.counter("service.misses")
        self._enqueued = self.registry.counter("service.jobs.enqueued")
        self._requests = self.registry.counter("service.http.requests")
        self._errors = self.registry.counter("service.http.errors")
        self._latency_us = self.registry.histogram("service.latency_us")

    # ------------------------------------------------------------------
    # payload access (the warm path)

    def payload(self, key: str) -> bytes | None:
        """Payload bytes for ``key``: LRU first, then the store."""
        data = self.lru.get(key)
        if data is not None:
            self._hits_warm.add()
            return data
        data = self.store.get_bytes(key)
        if data is not None:
            self._hits_store.add()
            self.lru.put(key, data)
        return data

    # ------------------------------------------------------------------
    # endpoint handlers

    def healthz(self) -> tuple[int, dict]:
        from repro import __version__

        return 200, {
            "status": "ok",
            "version": __version__,
            "queue_depth": self.scheduler.queue_depth,
            "lru_entries": len(self.lru),
        }

    def metrics(self) -> tuple[int, str]:
        self.registry.set_gauges(
            "service",
            {
                "queue.depth": float(self.scheduler.queue_depth),
                "lru.entries": float(len(self.lru)),
                "store.hits": float(self.store.hits),
                "store.misses": float(self.store.misses),
                "store.corrupt": float(self.store.corrupt),
            },
        )
        return 200, prometheus_text(self.registry.snapshot())

    def result_envelope(self, key: str) -> tuple[int, dict]:
        status = self.scheduler.job_status(key)
        record = self.store.index_record(key)
        if status is None and record is None:
            return 404, {"error": f"unknown result key {key}"}
        doc = dict(status) if status is not None else {"key": key, "state": "done"}
        if doc["state"] == "done":
            if record is None:
                record = self.store.index_record(key)
            if record is not None:
                doc["sha256"] = record["sha256"]
                doc["size"] = record["size"]
            doc["payload"] = f"/results/{key}/payload"
        return 200, doc

    def result_payload(self, key: str) -> tuple[int, bytes | dict]:
        data = self.payload(key)
        if data is None:
            return 404, {"error": f"no stored result for key {key}"}
        return 200, data

    def manifest(self, rid: str) -> tuple[int, dict]:
        record = self.scheduler.record_for(rid)
        if record is None:
            return 404, {"error": f"unknown run id {rid}"}
        return 200, record.as_dict()

    def campaign(self, cid: str) -> tuple[int, dict]:
        status = self.scheduler.campaign_status(cid)
        if status is None:
            return 404, {"error": f"unknown campaign {cid}"}
        return 200, status

    def submit(self, body: dict) -> tuple[int, dict]:
        if not isinstance(body, dict):
            return 400, {"error": "body must be a JSON object"}
        if "campaign" in body:
            return self._submit_campaign(body["campaign"])
        return self._submit_job(body)

    def _submit_job(self, body: dict) -> tuple[int, dict]:
        try:
            spec = JobSpec.from_dict(body)
        except (TypeError, ValueError, KeyError) as exc:
            return 400, {"error": f"bad job spec: {exc}"}
        key = self.store.key_for(spec.config, spec.apps)
        # Warm path: a stored result answers without waking the
        # scheduler — this is what "a hit never spawns a simulation"
        # means operationally.
        if self.lru.get(key) is not None or self.store.has(key):
            self._hits_warm.add()
            return 200, {
                "key": key,
                "run_id": spec.run_id,
                "state": "done",
                "source": "warm",
                "payload": f"/results/{key}/payload",
            }
        self._misses.add()
        status = self.scheduler.submit_job(spec.config, spec.apps)
        if status["state"] == "queued":
            self._enqueued.add()
        return 202 if status["state"] in ("queued", "running") else 200, status

    def _submit_campaign(self, body: dict) -> tuple[int, dict]:
        if not isinstance(body, dict) or "experiment" not in body:
            return 400, {
                "error": "campaign spec needs an 'experiment' name",
                "known": campaign_names(),
            }
        try:
            config = config_from_dict(body.get("config") or {})
            status = self.scheduler.submit_campaign(
                body["experiment"], config, body.get("mixes")
            )
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"bad campaign spec: {exc}"}
        return 202 if not status["complete"] else 200, status

    # ------------------------------------------------------------------
    # routing

    def handle_get(self, path: str) -> tuple[int, dict | str | bytes]:
        if path == "/healthz":
            return self.healthz()
        if path == "/metrics":
            return self.metrics()
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "results":
            return self.result_envelope(parts[1])
        if len(parts) == 3 and parts[0] == "results" and parts[2] == "payload":
            return self.result_payload(parts[1])
        if len(parts) == 2 and parts[0] == "manifests":
            return self.manifest(parts[1])
        if len(parts) == 2 and parts[0] == "campaigns":
            return self.campaign(parts[1])
        return 404, {"error": f"no such endpoint: {path}"}

    def handle_post(self, path: str, body: dict) -> tuple[int, dict]:
        if path == "/jobs":
            return self.submit(body)
        return 404, {"error": f"no such endpoint: {path}"}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServiceApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        log.debug("%s " + format, self.address_string(), *args)

    def _respond(self, status: int, payload: dict | str | bytes) -> None:
        if isinstance(payload, bytes):
            body = payload
            content_type = "application/octet-stream"
            extra = {"X-Payload-SHA256": payload_digest(payload)}
        elif isinstance(payload, str):
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            extra = {}
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
            content_type = "application/json"
            extra = {}
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _timed(self, fn: Callable[[], tuple[int, dict | str | bytes]]) -> None:
        app = self.app
        app._requests.add()
        start = time.perf_counter()
        try:
            status, payload = fn()
        except Exception as exc:  # pragma: no cover - defensive surface
            log.exception("unhandled service error")
            app._errors.add()
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        app._latency_us.observe(
            max(0, int((time.perf_counter() - start) * 1e6))
        )
        if status >= 400:
            app._errors.add()
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._timed(lambda: self.app.handle_get(self.path.split("?", 1)[0]))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        def run() -> tuple[int, dict]:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode() or "{}")
            except ValueError:
                return 400, {"error": "body is not valid JSON"}
            return self.app.handle_post(self.path.split("?", 1)[0], body)

        self._timed(run)


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying the :class:`ServiceApp`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], app: ServiceApp) -> None:
        super().__init__(address, _Handler)
        self.app = app

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    scheduler: CampaignScheduler,
    host: str = "127.0.0.1",
    port: int = 0,
    lru_entries: int = DEFAULT_LRU_ENTRIES,
) -> ServiceServer:
    """Build a ready-to-``serve_forever`` server (port 0 = ephemeral)."""
    return ServiceServer((host, port), ServiceApp(scheduler, lru_entries))


__all__ = [
    "DEFAULT_LRU_ENTRIES",
    "PayloadLRU",
    "ServiceApp",
    "ServiceServer",
    "make_server",
]
