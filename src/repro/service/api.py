"""Stdlib-only threaded HTTP API over the store and scheduler.

The serving contract the ROADMAP asks for: *millions of readers
hitting precomputed sweeps never trigger a simulation* — a ``POST
/jobs`` for a key the store holds is answered on the warm path (an
in-memory LRU over payload bytes, microseconds, no disk, no
scheduler); only a genuine miss reaches
:meth:`~repro.service.scheduler.CampaignScheduler.submit_job`, whose
lock makes the enqueue exactly-once.

Endpoints (JSON unless noted):

====================================  =====================================
``GET /healthz``                      liveness + queue/lease/store summary
``GET /readyz``                       readiness (503 while degraded/full)
``GET /metrics``                      Prometheus text format
``GET /results/<key>``                result envelope (state, size, sha256)
``GET /results/<key>/payload``        the pickled MixResult, byte-exact
``GET /manifests/<run_id>``           provenance record of one run
``GET /campaigns/<id>``               campaign progress and per-job states
``POST /jobs``                        submit a job or campaign spec
====================================  =====================================

``POST /jobs`` bodies: ``{"config": {...}, "apps": ["mcf", ...]}`` for
one job, or ``{"campaign": {"experiment": "fig10", "mixes": [...],
"config": {...}}}`` for a whole figure.  Responses carry ``state``
(``done`` | ``queued`` | ``running`` | ``failed``) and the
content-addressed ``key`` to fetch.

Hardening (see docs/robustness.md for the failure-mode matrix):

* **Admission control.**  Submits are bounded by
  :class:`AdmissionPolicy`: a full queue sheds with ``429`` +
  ``Retry-After`` instead of accepting unbounded work, and a request
  whose ``X-Deadline-S`` the service cannot possibly meet (a cold key
  must simulate) is refused with ``503`` immediately rather than
  enqueued to be thrown away.
* **Graceful degradation.**  A scheduler crash flips the API to
  read-only: every GET and every warm-path submit keeps serving the
  content-addressed store, while cold submits fail fast with ``503``
  + ``Retry-After`` — warm reads stay up, writes never hang on a dead
  worker.  ``GET /readyz`` answers 503 in this state (and when
  shedding), so a load balancer drains the instance while ``/healthz``
  keeps reporting what is wrong.
* **Idempotent submits.**  ``POST /jobs`` may carry an
  ``X-Idempotency-Key`` header holding the client-computed
  content-addressed job key; the server recomputes it from the body
  and answers ``409`` on mismatch (config-codec drift — retrying
  would target the wrong entry).  Because the key is derived from the
  job content, blind client retries of the same submit are always
  safe: they land on the same ticket.

Payloads are Python pickles (that is what makes the served result
bit-identical to a local run); bind the server to loopback or a
trusted network only — see docs/service.md.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

from repro.service.jobs import JobSpec, campaign_names, config_from_dict
from repro.service.scheduler import CampaignScheduler
from repro.service.store import payload_digest
from repro.telemetry import MetricRegistry, prometheus_text

log = logging.getLogger("repro.service.api")

#: Default capacity (entries) of the in-memory warm-path LRU.
DEFAULT_LRU_ENTRIES = 256

#: Request header carrying the client-computed content-addressed key.
IDEMPOTENCY_HEADER = "X-Idempotency-Key"

#: Request header carrying the client's result deadline (seconds).
DEADLINE_HEADER = "X-Deadline-S"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Backpressure knobs for the submit path.

    ``max_queue_depth`` bounds accepted-but-unfinished work: a submit
    that would push past it is shed with ``429``.  ``retry_after_s``
    is the hint sent with every 429/503 (coarse on purpose — clients
    add their own seeded jitter).  ``deadline_floor_s`` is the
    fastest the service claims it could possibly simulate a cold key;
    a request deadline below it is refused up front.
    """

    max_queue_depth: int = 64
    retry_after_s: float = 1.0
    deadline_floor_s: float = 0.0

    def retry_after(self) -> dict[str, str]:
        return {"Retry-After": str(max(1, int(round(self.retry_after_s))))}


class PayloadLRU:
    """Tiny thread-safe LRU of ``key -> payload bytes``.

    Entries are content-addressed and immutable, so there is no
    invalidation — only capacity eviction.
    """

    def __init__(self, max_entries: int = DEFAULT_LRU_ENTRIES) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> bytes | None:
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return data

    def put(self, key: str, data: bytes) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            self._entries[key] = data
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ServiceApp:
    """The request-handling logic, separate from HTTP plumbing.

    Every handler method returns ``(status, payload)`` where payload
    is a JSON-safe dict — or raw bytes for the payload endpoint — so
    the whole surface is unit-testable without a socket.
    """

    def __init__(
        self,
        scheduler: CampaignScheduler,
        lru_entries: int = DEFAULT_LRU_ENTRIES,
        admission: AdmissionPolicy | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.store = scheduler.store
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.lru = PayloadLRU(lru_entries)
        self.registry = MetricRegistry()
        self._hits_warm = self.registry.counter("service.hits.warm")
        self._hits_store = self.registry.counter("service.hits.store")
        self._misses = self.registry.counter("service.misses")
        self._enqueued = self.registry.counter("service.jobs.enqueued")
        self._requests = self.registry.counter("service.http.requests")
        self._errors = self.registry.counter("service.http.errors")
        self._shed = self.registry.counter("service.http.shed")
        self._read_only = self.registry.counter("service.http.read_only")
        self._latency_us = self.registry.histogram("service.latency_us")

    @property
    def read_only(self) -> bool:
        """True once the scheduler can no longer run work (crash/stop)."""
        return not self.scheduler.healthy

    # ------------------------------------------------------------------
    # payload access (the warm path)

    def payload(self, key: str) -> bytes | None:
        """Payload bytes for ``key``: LRU first, then the store."""
        data = self.lru.get(key)
        if data is not None:
            self._hits_warm.add()
            return data
        data = self.store.get_bytes(key)
        if data is not None:
            self._hits_store.add()
            self.lru.put(key, data)
        return data

    # ------------------------------------------------------------------
    # endpoint handlers

    def healthz(self) -> tuple[int, dict]:
        """Liveness: always 200 while the process serves — the body
        says *what state* it is serving in."""
        from repro import __version__

        sched = self.scheduler
        return 200, {
            "status": "read-only" if self.read_only else "ok",
            "version": __version__,
            "queue_depth": sched.queue_depth,
            "lru_entries": len(self.lru),
            "jobs": sched.state_counts(),
            "leases": sched.leases.states(),
            "store": self.store.integrity(),
            "supervision": sched.sup_stats.as_dict(),
        }

    def readyz(self) -> tuple[int, dict, dict]:
        """Readiness: 503 (with Retry-After) while degraded or full.

        The signal a load balancer acts on: a read-only instance keeps
        its warm reads reachable through ``/results``, but stops
        receiving fresh traffic.
        """
        reasons = []
        if self.read_only:
            reasons.append("scheduler is down; serving read-only")
        if self.scheduler.queue_depth >= self.admission.max_queue_depth:
            reasons.append("submit queue is full")
        doc = {
            "ready": not reasons,
            "reasons": reasons,
            "queue_depth": self.scheduler.queue_depth,
            "leases": self.scheduler.leases.states(),
        }
        if reasons:
            return 503, doc, self.admission.retry_after()
        return 200, doc, {}

    def metrics(self) -> tuple[int, str]:
        self.registry.set_gauges(
            "service",
            {
                "queue.depth": float(self.scheduler.queue_depth),
                "lru.entries": float(len(self.lru)),
                "store.hits": float(self.store.hits),
                "store.misses": float(self.store.misses),
                "store.corrupt": float(self.store.corrupt),
            },
        )
        return 200, prometheus_text(self.registry.snapshot())

    def result_envelope(self, key: str) -> tuple[int, dict]:
        status = self.scheduler.job_status(key)
        record = self.store.index_record(key)
        if status is None and record is None:
            return 404, {"error": f"unknown result key {key}"}
        doc = dict(status) if status is not None else {"key": key, "state": "done"}
        if doc["state"] == "done":
            if record is None:
                record = self.store.index_record(key)
            if record is not None:
                doc["sha256"] = record["sha256"]
                doc["size"] = record["size"]
            doc["payload"] = f"/results/{key}/payload"
        return 200, doc

    def result_payload(self, key: str) -> tuple[int, bytes | dict]:
        data = self.payload(key)
        if data is None:
            return 404, {"error": f"no stored result for key {key}"}
        return 200, data

    def manifest(self, rid: str) -> tuple[int, dict]:
        record = self.scheduler.record_for(rid)
        if record is None:
            return 404, {"error": f"unknown run id {rid}"}
        return 200, record.as_dict()

    def campaign(self, cid: str) -> tuple[int, dict]:
        status = self.scheduler.campaign_status(cid)
        if status is None:
            return 404, {"error": f"unknown campaign {cid}"}
        return 200, status

    # ------------------------------------------------------------------
    # admission control

    @staticmethod
    def _header(headers: Mapping[str, str] | None, name: str) -> str | None:
        """Case-insensitive header lookup over dicts *and* Message."""
        if headers is None:
            return None
        getter = getattr(headers, "get", None)
        if getter is not None and not isinstance(headers, dict):
            value = getter(name)  # email.message.Message: insensitive
            return str(value) if value is not None else None
        lowered = {k.lower(): v for k, v in headers.items()}
        value = lowered.get(name.lower())
        return str(value) if value is not None else None

    def _shed_write(self) -> tuple[int, dict, dict] | None:
        """The 503/429 answer for a cold submit, or None to admit it."""
        if self.read_only:
            self._read_only.add()
            self.scheduler.sup_stats.read_only_rejections += 1
            return (
                503,
                {
                    "error": "service is read-only (scheduler is down); "
                    "stored results remain available",
                    "read_only": True,
                },
                self.admission.retry_after(),
            )
        if self.scheduler.queue_depth >= self.admission.max_queue_depth:
            self._shed.add()
            self.scheduler.sup_stats.shed += 1
            return (
                429,
                {
                    "error": "submit queue is full",
                    "queue_depth": self.scheduler.queue_depth,
                    "max_queue_depth": self.admission.max_queue_depth,
                },
                self.admission.retry_after(),
            )
        return None

    def _refuse_deadline(
        self, headers: Mapping[str, str] | None
    ) -> tuple[int, dict, dict] | None:
        """Refuse a cold submit whose deadline cannot be met."""
        raw = self._header(headers, DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            deadline_s = float(raw)
        except ValueError:
            return 400, {"error": f"bad {DEADLINE_HEADER} value {raw!r}"}, {}
        if deadline_s <= 0 or deadline_s < self.admission.deadline_floor_s:
            self.scheduler.sup_stats.deadline_rejections += 1
            return (
                503,
                {
                    "error": (
                        f"deadline {deadline_s}s cannot be met for a cold "
                        "key (result must be simulated)"
                    ),
                    "deadline_floor_s": self.admission.deadline_floor_s,
                },
                self.admission.retry_after(),
            )
        return None

    # ------------------------------------------------------------------
    # submission

    def submit(
        self, body: dict, headers: Mapping[str, str] | None = None
    ) -> tuple[int, dict] | tuple[int, dict, dict]:
        if not isinstance(body, dict):
            return 400, {"error": "body must be a JSON object"}
        if "campaign" in body:
            return self._submit_campaign(body["campaign"], headers)
        return self._submit_job(body, headers)

    def _submit_job(
        self, body: dict, headers: Mapping[str, str] | None = None
    ) -> tuple[int, dict] | tuple[int, dict, dict]:
        try:
            spec = JobSpec.from_dict(body)
        except (TypeError, ValueError, KeyError) as exc:
            return 400, {"error": f"bad job spec: {exc}"}
        key = self.store.key_for(spec.config, spec.apps)
        claimed = self._header(headers, IDEMPOTENCY_HEADER)
        if claimed is not None and claimed != key:
            # The client's codec disagrees with ours about what this
            # job *is*; retrying against the wrong key would be worse
            # than failing loudly.
            return 409, {
                "error": "idempotency key mismatch (config codec drift?)",
                "claimed": claimed,
                "key": key,
            }
        # Warm path: a stored result answers without waking the
        # scheduler — this is what "a hit never spawns a simulation"
        # means operationally.  It stays up in read-only mode.
        if self.lru.get(key) is not None or self.store.has(key):
            self._hits_warm.add()
            return 200, {
                "key": key,
                "run_id": spec.run_id,
                "state": "done",
                "source": "warm",
                "payload": f"/results/{key}/payload",
            }
        refused = self._refuse_deadline(headers) or self._shed_write()
        if refused is not None:
            return refused
        self._misses.add()
        status = self.scheduler.submit_job(spec.config, spec.apps)
        if status["state"] == "queued":
            self._enqueued.add()
        return 202 if status["state"] in ("queued", "running") else 200, status

    def _submit_campaign(
        self, body: dict, headers: Mapping[str, str] | None = None
    ) -> tuple[int, dict] | tuple[int, dict, dict]:
        if not isinstance(body, dict) or "experiment" not in body:
            return 400, {
                "error": "campaign spec needs an 'experiment' name",
                "known": campaign_names(),
            }
        refused = self._refuse_deadline(headers) or self._shed_write()
        if refused is not None:
            # A campaign always implies cold work somewhere; shed it
            # whole rather than admit a fraction of a figure.
            return refused
        try:
            config = config_from_dict(body.get("config") or {})
            status = self.scheduler.submit_campaign(
                body["experiment"], config, body.get("mixes")
            )
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"bad campaign spec: {exc}"}
        return 202 if not status["complete"] else 200, status

    # ------------------------------------------------------------------
    # routing

    def handle_get(
        self, path: str
    ) -> tuple[int, dict | str | bytes] | tuple[int, dict | str | bytes, dict]:
        if path == "/healthz":
            return self.healthz()
        if path == "/readyz":
            return self.readyz()
        if path == "/metrics":
            return self.metrics()
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "results":
            return self.result_envelope(parts[1])
        if len(parts) == 3 and parts[0] == "results" and parts[2] == "payload":
            return self.result_payload(parts[1])
        if len(parts) == 2 and parts[0] == "manifests":
            return self.manifest(parts[1])
        if len(parts) == 2 and parts[0] == "campaigns":
            return self.campaign(parts[1])
        return 404, {"error": f"no such endpoint: {path}"}

    def handle_post(
        self,
        path: str,
        body: dict,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, dict] | tuple[int, dict, dict]:
        if path == "/jobs":
            return self.submit(body, headers)
        return 404, {"error": f"no such endpoint: {path}"}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServiceApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        log.debug("%s " + format, self.address_string(), *args)

    def _respond(
        self,
        status: int,
        payload: dict | str | bytes,
        headers: dict[str, str] | None = None,
    ) -> None:
        extra = dict(headers) if headers else {}
        if isinstance(payload, bytes):
            body = payload
            content_type = "application/octet-stream"
            extra.setdefault("X-Payload-SHA256", payload_digest(payload))
        elif isinstance(payload, str):
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _timed(self, fn: Callable[[], tuple]) -> None:
        app = self.app
        app._requests.add()
        start = time.perf_counter()
        headers: dict[str, str] | None = None
        try:
            answer = fn()
            # Handlers return (status, payload) or (status, payload,
            # headers) — the third slot carries Retry-After etc.
            if len(answer) == 3:
                status, payload, headers = answer
            else:
                status, payload = answer
        except Exception as exc:  # pragma: no cover - defensive surface
            log.exception("unhandled service error")
            app._errors.add()
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        app._latency_us.observe(
            max(0, int((time.perf_counter() - start) * 1e6))
        )
        if status >= 400:
            app._errors.add()
        self._respond(status, payload, headers)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._timed(lambda: self.app.handle_get(self.path.split("?", 1)[0]))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        def run() -> tuple:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode() or "{}")
            except ValueError:
                return 400, {"error": "body is not valid JSON"}
            return self.app.handle_post(
                self.path.split("?", 1)[0], body, self.headers
            )

        self._timed(run)


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying the :class:`ServiceApp`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], app: ServiceApp) -> None:
        super().__init__(address, _Handler)
        self.app = app

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    scheduler: CampaignScheduler,
    host: str = "127.0.0.1",
    port: int = 0,
    lru_entries: int = DEFAULT_LRU_ENTRIES,
    admission: AdmissionPolicy | None = None,
) -> ServiceServer:
    """Build a ready-to-``serve_forever`` server (port 0 = ephemeral)."""
    return ServiceServer(
        (host, port), ServiceApp(scheduler, lru_entries, admission)
    )


__all__ = [
    "AdmissionPolicy",
    "DEADLINE_HEADER",
    "DEFAULT_LRU_ENTRIES",
    "IDEMPOTENCY_HEADER",
    "PayloadLRU",
    "ServiceApp",
    "ServiceServer",
    "make_server",
]
