"""Typed client for the service API, plus a remote-backed Runner.

:class:`ServiceClient` wraps the HTTP surface with plain methods
(stdlib ``urllib`` only) and verifies every fetched payload against
its ``X-Payload-SHA256`` header before unpickling, so a corrupted
transfer can never masquerade as a result.

:class:`ServiceRunner` is the transparency piece: a drop-in
:class:`~repro.experiments.runner.Runner` whose simulations happen on
the service.  Point any existing figure driver (or ``python -m repro
fig10 --remote-store DIR``) at one and the whole experiment becomes
submit-poll-fetch — bit-identical to a local run, because the service
executes the very same deterministic jobs and ships back the very same
pickled :class:`~repro.experiments.runner.MixResult` bytes.

The client survives the service not being there.  Transient failures
(connection refused/reset, 429 shed, 503 read-only) raise
:class:`ServiceUnavailable` and are retried through a
:class:`CircuitBreaker` with *deterministic, seeded* backoff — the
delay sequence is a pure function of the client seed and the attempt
number (plus any server ``Retry-After`` hint), never of wall-clock
randomness, so a figure driver interrupted by a service restart
replays the same schedule every run.  Submits are idempotent: the
client derives the content-addressed job key locally
(:func:`repro.service.store.job_key`), sends it as
``X-Idempotency-Key`` (the server 409s on codec drift), and therefore
retries POSTs as safely as GETs — a resubmit lands on the same
ticket.  A client built from ``store_dir`` re-discovers the advertised
URL between retries, so it follows a restarted server onto its new
ephemeral port.
"""

from __future__ import annotations

import json
import os
import pickle
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Sequence

from repro.common.rng import child_rng
from repro.experiments.config import SystemConfig
from repro.experiments.runner import MixResult, Runner
from repro.service.jobs import config_to_dict
from repro.service.store import job_key, payload_digest

#: Where ``repro serve`` advertises its ephemeral URL, relative to the
#: store directory (see :func:`discover_url`).
SERVER_INFO = "service/server.json"


class ServiceError(RuntimeError):
    """A service interaction failed (HTTP error, timeout, bad payload)."""


class ServiceUnavailable(ServiceError):
    """A *transient* service failure: worth retrying.

    Raised for connection-level errors (nothing listening, reset) and
    for the explicit backpressure answers (429 shed, 503 read-only /
    not-ready), carrying the server's ``Retry-After`` hint when one
    was sent.
    """

    def __init__(self, message: str, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class CircuitBreaker:
    """Failure-counting breaker with deterministic seeded backoff.

    After ``threshold`` consecutive transient failures the circuit
    opens: calls fail fast (no socket) until the cooldown elapses,
    then one probe is allowed through (half-open); its success closes
    the circuit.  Cooldowns grow exponentially per trip with jitter
    drawn from :func:`repro.common.rng.child_rng` — a pure function of
    ``(seed, trip count)``, so two runs of the same driver against the
    same flaky service back off identically.
    """

    def __init__(
        self,
        threshold: int = 3,
        base_s: float = 0.05,
        cap_s: float = 2.0,
        seed: int = 0,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.base_s = base_s
        self.cap_s = cap_s
        self.seed = seed
        self.failures = 0
        self.trips = 0
        self._open_until: float | None = None

    def cooldown_s(self, trip: int) -> float:
        """The (deterministic) cooldown for trip number ``trip``."""
        jitter = child_rng(self.seed, f"breaker-trip:{trip}").random()
        return min(self.cap_s, self.base_s * (2 ** (trip - 1)) * (1 + jitter))

    @property
    def state(self) -> str:
        if self._open_until is None:
            return "closed"
        if time.monotonic() >= self._open_until:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether a call may proceed right now."""
        return self.state != "open"

    def seconds_until_probe(self) -> float:
        if self._open_until is None:
            return 0.0
        return max(0.0, self._open_until - time.monotonic())

    def record_success(self) -> None:
        self.failures = 0
        self._open_until = None

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold or self._open_until is not None:
            self.trips += 1
            self._open_until = time.monotonic() + self.cooldown_s(self.trips)


def write_server_info(store_dir: str | os.PathLike, url: str) -> Path:
    """Record a running server's URL under its store (for discovery)."""
    path = Path(store_dir).expanduser() / SERVER_INFO
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w") as handle:
        json.dump({"url": url, "pid": os.getpid()}, handle)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def discover_url(store_dir: str | os.PathLike) -> str:
    """The URL advertised by the server owning ``store_dir``."""
    path = Path(store_dir).expanduser() / SERVER_INFO
    try:
        with open(path) as handle:
            return json.load(handle)["url"]
    except (FileNotFoundError, ValueError, KeyError) as exc:
        raise ServiceError(
            f"no running service advertised under {path} "
            "(start one with: repro serve --store ...)"
        ) from exc


class ServiceClient:
    """HTTP client for one service endpoint.

    Pass ``url`` directly, or ``store_dir`` to discover the URL a
    ``repro serve`` process advertised there.
    """

    def __init__(
        self,
        url: str | None = None,
        store_dir: str | os.PathLike | None = None,
        timeout: float = 30.0,
        retries: int = 8,
        seed: int = 0,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if url is None:
            if store_dir is None:
                raise ValueError("need url or store_dir")
            url = discover_url(store_dir)
        self.url = url.rstrip("/")
        self.store_dir = Path(store_dir).expanduser() if store_dir else None
        self.timeout = timeout
        self.retries = retries
        self.seed = seed
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(seed=seed)
        )

    # ------------------------------------------------------------------
    # transport

    def _request_once(
        self,
        path: str,
        data: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[bytes, dict]:
        """One HTTP exchange; transient failures raise ServiceUnavailable."""
        send_headers = dict(headers) if headers else {}
        if data is not None:
            send_headers.setdefault("Content-Type", "application/json")
        request = urllib.request.Request(
            f"{self.url}{path}", data=data, headers=send_headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read(), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace").strip()
            message = f"{path} -> HTTP {exc.code}: {detail or exc.reason}"
            if exc.code in (429, 503):
                retry_after = None
                raw = exc.headers.get("Retry-After") if exc.headers else None
                if raw is not None:
                    try:
                        retry_after = float(raw)
                    except ValueError:
                        retry_after = None
                raise ServiceUnavailable(message, retry_after) from exc
            raise ServiceError(message) from exc
        except urllib.error.URLError as exc:
            # Connection refused/reset, DNS, socket timeout: the
            # service is (momentarily) not there.
            raise ServiceUnavailable(f"{path} -> {exc.reason}") from exc

    def _backoff_s(self, attempt: int, hint: float | None) -> float:
        """Deterministic delay before retry ``attempt`` (0-based)."""
        jitter = child_rng(self.seed, f"retry:{attempt}").random()
        delay = min(2.0, 0.05 * (2**attempt) * (1 + jitter))
        if hint is not None:
            delay = max(delay, min(hint, 5.0))
        return delay

    def _rediscover(self) -> None:
        """Follow a restarted server onto its newly advertised URL."""
        if self.store_dir is None:
            return
        try:
            self.url = discover_url(self.store_dir).rstrip("/")
        except ServiceError:
            pass  # no advertisement yet; retry against the old URL

    def _request(
        self,
        path: str,
        data: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[bytes, dict]:
        """Breaker-guarded, retrying transport.

        Every request through here is idempotent — GETs trivially,
        POST submits by content-addressed key — so blind retries are
        safe.  Retry delays come from :meth:`_backoff_s` (seeded,
        deterministic); an open breaker fails fast without a socket.
        """
        last: ServiceUnavailable | None = None
        for attempt in range(self.retries + 1):
            if not self.breaker.allow():
                wait = self.breaker.seconds_until_probe()
                if attempt >= self.retries:
                    break
                time.sleep(min(wait, 5.0) if wait > 0 else 0.0)
            try:
                answer = self._request_once(path, data, headers)
            except ServiceUnavailable as exc:
                self.breaker.record_failure()
                last = exc
                if attempt >= self.retries:
                    break
                time.sleep(self._backoff_s(attempt, exc.retry_after_s))
                self._rediscover()
                continue
            self.breaker.record_success()
            return answer
        # Still transient — callers with their own deadline (the wait
        # loops) may keep going; everyone else sees a ServiceError too.
        raise ServiceUnavailable(
            f"{path} failed after {self.retries + 1} attempt(s): {last}",
            last.retry_after_s if last is not None else None,
        ) from last

    def _json(
        self,
        path: str,
        body: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        data = (
            json.dumps(body, sort_keys=True).encode()
            if body is not None else None
        )
        raw, _ = self._request(path, data, headers)
        return json.loads(raw.decode())

    # ------------------------------------------------------------------
    # endpoints

    def health(self) -> dict:
        return self._json("/healthz")

    def metrics(self) -> str:
        raw, _ = self._request("/metrics")
        return raw.decode()

    def metric(self, name: str) -> float | None:
        """One scraped metric value by its Prometheus name, or None."""
        for line in self.metrics().splitlines():
            if line.startswith(f"{name} "):
                return float(line.split()[1])
        return None

    def submit(self, config: SystemConfig, apps: Sequence[str]) -> dict:
        """Submit one job — idempotently.

        The content-addressed key is computed locally and sent as
        ``X-Idempotency-Key``: the server verifies it against its own
        derivation (409 on drift), and because the key *is* the job
        identity, retrying this POST after a connection reset can only
        land on the same ticket — never enqueue a duplicate.
        """
        return self._json(
            "/jobs",
            {"config": config_to_dict(config), "apps": list(apps)},
            headers={"X-Idempotency-Key": job_key(config, tuple(apps))},
        )

    def submit_campaign(
        self,
        experiment: str,
        config: SystemConfig | None = None,
        mixes: Sequence[str] | None = None,
    ) -> dict:
        spec: dict = {"experiment": experiment}
        if config is not None:
            spec["config"] = config_to_dict(config)
        if mixes:
            spec["mixes"] = list(mixes)
        return self._json("/jobs", {"campaign": spec})

    def result(self, key: str) -> dict:
        return self._json(f"/results/{key}")

    def campaign(self, cid: str) -> dict:
        return self._json(f"/campaigns/{cid}")

    def manifest(self, rid: str) -> dict:
        return self._json(f"/manifests/{rid}")

    def fetch_bytes(self, key: str) -> bytes:
        """The stored payload bytes, verified against the digest header."""
        data, headers = self._request(f"/results/{key}/payload")
        expected = headers.get("X-Payload-SHA256")
        if expected and payload_digest(data) != expected:
            raise ServiceError(
                f"payload for {key} failed integrity check in transit"
            )
        return data

    def fetch(self, key: str) -> MixResult:
        """The stored :class:`MixResult` under ``key``."""
        result = pickle.loads(self.fetch_bytes(key))
        if not isinstance(result, MixResult):
            raise ServiceError(
                f"payload for {key} decoded to {type(result).__name__}"
            )
        return result

    # ------------------------------------------------------------------
    # waiting

    def wait_job(
        self, key: str, timeout: float = 300.0, poll_s: float = 0.05
    ) -> dict:
        """Poll until the job reaches a terminal state; returns it.

        A service outage mid-wait (restart, crash, shed) is tolerated
        for as long as the deadline allows: the poll just keeps going,
        re-discovering the URL, until the service answers again.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                status = self.result(key)
            except ServiceUnavailable as exc:
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"job {key[:16]} unreachable past deadline: {exc}"
                    ) from exc
                time.sleep(poll_s)
                self._rediscover()
                continue
            if status.get("state") in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {key[:16]} still {status.get('state')!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll_s)

    def wait_campaign(
        self, cid: str, timeout: float = 600.0, poll_s: float = 0.2
    ) -> dict:
        deadline = time.monotonic() + timeout
        while True:
            try:
                status = self.campaign(cid)
            except ServiceUnavailable as exc:
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"campaign {cid} unreachable past deadline: {exc}"
                    ) from exc
                time.sleep(poll_s)
                self._rediscover()
                continue
            if status.get("complete"):
                return status
            counts = status.get("counts", {})
            if counts.get("failed") and not (
                counts.get("queued") or counts.get("running")
            ):
                raise ServiceError(
                    f"campaign {cid} finished with "
                    f"{counts['failed']} failed job(s)"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"campaign {cid} incomplete after {timeout:.0f}s: {counts}"
                )
            time.sleep(poll_s)

    def run(
        self, config: SystemConfig, apps: Sequence[str],
        timeout: float = 300.0,
    ) -> MixResult:
        """Submit one job, wait for it, fetch the result."""
        status = self.submit(config, apps)
        key = status["key"]
        if status.get("state") != "done":
            status = self.wait_job(key, timeout=timeout)
            if status.get("state") != "done":
                raise ServiceError(
                    f"job {key[:16]} failed: {status.get('detail', '')}"
                )
        return self.fetch(key)


class ServiceRunner(Runner):
    """A :class:`Runner` whose simulations execute on a remote service.

    Keeps the full local memo (so drivers re-reading results pay
    nothing) and the standard provenance records with ``source:
    "service"``; everything else — weighted speedups, baselines,
    figure logic — runs unchanged against remote results.
    """

    def __init__(
        self,
        client: ServiceClient,
        baseline_multiplier: int = 3,
        timeout: float = 600.0,
        poll_s: float = 0.05,
    ) -> None:
        super().__init__(baseline_multiplier=baseline_multiplier)
        self.client = client
        self.timeout = timeout
        self.poll_s = poll_s

    def _cached_run(self, config: SystemConfig, apps: tuple[str, ...]) -> MixResult:
        key = (config.cache_key(), apps)
        result = self._results.get(key)
        if result is not None:
            self._record(config, apps, "memo")
            return result
        start = time.perf_counter()
        result = self.client.run(config, apps, timeout=self.timeout)
        self._results[key] = result
        self._record(config, apps, "service", time.perf_counter() - start)
        return result

    def run_many(self, jobs: Sequence) -> list[MixResult]:
        """Submit the whole batch up front, then wait and fetch.

        Submission order is preserved and results are collected by
        job index, so the output is deterministic and identical to the
        serial path.
        """
        normalized = [(config, tuple(apps)) for config, apps in jobs]
        start = time.perf_counter()
        tickets: dict[tuple, str] = {}
        for config, apps in normalized:
            memo_key = (config.cache_key(), apps)
            if memo_key in self._results or memo_key in tickets:
                continue
            tickets[memo_key] = self.client.submit(config, apps)["key"]
        deadline = time.monotonic() + self.timeout
        for (config, apps) in normalized:
            memo_key = (config.cache_key(), apps)
            if memo_key in self._results:
                self._record(config, apps, "memo")
                continue
            remaining = max(0.1, deadline - time.monotonic())
            status = self.client.wait_job(
                tickets[memo_key], timeout=remaining, poll_s=self.poll_s
            )
            if status.get("state") != "done":
                raise ServiceError(
                    f"job {tickets[memo_key][:16]} failed: "
                    f"{status.get('detail', '')}"
                )
            self._results[memo_key] = self.client.fetch(tickets[memo_key])
            self._record(
                config, apps, "service",
                (time.perf_counter() - start) / max(1, len(tickets)),
            )
        return [
            self._results[(config.cache_key(), apps)]
            for config, apps in normalized
        ]


__all__ = [
    "SERVER_INFO",
    "CircuitBreaker",
    "ServiceClient",
    "ServiceError",
    "ServiceRunner",
    "ServiceUnavailable",
    "discover_url",
    "write_server_info",
]
