"""Typed client for the service API, plus a remote-backed Runner.

:class:`ServiceClient` wraps the HTTP surface with plain methods
(stdlib ``urllib`` only) and verifies every fetched payload against
its ``X-Payload-SHA256`` header before unpickling, so a corrupted
transfer can never masquerade as a result.

:class:`ServiceRunner` is the transparency piece: a drop-in
:class:`~repro.experiments.runner.Runner` whose simulations happen on
the service.  Point any existing figure driver (or ``python -m repro
fig10 --remote-store DIR``) at one and the whole experiment becomes
submit-poll-fetch — bit-identical to a local run, because the service
executes the very same deterministic jobs and ships back the very same
pickled :class:`~repro.experiments.runner.MixResult` bytes.
"""

from __future__ import annotations

import json
import os
import pickle
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Sequence

from repro.experiments.config import SystemConfig
from repro.experiments.runner import MixResult, Runner
from repro.service.jobs import config_to_dict
from repro.service.store import payload_digest

#: Where ``repro serve`` advertises its ephemeral URL, relative to the
#: store directory (see :func:`discover_url`).
SERVER_INFO = "service/server.json"


class ServiceError(RuntimeError):
    """A service interaction failed (HTTP error, timeout, bad payload)."""


def write_server_info(store_dir: str | os.PathLike, url: str) -> Path:
    """Record a running server's URL under its store (for discovery)."""
    path = Path(store_dir).expanduser() / SERVER_INFO
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w") as handle:
        json.dump({"url": url, "pid": os.getpid()}, handle)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def discover_url(store_dir: str | os.PathLike) -> str:
    """The URL advertised by the server owning ``store_dir``."""
    path = Path(store_dir).expanduser() / SERVER_INFO
    try:
        with open(path) as handle:
            return json.load(handle)["url"]
    except (FileNotFoundError, ValueError, KeyError) as exc:
        raise ServiceError(
            f"no running service advertised under {path} "
            "(start one with: repro serve --store ...)"
        ) from exc


class ServiceClient:
    """HTTP client for one service endpoint.

    Pass ``url`` directly, or ``store_dir`` to discover the URL a
    ``repro serve`` process advertised there.
    """

    def __init__(
        self,
        url: str | None = None,
        store_dir: str | os.PathLike | None = None,
        timeout: float = 30.0,
    ) -> None:
        if url is None:
            if store_dir is None:
                raise ValueError("need url or store_dir")
            url = discover_url(store_dir)
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport

    def _request(self, path: str, data: bytes | None = None) -> tuple[bytes, dict]:
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read(), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace").strip()
            raise ServiceError(
                f"{path} -> HTTP {exc.code}: {detail or exc.reason}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"{path} -> {exc.reason}") from exc

    def _json(self, path: str, body: dict | None = None) -> dict:
        data = (
            json.dumps(body, sort_keys=True).encode()
            if body is not None else None
        )
        raw, _ = self._request(path, data)
        return json.loads(raw.decode())

    # ------------------------------------------------------------------
    # endpoints

    def health(self) -> dict:
        return self._json("/healthz")

    def metrics(self) -> str:
        raw, _ = self._request("/metrics")
        return raw.decode()

    def metric(self, name: str) -> float | None:
        """One scraped metric value by its Prometheus name, or None."""
        for line in self.metrics().splitlines():
            if line.startswith(f"{name} "):
                return float(line.split()[1])
        return None

    def submit(self, config: SystemConfig, apps: Sequence[str]) -> dict:
        return self._json(
            "/jobs",
            {"config": config_to_dict(config), "apps": list(apps)},
        )

    def submit_campaign(
        self,
        experiment: str,
        config: SystemConfig | None = None,
        mixes: Sequence[str] | None = None,
    ) -> dict:
        spec: dict = {"experiment": experiment}
        if config is not None:
            spec["config"] = config_to_dict(config)
        if mixes:
            spec["mixes"] = list(mixes)
        return self._json("/jobs", {"campaign": spec})

    def result(self, key: str) -> dict:
        return self._json(f"/results/{key}")

    def campaign(self, cid: str) -> dict:
        return self._json(f"/campaigns/{cid}")

    def manifest(self, rid: str) -> dict:
        return self._json(f"/manifests/{rid}")

    def fetch_bytes(self, key: str) -> bytes:
        """The stored payload bytes, verified against the digest header."""
        data, headers = self._request(f"/results/{key}/payload")
        expected = headers.get("X-Payload-SHA256")
        if expected and payload_digest(data) != expected:
            raise ServiceError(
                f"payload for {key} failed integrity check in transit"
            )
        return data

    def fetch(self, key: str) -> MixResult:
        """The stored :class:`MixResult` under ``key``."""
        result = pickle.loads(self.fetch_bytes(key))
        if not isinstance(result, MixResult):
            raise ServiceError(
                f"payload for {key} decoded to {type(result).__name__}"
            )
        return result

    # ------------------------------------------------------------------
    # waiting

    def wait_job(
        self, key: str, timeout: float = 300.0, poll_s: float = 0.05
    ) -> dict:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.result(key)
            if status.get("state") in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {key[:16]} still {status.get('state')!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll_s)

    def wait_campaign(
        self, cid: str, timeout: float = 600.0, poll_s: float = 0.2
    ) -> dict:
        deadline = time.monotonic() + timeout
        while True:
            status = self.campaign(cid)
            if status.get("complete"):
                return status
            counts = status.get("counts", {})
            if counts.get("failed") and not (
                counts.get("queued") or counts.get("running")
            ):
                raise ServiceError(
                    f"campaign {cid} finished with "
                    f"{counts['failed']} failed job(s)"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"campaign {cid} incomplete after {timeout:.0f}s: {counts}"
                )
            time.sleep(poll_s)

    def run(
        self, config: SystemConfig, apps: Sequence[str],
        timeout: float = 300.0,
    ) -> MixResult:
        """Submit one job, wait for it, fetch the result."""
        status = self.submit(config, apps)
        key = status["key"]
        if status.get("state") != "done":
            status = self.wait_job(key, timeout=timeout)
            if status.get("state") != "done":
                raise ServiceError(
                    f"job {key[:16]} failed: {status.get('detail', '')}"
                )
        return self.fetch(key)


class ServiceRunner(Runner):
    """A :class:`Runner` whose simulations execute on a remote service.

    Keeps the full local memo (so drivers re-reading results pay
    nothing) and the standard provenance records with ``source:
    "service"``; everything else — weighted speedups, baselines,
    figure logic — runs unchanged against remote results.
    """

    def __init__(
        self,
        client: ServiceClient,
        baseline_multiplier: int = 3,
        timeout: float = 600.0,
        poll_s: float = 0.05,
    ) -> None:
        super().__init__(baseline_multiplier=baseline_multiplier)
        self.client = client
        self.timeout = timeout
        self.poll_s = poll_s

    def _cached_run(self, config: SystemConfig, apps: tuple[str, ...]) -> MixResult:
        key = (config.cache_key(), apps)
        result = self._results.get(key)
        if result is not None:
            self._record(config, apps, "memo")
            return result
        start = time.perf_counter()
        result = self.client.run(config, apps, timeout=self.timeout)
        self._results[key] = result
        self._record(config, apps, "service", time.perf_counter() - start)
        return result

    def run_many(self, jobs: Sequence) -> list[MixResult]:
        """Submit the whole batch up front, then wait and fetch.

        Submission order is preserved and results are collected by
        job index, so the output is deterministic and identical to the
        serial path.
        """
        normalized = [(config, tuple(apps)) for config, apps in jobs]
        start = time.perf_counter()
        tickets: dict[tuple, str] = {}
        for config, apps in normalized:
            memo_key = (config.cache_key(), apps)
            if memo_key in self._results or memo_key in tickets:
                continue
            tickets[memo_key] = self.client.submit(config, apps)["key"]
        deadline = time.monotonic() + self.timeout
        for (config, apps) in normalized:
            memo_key = (config.cache_key(), apps)
            if memo_key in self._results:
                self._record(config, apps, "memo")
                continue
            remaining = max(0.1, deadline - time.monotonic())
            status = self.client.wait_job(
                tickets[memo_key], timeout=remaining, poll_s=self.poll_s
            )
            if status.get("state") != "done":
                raise ServiceError(
                    f"job {tickets[memo_key][:16]} failed: "
                    f"{status.get('detail', '')}"
                )
            self._results[memo_key] = self.client.fetch(tickets[memo_key])
            self._record(
                config, apps, "service",
                (time.perf_counter() - start) / max(1, len(tickets)),
            )
        return [
            self._results[(config.cache_key(), apps)]
            for config, apps in normalized
        ]


__all__ = [
    "SERVER_INFO",
    "ServiceClient",
    "ServiceError",
    "ServiceRunner",
    "discover_url",
    "write_server_info",
]
