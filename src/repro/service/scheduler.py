"""Campaign scheduler: the daemon half of simulation-as-a-service.

:class:`CampaignScheduler` accepts job specs — single ``(config,
apps)`` simulations or whole figure/ablation campaigns expanded by
:func:`~repro.service.jobs.campaign_jobs` — and drives them to
completion against a shared :class:`~repro.service.store.ResultStore`.

Design:

* **Exactly-once enqueue.**  Submission is keyed by the store's
  content-addressed key and serialized under one lock: a key already
  present in the store answers ``done`` without touching the queue; a
  key already queued or running answers with the existing ticket; only
  a genuinely new key appends a queue record.  N concurrent cache
  misses for the same key therefore enqueue one job, and its journal
  carries exactly one ``complete`` line.
* **Deterministic, persisted queue.**  Every enqueue appends an
  fsynced JSONL record (the full job spec, so the queue is
  self-contained) to ``service/queue.jsonl``; the worker drains in
  submission order.  On ``resume=True`` the queue is reloaded, jobs
  whose key is already in the store are registered as done, and the
  rest re-queue in their original order — the scheduler process can be
  killed at any instant and restarted without losing or duplicating
  work.
* **The worker contract is the resilience layer.**  Batches execute
  through :func:`~repro.experiments.parallel.run_many` with the
  store as cache, a :class:`~repro.experiments.resilience.RetryPolicy`
  and a crash-safe :class:`~repro.experiments.resilience.BatchJournal`
  — timeouts, bounded retries, pool rebuilds, and journal-backed
  resume all come for free, and results are bit-identical to a local
  ``run_many`` of the same job list because they *are* the same code
  path.
* **Leases supervise the workers** (see
  :mod:`repro.service.supervision`).  Every job entering a batch is
  granted a persisted lease; landing in the store is the heartbeat; a
  :class:`~repro.service.supervision.Supervisor` thread reclaims
  expired leases, kills the wedged pool workers (hang → broken pool →
  the same rebuild/retry path a crash takes), and the scheduler
  requeues reclaimed jobs with their attempt history, bounded by
  ``max_requeues``.  A worker-thread crash flips :attr:`crashed` so
  the API degrades to read-only instead of serving stale promises.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from typing import Sequence

from repro.common.errors import JobFailureError
from repro.experiments.config import SystemConfig
from repro.experiments.parallel import run_many
from repro.experiments.resilience import (
    BatchJournal,
    ResilienceStats,
    RetryPolicy,
)
from repro.faults import FaultPlan
from repro.service.jobs import JobSpec, campaign_id, campaign_jobs
from repro.service.store import ResultStore
from repro.service.supervision import (
    DEFAULT_LEASE_S,
    Lease,
    LeaseLog,
    Supervisor,
    SupervisionStats,
    kill_worker_processes,
)
from repro.telemetry.manifest import RunManifest, RunRecord

log = logging.getLogger("repro.service.scheduler")

#: Queue document schema version.
QUEUE_SCHEMA = 1

#: Job lifecycle states reported by the scheduler and the API.
JOB_STATES = ("queued", "running", "done", "failed")


class _Job:
    """Scheduler-side state of one deduplicated job."""

    __slots__ = (
        "spec", "key", "state", "detail", "source", "wall_s",
        "requeues", "terminal",
    )

    def __init__(self, spec: JobSpec, key: str) -> None:
        self.spec = spec
        self.key = key
        self.state = "queued"
        self.detail = ""
        self.source = ""
        self.wall_s = 0.0
        #: Times this job was reclaimed and put back on the queue.
        self.requeues = 0
        #: A terminal failure (budget exhausted) survives --resume; a
        #: circumstantial one (scheduler crash) re-runs instead.
        self.terminal = False

    def status(self) -> dict:
        doc = {
            "key": self.key,
            "run_id": self.spec.run_id,
            "state": self.state,
            "apps": list(self.spec.apps),
        }
        if self.source:
            doc["source"] = self.source
        if self.detail:
            doc["detail"] = self.detail
        if self.requeues:
            doc["requeues"] = self.requeues
        return doc


class CampaignScheduler:
    """Owns the queue, the worker loop, and campaign bookkeeping.

    Parameters
    ----------
    store:
        The shared result store (also used as the workers' cache).
    workers:
        Process-pool width for batch execution; ``1`` runs batches
        serially inside the scheduler thread.
    policy:
        Fault-tolerance policy for the workers (default: fail fast).
    resume:
        Reload ``service/queue.jsonl`` + ``campaigns.json`` +
        ``leases.jsonl`` and continue an interrupted deployment
        instead of starting fresh (orphaned leases are reclaimed).
    lease_s:
        Heartbeat budget per lease: a batch must land *some* result
        this often or the supervisor declares it wedged.  Must exceed
        the slowest legitimate single job.
    supervise:
        Run the :class:`~repro.service.supervision.Supervisor` thread
        alongside the worker.  ``False`` leaves the lease log active
        but lets tests drive :meth:`Supervisor.tick` manually.
    max_requeues:
        How many times a reclaimed/aborted job may re-queue before it
        is marked failed.
    fault_plan:
        Deterministic fault injection for the batches (chaos testing
        only; also reachable via ``REPRO_FAULT_PLAN`` through the
        ``repro serve`` CLI).
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        policy: RetryPolicy | None = None,
        resume: bool = False,
        lease_s: float = DEFAULT_LEASE_S,
        supervise: bool = True,
        supervisor_poll_s: float = 0.25,
        max_requeues: int = 1,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.workers = workers
        self.policy = policy if policy is not None else RetryPolicy()
        self.lease_s = lease_s
        self.max_requeues = max_requeues
        self.fault_plan = fault_plan
        self.service_dir = store.cache_dir / "service"
        self.service_dir.mkdir(parents=True, exist_ok=True)
        self.queue_path = self.service_dir / "queue.jsonl"
        self.campaigns_path = self.service_dir / "campaigns.json"
        self.journal = BatchJournal(
            self.service_dir / "journal.jsonl", resume=resume
        )
        self.stats = ResilienceStats()
        self.sup_stats = SupervisionStats()
        self.leases = LeaseLog(
            self.service_dir / "leases.jsonl",
            resume=resume,
            stats=self.sup_stats,
            has_result=self.store.has,
        )
        self._cond = threading.Condition(threading.RLock())
        self._jobs: dict[str, _Job] = {}
        self._queue: deque[str] = deque()
        self._campaigns: dict[str, dict] = {}
        self._records: dict[str, RunRecord] = {}
        self._memo: dict[tuple, object] = {}
        self._thread: threading.Thread | None = None
        self._stop = False
        self._crashed = False
        self.supervisor = Supervisor(
            leases=self.leases,
            cond=self._cond,
            has_result=self.store.has,
            on_expired=self._on_leases_expired,
            is_crashed=lambda: self._crashed,
            on_landed=self._on_lease_landed,
            poll_s=supervisor_poll_s,
        )
        self._supervise = supervise
        #: Completed-batch counter (diagnostics / tests).
        self.batches = 0
        if resume:
            self._load()
        else:
            # A fresh deployment truncates the previous queue/campaigns
            # (mirroring BatchJournal's fresh-start semantics).
            self._queue_handle = open(self.queue_path, "w")
            self._write_queue_line({"event": "queue-start", "schema": QUEUE_SCHEMA})
            self._save_campaigns()

    # ------------------------------------------------------------------
    # persistence

    def _write_queue_line(self, record: dict) -> None:
        self._queue_handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._queue_handle.flush()
        os.fsync(self._queue_handle.fileno())

    def _load(self) -> None:
        enqueued: list[tuple[str, JobSpec]] = []
        requeues: dict[str, int] = {}
        shutdown: dict | None = None
        if self.queue_path.exists():
            with open(self.queue_path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        event = record.get("event")
                        if event == "requeue":
                            requeues[record["key"]] = int(
                                record.get("requeues", 0)
                            )
                            continue
                        if event == "shutdown":
                            # Keep the last one; an unclean stop may be
                            # followed by another stop's record.
                            shutdown = record
                            continue
                        if event != "enqueue":
                            continue
                        spec = JobSpec.from_dict(record["job"])
                    except (KeyError, ValueError):
                        # A torn final line from the interrupted run.
                        continue
                    enqueued.append((record["key"], spec))
        self._queue_handle = open(self.queue_path, "a")
        if self.queue_path.exists():
            # A kill -9 can leave the final line unterminated; appending
            # straight onto it would corrupt the next record too.
            tail = self.queue_path.read_bytes()[-1:]
            if tail not in (b"", b"\n"):
                self._queue_handle.write("\n")
                self._queue_handle.flush()
        failed_at_shutdown: dict[str, str] = {}
        if shutdown is not None:
            raw = shutdown.get("failed", {})
            if isinstance(raw, dict):
                failed_at_shutdown = {
                    k: str(v) for k, v in raw.items() if isinstance(k, str)
                }
        for key, spec in enqueued:
            if key in self._jobs:
                continue
            job = _Job(spec, key)
            job.requeues = requeues.get(key, 0)
            self._jobs[key] = job
            if self.store.has(key):
                self._finish(job, "store")
            elif key in failed_at_shutdown:
                # The previous deployment already burned this job's
                # requeue budget; don't silently re-run it.
                job.state = "failed"
                job.detail = failed_at_shutdown[key]
                job.terminal = True
            else:
                self._queue.append(key)
        try:
            with open(self.campaigns_path) as handle:
                doc = json.load(handle)
            self._campaigns = doc.get("campaigns", {})
        except (FileNotFoundError, ValueError):
            self._campaigns = {}
        if self._queue:
            log.info(
                "resumed queue: %d job(s) pending, %d already complete",
                len(self._queue),
                sum(1 for j in self._jobs.values() if j.state == "done"),
            )

    def _save_campaigns(self) -> None:
        doc = {"schema": QUEUE_SCHEMA, "campaigns": self._campaigns}
        tmp = self.campaigns_path.with_name(
            f"{self.campaigns_path.name}.{os.getpid()}.tmp"
        )
        with open(tmp, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.campaigns_path)

    # ------------------------------------------------------------------
    # submission (exactly-once)

    def _finish(self, job: _Job, source: str, wall_s: float = 0.0) -> None:
        job.state = "done"
        job.source = source
        job.wall_s = wall_s
        # No-op if the supervisor already released it on landing.
        self.leases.release(job.key, "done")
        rid = job.spec.run_id
        if rid not in self._records:
            self._records[rid] = RunRecord.from_run(
                job.spec.config, job.spec.apps,
                source=source, wall_time_s=wall_s,
            )

    def submit_job(self, config: SystemConfig, apps: Sequence[str]) -> dict:
        """Submit one job; returns its status ticket.

        The whole check-then-enqueue sequence holds the scheduler lock,
        which is what makes the enqueue exactly-once under concurrent
        submissions of the same key.
        """
        spec = JobSpec.of(config, apps)
        key = self.store.key_for(config, spec.apps)
        with self._cond:
            job = self._jobs.get(key)
            if job is not None and job.state in ("queued", "running", "done"):
                return job.status()
            if job is None and self.store.has(key):
                job = _Job(spec, key)
                self._jobs[key] = job
                self._finish(job, "store")
                return job.status()
            # New key, or an explicit resubmission of a failed job.
            if job is None:
                job = _Job(spec, key)
                self._jobs[key] = job
            job.state = "queued"
            job.detail = ""
            job.terminal = False
            job.requeues = 0
            self._write_queue_line(
                {
                    "event": "enqueue",
                    "key": key,
                    "run": spec.run_id,
                    "job": spec.to_dict(),
                }
            )
            self._queue.append(key)
            self._cond.notify_all()
            return job.status()

    def submit_campaign(
        self,
        experiment: str,
        config: SystemConfig | None = None,
        mixes: Sequence[str] | None = None,
    ) -> dict:
        """Expand a figure/ablation into jobs and submit them all."""
        jobs = campaign_jobs(experiment, config, mixes)
        cid = campaign_id(experiment, jobs)
        keys = [self.store.key_for(c, a) for c, a in jobs]
        with self._cond:
            if cid not in self._campaigns:
                self._campaigns[cid] = {
                    "experiment": experiment,
                    "mixes": list(mixes) if mixes else None,
                    "keys": keys,
                }
                self._save_campaigns()
            for job_config, apps in jobs:
                self.submit_job(job_config, apps)
        return self.campaign_status(cid)

    # ------------------------------------------------------------------
    # queries

    def job_status(self, key: str) -> dict | None:
        with self._cond:
            job = self._jobs.get(key)
            if job is not None:
                return job.status()
        if self.store.has(key):
            return {"key": key, "state": "done", "source": "store"}
        return None

    def campaign_status(self, cid: str) -> dict | None:
        with self._cond:
            campaign = self._campaigns.get(cid)
            if campaign is None:
                return None
            states = {}
            for key in campaign["keys"]:
                job = self._jobs.get(key)
                if job is not None:
                    states[key] = job.state
                else:
                    states[key] = "done" if self.store.has(key) else "unknown"
        counts = {state: 0 for state in (*JOB_STATES, "unknown")}
        for state in states.values():
            counts[state] += 1
        return {
            "campaign": cid,
            "experiment": campaign["experiment"],
            "mixes": campaign["mixes"],
            "jobs": len(campaign["keys"]),
            "counts": {k: v for k, v in counts.items() if v},
            "complete": counts["done"] == len(campaign["keys"]),
            "states": states,
        }

    def campaigns(self) -> dict[str, dict]:
        with self._cond:
            return {cid: dict(c) for cid, c in self._campaigns.items()}

    def record_for(self, rid: str) -> RunRecord | None:
        with self._cond:
            return self._records.get(rid)

    def manifest(self) -> RunManifest:
        """Provenance manifest of everything this scheduler has served."""
        with self._cond:
            records = list(self._records.values())
        extra = {}
        if self.stats.eventful:
            extra["resilience"] = self.stats.as_dict()
        if self.sup_stats.eventful:
            extra["supervision"] = self.sup_stats.as_dict()
        return RunManifest(
            records=records,
            workers=self.workers,
            wall_time_s=sum(r.wall_time_s for r in records),
            extra=extra,
        )

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue) + sum(
                1 for j in self._jobs.values() if j.state == "running"
            )

    # ------------------------------------------------------------------
    # the worker loop

    def _requeue(self, job: _Job, why: str) -> None:
        """Put a reclaimed/aborted job back on the queue (caller holds lock)."""
        job.requeues += 1
        job.state = "queued"
        job.detail = why
        self.leases.release(job.key, "requeued")
        self.sup_stats.requeues += 1
        self._write_queue_line(
            {"event": "requeue", "key": job.key, "requeues": job.requeues}
        )
        self._queue.append(job.key)

    def _run_batch(self, keys: list[str]) -> None:
        jobs = [
            (self._jobs[key].spec.config, self._jobs[key].spec.apps)
            for key in keys
        ]
        start = time.perf_counter()
        try:
            run_many(
                jobs,
                parallelism=self.workers,
                cache=self.store,
                memo=self._memo,
                policy=self.policy,
                journal=self.journal,
                stats=self.stats,
                fault_plan=self.fault_plan,
            )
        except JobFailureError as exc:
            detail = str(exc)
            requeued = 0
            with self._cond:
                for key in keys:
                    job = self._jobs[key]
                    if self.store.has(key):
                        if job.state != "done":
                            self._finish(job, "service")
                    elif job.requeues < self.max_requeues:
                        self._requeue(job, detail)
                        requeued += 1
                    else:
                        job.state = "failed"
                        job.detail = detail
                        job.terminal = True
                        self.leases.release(key, "failed")
                if requeued:
                    self._cond.notify_all()
            log.warning(
                "batch of %d job(s) aborted (%d requeued): %s",
                len(keys), requeued, detail,
            )
            return
        wall = time.perf_counter() - start
        per_job = wall / len(keys) if keys else 0.0
        with self._cond:
            for key in keys:
                job = self._jobs[key]
                if job.state != "done":
                    self._finish(job, "service", per_job)

    def _loop(self) -> None:
        try:
            self._loop_inner()
        except Exception:
            # Anything escaping the batch handler is a scheduler crash:
            # flag it so the API degrades to read-only and the
            # supervisor reclaims every outstanding lease (nothing will
            # ever land again from this thread).
            log.exception("scheduler worker thread crashed")
            with self._cond:
                self._crashed = True
                self.sup_stats.scheduler_crashes += 1
                self._cond.notify_all()

    def _loop_inner(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait(0.5)
                if self._stop and not self._queue:
                    return
                keys = list(self._queue)
                self._queue.clear()
                holder = f"batch-{self.batches + 1}"
                for key in keys:
                    job = self._jobs[key]
                    job.state = "running"
                    self.leases.grant(
                        key,
                        job.spec.run_id,
                        holder,
                        attempt=job.requeues,
                        lease_s=self.lease_s,
                    )
            self._run_batch(keys)
            with self._cond:
                self.batches += 1
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # supervision callbacks (see repro.service.supervision)

    def _on_lease_landed(self, key: str) -> None:
        """Supervisor saw this job's result land (called under the lock)."""
        job = self._jobs.get(key)
        if job is not None and job.state == "running":
            self._finish(job, "service")

    def _on_leases_expired(self, leases: list[Lease]) -> None:
        """Expired-lease reclamation: kill wedged workers, requeue jobs."""
        if self.workers > 1 and not self._crashed:
            killed = kill_worker_processes()
            if killed:
                self.sup_stats.worker_kills += killed
                log.warning(
                    "killed %d wedged worker process(es) after lease expiry",
                    killed,
                )
        with self._cond:
            for lease in leases:
                job = self._jobs.get(lease.key)
                if job is None or job.state != "running":
                    continue
                if self.store.has(lease.key):
                    self._finish(job, "service")
                elif self._crashed or job.requeues >= self.max_requeues:
                    job.state = "failed"
                    if self._crashed:
                        job.detail = "scheduler crashed with the job in flight"
                    else:
                        job.detail = (
                            f"lease expired after {job.requeues} requeue(s)"
                        )
                        job.terminal = True
                else:
                    # Lease already reclaimed by the supervisor, so only
                    # the queue bookkeeping is left to do here.
                    job.requeues += 1
                    job.state = "queued"
                    job.detail = "lease expired; requeued"
                    self.sup_stats.requeues += 1
                    self._write_queue_line(
                        {
                            "event": "requeue",
                            "key": job.key,
                            "requeues": job.requeues,
                        }
                    )
                    self._queue.append(job.key)
            self._cond.notify_all()

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def healthy(self) -> bool:
        """Whether the scheduler can still accept and run work."""
        return not self._crashed and not self._stop

    def state_counts(self) -> dict[str, int]:
        """Job-state histogram for health reporting."""
        with self._cond:
            counts: dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def start(self) -> "CampaignScheduler":
        if self._thread is None:
            self._stop = False
            self._thread = threading.Thread(
                target=self._loop, name="repro-scheduler", daemon=True
            )
            self._thread.start()
            if self._supervise:
                self.supervisor.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        clean = True
        if self._thread is not None:
            self._thread.join(timeout)
            clean = not self._thread.is_alive()
            if clean:
                self._thread = None
        self.supervisor.stop()
        with self._cond:
            # The shutdown record tells the next --resume exactly which
            # work finished (or terminally failed), so a stop() that
            # timed out with jobs marked in-flight doesn't cause them
            # to re-run if their results actually landed.
            done = sorted(
                j.key for j in self._jobs.values() if j.state == "done"
            )
            failed = {
                j.key: j.detail
                for j in sorted(
                    (
                        j for j in self._jobs.values()
                        if j.state == "failed" and j.terminal
                    ),
                    key=lambda j: j.key,
                )
            }
            for key in list(self.leases.active()):
                self.leases.release(key, "shutdown")
            if clean or done or failed:
                self._write_queue_line(
                    {
                        "event": "shutdown",
                        "clean": clean,
                        "done": done,
                        "failed": failed,
                    }
                )
        if clean:
            # A wedged worker thread may still be writing; leave the
            # handles open rather than hand it a closed file.
            self.journal.close()
            self.leases.close()
            if not self._queue_handle.closed:
                self._queue_handle.close()
        else:
            log.warning(
                "scheduler thread did not stop within %.1fs; "
                "shutdown record written, handles left open", timeout or 0.0
            )

    def drain(self, timeout: float | None = None) -> bool:
        """Block until nothing is queued or running; True on success."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while True:
                busy = bool(self._queue) or any(
                    j.state in ("queued", "running")
                    for j in self._jobs.values()
                )
                if not busy:
                    return True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining if remaining is not None else 0.5)

    def __enter__(self) -> "CampaignScheduler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


__all__ = ["JOB_STATES", "QUEUE_SCHEMA", "CampaignScheduler"]
