"""CLI verbs for the service: serve / submit / fetch / campaign / cache.

These register as subcommands of the main ``python -m repro`` parser
(see :mod:`repro.experiments.cli`), so the whole serving story is
operable without writing Python::

    repro serve --store /var/repro-store --workers 8 --resume
    repro submit --store /var/repro-store --experiment fig10 --mixes 4-MEM
    repro campaign wait <id> --store /var/repro-store
    repro fetch <key> --store /var/repro-store --out result.pkl
    repro cache stats /var/repro-store

``repro cache`` works on any ``--cache-dir`` ever written by the
experiment engine (the store is a superset of the cache format), so
operators can inspect, verify, and garbage-collect on-disk results —
including the previously ever-growing ``quarantine/`` — with no
service running at all.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import types

from repro.experiments.config import SystemConfig
from repro.experiments.resilience import RetryPolicy
from repro.faults import FAULT_PLAN_ENV, plan_from_env
from repro.service.api import AdmissionPolicy, DEFAULT_LRU_ENTRIES, make_server
from repro.service.client import ServiceClient, ServiceError, write_server_info
from repro.service.scheduler import CampaignScheduler
from repro.service.store import ResultStore
from repro.service.supervision import DEFAULT_LEASE_S

#: Subcommand names this module owns (dispatched from the main CLI).
SERVICE_COMMANDS = ("serve", "submit", "fetch", "campaign", "cache")


def _add_endpoint_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--url", default=None, metavar="URL",
        help="service endpoint, e.g. http://127.0.0.1:8472",
    )
    group.add_argument(
        "--store", default=None, metavar="PATH",
        help="served store directory; the URL is discovered from the "
        "server.json the running server wrote there",
    )


def _client(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient(url=args.url, store_dir=args.store)


def add_service_parsers(sub: argparse._SubParsersAction) -> None:
    """Register the service subcommands on the main CLI's subparsers."""
    # Imported lazily: this function runs from build_parser, after
    # repro.experiments.cli has fully loaded (module-level would be a
    # circular import).
    from repro.experiments.cli import _add_config_arguments

    p = sub.add_parser(
        "serve",
        help="run the simulation service (scheduler + HTTP result API)",
    )
    p.add_argument(
        "--store", required=True, metavar="PATH",
        help="result-store directory (shared with any --cache-dir user)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="listen port (default 0: pick an ephemeral port and "
        "advertise it in <store>/service/server.json)",
    )
    p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for cache-miss simulations",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="reload the persisted queue/campaigns and finish "
        "interrupted work instead of starting a fresh deployment",
    )
    p.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="per-job retry budget for the workers (default 1)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget for the workers",
    )
    p.add_argument(
        "--lru", type=int, default=DEFAULT_LRU_ENTRIES, metavar="N",
        help="in-memory warm-path cache capacity, in results",
    )
    p.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="admission limit: submits past this queue depth are shed "
        "with 429 + Retry-After (default 64)",
    )
    p.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_S, metavar="SECONDS",
        help="per-job lease heartbeat budget; a batch landing no "
        "result for this long is declared wedged and reclaimed",
    )
    p.add_argument(
        "--max-requeues", type=int, default=1, metavar="N",
        help="times a reclaimed job may requeue before failing "
        "(default 1)",
    )
    p.add_argument(
        "--no-supervise", action="store_true",
        help="disable the lease supervisor thread (debugging only)",
    )

    p = sub.add_parser(
        "submit", help="submit a job or a whole campaign to a service"
    )
    _add_endpoint_arguments(p)
    what = p.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--experiment", default=None, metavar="NAME",
        help="submit a whole figure/ablation campaign (e.g. fig10)",
    )
    what.add_argument(
        "--mix", default=None, metavar="NAME",
        help="submit one workload mix (e.g. 4-MEM)",
    )
    what.add_argument(
        "--apps", nargs="+", default=None, metavar="APP",
        help="submit one explicit app list (e.g. mcf ammp)",
    )
    p.add_argument(
        "--mixes", nargs="+", default=None,
        help="mix subset for --experiment campaigns",
    )
    p.add_argument(
        "--wait", action="store_true",
        help="block until the submission completes",
    )
    p.add_argument(
        "--poll-timeout", type=float, default=600.0, metavar="SECONDS",
        help="how long --wait polls before giving up",
    )
    _add_config_arguments(p)

    p = sub.add_parser("fetch", help="fetch one stored result by key")
    p.add_argument("key", help="content-addressed result key")
    _add_endpoint_arguments(p)
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the raw pickled MixResult to PATH instead of "
        "printing a summary",
    )

    p = sub.add_parser("campaign", help="inspect or await a campaign")
    p.add_argument("action", choices=("status", "wait"))
    p.add_argument("campaign_id")
    _add_endpoint_arguments(p)
    p.add_argument(
        "--poll-timeout", type=float, default=600.0, metavar="SECONDS",
        help="how long 'wait' polls before giving up",
    )

    p = sub.add_parser(
        "cache",
        help="inspect/verify/garbage-collect an on-disk result store",
    )
    p.add_argument("action", choices=("stats", "verify", "gc"))
    p.add_argument("store_dir", metavar="PATH")


# ----------------------------------------------------------------------
# command implementations


def _cmd_serve(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    policy = RetryPolicy(retries=args.retries, timeout_s=args.timeout)
    fault_plan = plan_from_env()
    if fault_plan is not None:
        print(
            f"[fault plan loaded from ${FAULT_PLAN_ENV}: "
            f"{len(fault_plan.specs)} spec(s), seed {fault_plan.seed}]",
            flush=True,
        )
    scheduler = CampaignScheduler(
        store,
        workers=args.workers,
        policy=policy,
        resume=args.resume,
        lease_s=args.lease,
        supervise=not args.no_supervise,
        max_requeues=args.max_requeues,
        fault_plan=fault_plan,
    )
    server = make_server(
        scheduler,
        host=args.host,
        port=args.port,
        lru_entries=args.lru,
        admission=AdmissionPolicy(max_queue_depth=args.max_queue),
    )
    write_server_info(args.store, server.url)
    scheduler.start()
    print(
        f"[serving on {server.url} "
        f"(store: {store.cache_dir}, workers: {args.workers}, "
        f"resume: {args.resume})]",
        flush=True,
    )

    def _terminate(signum: int, frame: types.FrameType | None) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("[shutting down]", flush=True)
    finally:
        server.server_close()
        scheduler.stop()
        print(
            "[supervision] " + json.dumps(
                scheduler.sup_stats.as_dict(), sort_keys=True
            ),
            flush=True,
        )
    return 0


def _submit_config(args: argparse.Namespace) -> SystemConfig:
    from repro.experiments.cli import _config_from_args

    return _config_from_args(args)


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    config = _submit_config(args)
    if args.experiment:
        status = client.submit_campaign(
            args.experiment, config=config, mixes=args.mixes
        )
        if args.wait and not status.get("complete"):
            status = client.wait_campaign(
                status["campaign"], timeout=args.poll_timeout
            )
        status = dict(status)
        status.pop("states", None)  # keep the CLI line readable
        print(json.dumps(status, sort_keys=True))
        return 0
    if args.mix:
        from repro.workloads.mixes import MIXES

        if args.mix not in MIXES:
            print(f"error: unknown mix {args.mix!r}", file=sys.stderr)
            return 2
        apps = list(MIXES[args.mix].apps)
    else:
        apps = list(args.apps)
    status = client.submit(config, apps)
    if args.wait and status.get("state") != "done":
        status = client.wait_job(status["key"], timeout=args.poll_timeout)
    print(json.dumps(status, sort_keys=True))
    return 0 if status.get("state") in ("done", "queued", "running") else 1


def _cmd_fetch(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.out:
        data = client.fetch_bytes(args.key)
        with open(args.out, "wb") as handle:
            handle.write(data)
        print(f"[{len(data)} bytes written to {args.out}]")
        return 0
    result = client.fetch(args.key)
    print(
        json.dumps(
            {
                "key": args.key,
                "apps": list(result.apps),
                "throughput_ipc": result.throughput,
                "ipcs": result.ipcs,
                "cycles": result.core.cycles,
                "row_buffer_miss_rate": result.row_buffer_miss_rate,
            },
            sort_keys=True,
        )
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.action == "wait":
        status = client.wait_campaign(
            args.campaign_id, timeout=args.poll_timeout
        )
    else:
        status = client.campaign(args.campaign_id)
    status = dict(status)
    status.pop("states", None)
    print(json.dumps(status, sort_keys=True))
    return 0 if status.get("counts", {}).get("failed", 0) == 0 else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    store = ResultStore(args.store_dir)
    if args.action == "stats":
        print(json.dumps(store.stats().as_dict(), sort_keys=True))
        return 0
    if args.action == "verify":
        report = store.verify()
        print(json.dumps(report.as_dict(), sort_keys=True))
        return 0 if report.clean else 1
    report = store.gc()
    print(json.dumps(report.as_dict(), sort_keys=True))
    return 0


def run_service_command(args: argparse.Namespace) -> int:
    """Dispatch one of :data:`SERVICE_COMMANDS` (from the main CLI)."""
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "fetch":
            return _cmd_fetch(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "cache":
            return _cmd_cache(args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    raise AssertionError(f"not a service command: {args.command}")


__all__ = ["SERVICE_COMMANDS", "add_service_parsers", "run_service_command"]
