"""Content-addressed, versioned result store shared by the service.

:class:`ResultStore` generalizes
:class:`~repro.experiments.parallel.ResultCache` from a private runner
cache into the artifact store that schedulers and API workers share:

* **Content-addressed keys** — an entry's name is the SHA-256 of
  ``(schema version, config.cache_key(), apps)``; the same digest the
  cache has always used, so a store opened over an existing
  ``--cache-dir`` serves every previously cached result.
* **Integrity index** — ``index.json`` records each entry's payload
  SHA-256 and size.  Reads by key verify bytes against the index
  before serving; a mismatch quarantines the entry (reusing the
  cache's quarantine machinery) and reads as a miss, so a flipped bit
  on disk can never reach an HTTP client.
* **Atomic compare-and-publish writes** — all writes go through
  :meth:`ResultCache.publish_path` (fsynced temp file, first-writer-
  wins ``os.replace``), so concurrent schedulers/threads/processes
  cannot tear an entry, and the index update is folded in under a
  process-local lock.
* **Operator tooling** — :meth:`verify` re-hashes every entry against
  the index, :meth:`gc` drains the quarantine and stale temp files and
  prunes orphaned index rows, :meth:`reindex` rebuilds the index from
  the payloads.  The ``repro cache`` CLI drives all three.

The index is maintained by whichever process owns the store (the
service); plain :class:`ResultCache` writers sharing the directory
don't update it, and the store heals: an unindexed entry is validated
by unpickling on first read and indexed then.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.experiments.config import SystemConfig
from repro.experiments.parallel import (
    CACHE_SCHEMA_VERSION,
    STALE_TMP_SECONDS,
    ResultCache,
)
from repro.experiments.runner import MixResult

#: Index document schema version.
INDEX_SCHEMA = 1


def payload_digest(data: bytes) -> str:
    """Integrity digest of one stored payload."""
    return hashlib.sha256(data).hexdigest()


def job_key(
    config: SystemConfig,
    apps: Sequence[str],
    version: int = CACHE_SCHEMA_VERSION,
) -> str:
    """The content-addressed key of one job, without a store instance.

    Exactly :meth:`ResultStore.key_for` (the digest the cache has
    always used); exposed at module level so the typed client can
    derive idempotency keys for submits before any store exists on its
    side of the wire.
    """
    raw = (version, config.cache_key(), tuple(apps))
    return hashlib.sha256(repr(raw).encode()).hexdigest()


@dataclass
class StoreStats:
    """What :meth:`ResultStore.stats` reports (and ``repro cache stats``)."""

    entries: int = 0
    bytes: int = 0
    indexed: int = 0
    quarantined: int = 0
    quarantined_bytes: int = 0
    stale_tmp: int = 0

    def as_dict(self) -> dict:
        return {
            "entries": self.entries,
            "bytes": self.bytes,
            "indexed": self.indexed,
            "quarantined": self.quarantined,
            "quarantined_bytes": self.quarantined_bytes,
            "stale_tmp": self.stale_tmp,
        }


@dataclass
class VerifyReport:
    """Outcome of a full-store integrity pass."""

    ok: int = 0
    healed: int = 0  # unindexed entries validated and indexed
    corrupt: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)  # indexed, no file

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.missing

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "healed": self.healed,
            "corrupt": sorted(self.corrupt),
            "missing": sorted(self.missing),
        }


@dataclass
class GCReport:
    """What one :meth:`ResultStore.gc` pass removed."""

    quarantined_removed: int = 0
    tmp_removed: int = 0
    index_pruned: int = 0

    def as_dict(self) -> dict:
        return {
            "quarantined_removed": self.quarantined_removed,
            "tmp_removed": self.tmp_removed,
            "index_pruned": self.index_pruned,
        }


class ResultStore(ResultCache):
    """A :class:`ResultCache` with an integrity index and key-level API.

    Everything the cache guarantees still holds (atomic fsynced
    publishes, quarantine of undecodable entries, version-stamped
    digests); the store adds byte-level reads/writes by key — what an
    HTTP service needs — and digest verification on every keyed read.
    """

    INDEX_NAME = "index.json"

    def __init__(
        self, cache_dir: str | os.PathLike, version: int = CACHE_SCHEMA_VERSION
    ) -> None:
        super().__init__(cache_dir, version)
        self._lock = threading.RLock()
        self._entries: dict[str, dict] = {}
        self._load_index()

    # ------------------------------------------------------------------
    # keys and paths

    def key_for(self, config: SystemConfig, apps: Sequence[str]) -> str:
        """The content-addressed key (hex digest) of one job."""
        return self.path_for(config, apps).stem

    def path_for_key(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed store key {key!r}")
        return self.cache_dir / f"{key}.pkl"

    def has(self, key: str) -> bool:
        return self.path_for_key(key).exists()

    def keys(self) -> list[str]:
        """Keys of every entry currently on disk, sorted."""
        return sorted(p.stem for p in self.cache_dir.glob("*.pkl"))

    # ------------------------------------------------------------------
    # index persistence

    @property
    def index_path(self) -> Path:
        return self.cache_dir / self.INDEX_NAME

    def _load_index(self) -> None:
        try:
            with open(self.index_path) as handle:
                doc = json.load(handle)
        except (FileNotFoundError, ValueError):
            self._entries = {}
            return
        if doc.get("schema") != INDEX_SCHEMA:
            self._entries = {}
            return
        entries = doc.get("entries", {})
        self._entries = entries if isinstance(entries, dict) else {}

    def _save_index(self) -> None:
        doc = {
            "schema": INDEX_SCHEMA,
            "entries": {k: self._entries[k] for k in sorted(self._entries)},
        }
        tmp = self.index_path.with_name(
            f"{self.index_path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        with open(tmp, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.index_path)

    def _index_entry(self, key: str, data: bytes) -> None:
        self._entries[key] = {
            "sha256": payload_digest(data),
            "size": len(data),
        }
        self._save_index()

    def index_record(self, key: str) -> dict | None:
        """The index row (sha256, size) for ``key``, if indexed."""
        record = self._entries.get(key)
        return dict(record) if record is not None else None

    # ------------------------------------------------------------------
    # reads

    def get_bytes(self, key: str) -> bytes | None:
        """Raw payload bytes for ``key``, integrity-checked.

        An indexed entry must hash to its recorded digest; an unindexed
        one (written by a plain :class:`ResultCache`) must unpickle to a
        valid :class:`MixResult`, after which it is indexed so later
        reads pay only the hash.  Any failure quarantines the entry and
        reads as a miss — corruption never propagates to a caller.
        """
        path = self.path_for_key(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:  # pragma: no cover - unreadable file
            self._quarantine(path, f"{type(exc).__name__}: {exc}")
            return None
        with self._lock:
            record = self._entries.get(key)
            if record is not None:
                if payload_digest(data) != record.get("sha256"):
                    del self._entries[key]
                    self._save_index()
                    self._quarantine(path, "payload digest mismatch")
                    return None
            else:
                if not self._decodes(data):
                    self._quarantine(path, "unindexed entry failed to decode")
                    return None
                self._index_entry(key, data)
        self.hits += 1
        return data

    def get_by_key(self, key: str) -> MixResult | None:
        """Decode the stored :class:`MixResult` under ``key``."""
        data = self.get_bytes(key)
        if data is None:
            return None
        result = pickle.loads(data)
        if not self._valid_payload(result):
            self._quarantine(
                self.path_for_key(key),
                f"payload is {type(result).__name__}, not a MixResult",
            )
            self.hits -= 1
            return None
        return result

    @classmethod
    def _decodes(cls, data: bytes) -> bool:
        try:
            return cls._valid_payload(pickle.loads(data))
        except Exception:
            return False

    # ------------------------------------------------------------------
    # writes

    def publish(self, key: str, data: bytes) -> bool:
        """Compare-and-publish ``data`` under ``key``; True if installed.

        Losing the publish race is not an error — the winner's bytes
        are the same deterministic pickle — but either way the index
        ends up describing what is on disk.
        """
        path = self.path_for_key(key)
        with self._lock:
            published = self.publish_path(path, data)
            if published:
                self._index_entry(key, data)
            elif key not in self._entries:
                try:
                    self._index_entry(key, path.read_bytes())
                except OSError:  # pragma: no cover - entry vanished
                    pass
        return published

    def put(
        self, config: SystemConfig, apps: Sequence[str], result: MixResult
    ) -> bool:
        return self.publish(
            self.key_for(config, apps),
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # ------------------------------------------------------------------
    # maintenance

    def stats(self) -> StoreStats:
        stats = StoreStats()
        for path in sorted(self.cache_dir.glob("*.pkl")):
            stats.entries += 1
            try:
                stats.bytes += path.stat().st_size
            except OSError:  # pragma: no cover - racing unlink
                pass
        with self._lock:
            stats.indexed = len(self._entries)
        if self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.iterdir()):
                stats.quarantined += 1
                try:
                    stats.quarantined_bytes += path.stat().st_size
                except OSError:  # pragma: no cover - racing unlink
                    pass
        stats.stale_tmp = len(sorted(self.cache_dir.glob("*.tmp")))
        return stats

    def integrity(self) -> dict:
        """Cheap integrity summary for health/readiness reporting.

        Counts only — no hashing, no decoding — so ``/healthz`` can
        include it on every poll: entries on disk vs. indexed, the
        quarantine population, and the corrupt-read counter this
        process has accumulated.  A full :meth:`verify` remains the
        authoritative (and expensive) check.
        """
        with self._lock:
            indexed = len(self._entries)
        entries = len(sorted(self.cache_dir.glob("*.pkl")))
        quarantined = (
            len(sorted(self.quarantine_dir.iterdir()))
            if self.quarantine_dir.is_dir()
            else 0
        )
        return {
            "entries": entries,
            "indexed": indexed,
            "quarantined": quarantined,
            "corrupt_reads": self.corrupt,
        }

    def verify(self) -> VerifyReport:
        """Re-hash every entry against the index; quarantine mismatches."""
        report = VerifyReport()
        with self._lock:
            on_disk = {p.stem: p for p in sorted(self.cache_dir.glob("*.pkl"))}
            for key in sorted(set(self._entries) | set(on_disk)):
                path = on_disk.get(key)
                if path is None:
                    report.missing.append(key)
                    del self._entries[key]
                    continue
                try:
                    data = path.read_bytes()
                except OSError:  # pragma: no cover - unreadable file
                    report.corrupt.append(key)
                    self._quarantine(path, "unreadable during verify")
                    continue
                record = self._entries.get(key)
                if record is None:
                    if self._decodes(data):
                        self._entries[key] = {
                            "sha256": payload_digest(data),
                            "size": len(data),
                        }
                        report.healed += 1
                    else:
                        report.corrupt.append(key)
                        self._quarantine(path, "undecodable during verify")
                    continue
                if payload_digest(data) != record.get("sha256"):
                    report.corrupt.append(key)
                    del self._entries[key]
                    self._quarantine(path, "digest mismatch during verify")
                else:
                    report.ok += 1
            self._save_index()
        return report

    def reindex(self) -> int:
        """Rebuild the index from the payloads; returns entry count."""
        with self._lock:
            self._entries = {}
            for path in sorted(self.cache_dir.glob("*.pkl")):
                try:
                    data = path.read_bytes()
                except OSError:  # pragma: no cover - racing unlink
                    continue
                if self._decodes(data):
                    self._entries[path.stem] = {
                        "sha256": payload_digest(data),
                        "size": len(data),
                    }
            self._save_index()
            return len(self._entries)

    def gc(self) -> GCReport:
        """Drain the quarantine, remove temp orphans, prune the index.

        Quarantined entries exist only so repeated reads don't re-pay
        the decode failure; once an operator has inspected (or stopped
        caring about) them they are dead weight — before this existed
        ``quarantine/`` grew silently forever.
        """
        report = GCReport()
        if self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.iterdir()):
                try:
                    path.unlink()
                    report.quarantined_removed += 1
                except OSError:  # pragma: no cover - racing unlink
                    pass
        # Only *stale* temp files are orphans.  A young tmp belongs to
        # a writer between fsync and os.link; unlinking it under that
        # writer turns its atomic publish into a FileNotFoundError.
        now = time.time()  # repro: allow(DET002) file-age housekeeping, not simulation
        for tmp in sorted(self.cache_dir.glob("*.tmp")):
            try:
                if now - tmp.stat().st_mtime > STALE_TMP_SECONDS:
                    tmp.unlink()
                    report.tmp_removed += 1
            except OSError:  # pragma: no cover - racing unlink
                pass
        with self._lock:
            live = {p.stem for p in sorted(self.cache_dir.glob("*.pkl"))}
            orphans = [k for k in self._entries if k not in live]
            for key in orphans:
                del self._entries[key]
            if orphans:
                self._save_index()
            report.index_pruned = len(orphans)
        return report


__all__ = [
    "GCReport",
    "INDEX_SCHEMA",
    "ResultStore",
    "StoreStats",
    "VerifyReport",
    "job_key",
    "payload_digest",
]
