"""Cache hierarchy: L1/L2/L3 set-associative caches, MSHRs, TLBs.

Implements the three-level hierarchy of Table 1 (64 KB L1s, 512 KB L2,
4 MB L3, 64 B lines, write-back/write-allocate) plus the pieces the
paper's mechanisms depend on: MSHR files (16/cache) that bound and
merge outstanding misses, and "perfect level" switches used by the
CPI-breakdown methodology of Section 4.2.
"""

from repro.cache.cache import AccessResult, SetAssocCache
from repro.cache.hierarchy import (
    PENDING,
    RETRY,
    HierarchyParams,
    MemoryHierarchy,
)
from repro.cache.mshr import MSHRFile, MSHRStatus
from repro.cache.tlb import TLB

__all__ = [
    "AccessResult",
    "HierarchyParams",
    "MSHRFile",
    "MSHRStatus",
    "MemoryHierarchy",
    "PENDING",
    "RETRY",
    "SetAssocCache",
    "TLB",
]
