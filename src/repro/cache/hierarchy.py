"""The three-level cache hierarchy glueing the SMT core to DRAM.

Timing model (Table 1): L1D hit = 1 cycle, L2 = 10 cycles, L3 = 20
cycles, all pipelined; a load that misses everywhere pays
``1 + 10 + 20`` cycles of lookup before its DRAM request leaves the
chip.  Misses are tracked in a 16-entry MSHR file that merges
same-line misses and applies back-pressure (``RETRY``) when full.

The ``perfect_l1/l2/l3`` switches implement the CPI-breakdown
methodology of Section 4.2: a *perfect* level always hits, so e.g.
``perfect_l3=True`` is the paper's "infinitely large L3 cache" system
used as the reference point of Figure 3.

Simplifications (documented in DESIGN.md): write-backs to a level that
no longer holds the line are dropped rather than allocated; store
misses that find the MSHR file full skip their line fetch (counted in
``store_bypasses``); instruction fetch misses are modelled
stochastically inside the core rather than through this hierarchy
(SPEC CPU2000 instruction working sets are small).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.common.types import MemAccessType, MemRequest
from repro.cache.cache import SetAssocCache
from repro.cache.mshr import MSHRFile
from repro.cache.prefetch import PrefetchQuota, StridePrefetcher
from repro.cache.tlb import TLB
from repro.dram.system import MemorySystem


class _Sentinel:
    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Returned by :meth:`MemoryHierarchy.load` when the access missed and
#: the callback will be invoked once data arrives.
PENDING = _Sentinel("PENDING")
#: Returned when the MSHR file is full; the core must retry later.
RETRY = _Sentinel("RETRY")


@dataclass(frozen=True)
class HierarchyParams:
    """Sizes and latencies of the hierarchy (Table 1 defaults).

    ``scale`` divides every cache size (keeping associativity and line
    size); it is used together with the workload footprint scale to run
    the paper's experiments at tractable instruction budgets while
    preserving the footprint-to-capacity ratios.
    """

    line_bytes: int = 64
    l1_size: int = 64 * 1024
    l1_assoc: int = 2
    l1_latency: int = 1
    l2_size: int = 512 * 1024
    l2_assoc: int = 2
    l2_latency: int = 10
    l3_size: int = 4 * 1024 * 1024
    l3_assoc: int = 4
    l3_latency: int = 20
    mshr_entries: int = 16
    tlb_entries: int = 128
    tlb_page_bytes: int = 8192
    tlb_penalty: int = 30
    perfect_l1: bool = False
    perfect_l2: bool = False
    perfect_l3: bool = False
    #: Enable the stride prefetcher (Table 1's prefetch MSHRs).  Off
    #: by default: the workload profiles are calibrated without it.
    prefetch: bool = False
    prefetch_degree: int = 2
    prefetch_mshr_entries: int = 4
    scale: int = 1

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ConfigError(f"scale must be >= 1, got {self.scale}")
        for name in ("l1_latency", "l2_latency", "l3_latency"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")

    def scaled_size(self, size: int, assoc: int) -> int:
        """Divide a cache size by ``scale`` without going below one set."""
        return max(size // self.scale, assoc * self.line_bytes)


@dataclass
class HierarchySnapshot:
    """Point-in-time summary of hierarchy statistics."""

    l1d_hit_rate: float = 0.0
    l2_hit_rate: float = 0.0
    l3_hit_rate: float = 0.0
    dtlb_hit_rate: float = 0.0
    loads: int = 0
    stores: int = 0
    dram_reads_issued: int = 0
    mshr_merges: int = 0
    mshr_rejections: int = 0
    store_bypasses: int = 0
    prefetch_fills: int = 0
    prefetch_dram_reads: int = 0
    dram_loads_per_thread: dict[int, int] = field(default_factory=dict)


class MemoryHierarchy:
    """L1D + L2 + L3 + TLB in front of a :class:`MemorySystem`.

    The instruction-side L1 is modelled inside the core (see module
    docstring); this class serves data accesses only.
    """

    def __init__(
        self,
        params: HierarchyParams,
        event_queue: EventQueue,
        memory: MemorySystem | None,
        translator=None,
        telemetry=None,
    ) -> None:
        if memory is None and not params.perfect_l3:
            raise ConfigError("a MemorySystem is required unless perfect_l3 is set")
        self.params = params
        self.event_queue = event_queue
        self.memory = memory
        #: Optional :class:`repro.os.vm.VirtualMemory`; when set, the
        #: addresses the core presents are virtual and are translated
        #: here (the TLB models the cost of exactly this translation).
        self.translator = translator
        p = params
        self.l1d = SetAssocCache(
            "L1D", p.scaled_size(p.l1_size, p.l1_assoc), p.l1_assoc, p.line_bytes
        )
        self.l2 = SetAssocCache(
            "L2", p.scaled_size(p.l2_size, p.l2_assoc), p.l2_assoc, p.line_bytes
        )
        self.l3 = SetAssocCache(
            "L3", p.scaled_size(p.l3_size, p.l3_assoc), p.l3_assoc, p.line_bytes
        )
        tracer = telemetry.tracer if telemetry is not None else None
        if tracer is not None:
            self.mshr = MSHRFile(
                p.mshr_entries, tracer=tracer,
                clock=lambda: event_queue.now,
            )
        else:
            self.mshr = MSHRFile(p.mshr_entries)
        self.dtlb = TLB(p.tlb_entries, p.tlb_page_bytes, p.tlb_penalty)
        if p.prefetch and not p.perfect_l1:
            self.prefetcher = StridePrefetcher(
                degree=p.prefetch_degree,
                lines_per_page=max(1, p.tlb_page_bytes // p.line_bytes),
            )
            self.prefetch_quota = PrefetchQuota(p.prefetch_mshr_entries)
        else:
            self.prefetcher = None
            self.prefetch_quota = None
        self.prefetch_fills = 0
        self.prefetch_dram_reads = 0
        self.loads = 0
        self.stores = 0
        self.store_bypasses = 0
        self.dram_reads_issued = 0
        self._dram_loads_per_thread: dict[int, int] = {}
        # Per-thread outstanding *distinct line* misses, used by the
        # DG / DWarn (L1-level) and Fetch-Stall (L2-level) policies.
        self._l1_miss_lines: dict[int, int] = {}
        self._l2_miss_lines: dict[int, int] = {}
        #: Monotonic change counter for ``_l2_miss_lines``.  The fast
        #: engine's stalled-window kernel uses it to tell, in O(1),
        #: whether an event batch touched the fetch policies' gating
        #: state (see repro.engine.fast).
        self.l2_miss_version = 0

    # ------------------------------------------------------------------
    # fetch-policy state queries

    def outstanding_l1_misses(self, thread_id: int) -> int:
        """Distinct lines this thread is waiting on (missed L1)."""
        return self._l1_miss_lines.get(thread_id, 0)

    def outstanding_l2_misses(self, thread_id: int) -> int:
        """Distinct lines this thread is waiting on that missed L2."""
        return self._l2_miss_lines.get(thread_id, 0)

    # ------------------------------------------------------------------
    # core-facing access interface

    def load(
        self,
        addr: int,
        thread_id: int,
        now: int,
        rob_occupancy: int = 0,
        iq_occupancy: int = 0,
        callback=None,
    ):
        """Start a load; returns a completion cycle, PENDING, or RETRY.

        ``callback(finish_cycle)`` fires when a PENDING load's data
        arrives.  RETRY means the MSHR file is full and nothing was
        changed -- the core should re-issue the load later.
        """
        self.loads += 1
        penalty = self.dtlb.access(addr)
        if self.translator is not None:
            addr = self.translator.translate(thread_id, addr)
        t0 = now + penalty
        if self.params.perfect_l1:
            return t0 + self.params.l1_latency
        line = addr // self.params.line_bytes
        if self.mshr.pending(line):
            self.mshr.register(line, thread_id, callback)
            return PENDING
        if self.l1d.probe(line):
            self.l1d.access(line)
            return t0 + self.params.l1_latency
        if self.mshr.available == 0:
            self.loads -= 1  # not an architected access yet; will retry
            self.mshr.rejections += 1
            return RETRY
        hit, writeback = self.l1d.access(line)
        assert not hit
        if writeback is not None:
            self.l2.mark_dirty_if_present(writeback)
        self.mshr.register(line, thread_id, callback)
        self._l1_miss_lines[thread_id] = self._l1_miss_lines.get(thread_id, 0) + 1
        probe_at = t0 + self.params.l1_latency + self.params.l2_latency
        self.event_queue.schedule(
            probe_at, self._probe_l2, line, thread_id, rob_occupancy, iq_occupancy
        )
        if self.prefetcher is not None:
            self._train_prefetcher(thread_id, line, now)
        return PENDING

    def store(
        self,
        addr: int,
        thread_id: int,
        now: int,
        rob_occupancy: int = 0,
        iq_occupancy: int = 0,
    ) -> int:
        """Perform a store; returns its (posted) completion cycle.

        Stores retire into the store buffer immediately; the returned
        cycle only orders the store in the pipeline.  Misses still
        fetch the line (write-allocate) and generate DRAM traffic.
        """
        self.stores += 1
        penalty = self.dtlb.access(addr)
        if self.translator is not None:
            addr = self.translator.translate(thread_id, addr)
        t0 = now + penalty
        done = t0 + self.params.l1_latency
        if self.params.perfect_l1:
            return done
        line = addr // self.params.line_bytes
        if self.mshr.pending(line):
            # Line already being fetched: piggyback the write intent.
            self.l1d.mark_dirty_if_present(line)
            return done
        if self.l1d.probe(line):
            self.l1d.access(line, write=True)
            return done
        if self.mshr.available == 0:
            # Write buffer absorbs the store without a fetch.
            self.store_bypasses += 1
            hit, writeback = self.l1d.access(line, write=True)
            if writeback is not None:
                self.l2.mark_dirty_if_present(writeback)
            return done
        hit, writeback = self.l1d.access(line, write=True)
        assert not hit
        if writeback is not None:
            self.l2.mark_dirty_if_present(writeback)
        self.mshr.register(line, thread_id, None)
        self._l1_miss_lines[thread_id] = self._l1_miss_lines.get(thread_id, 0) + 1
        probe_at = t0 + self.params.l1_latency + self.params.l2_latency
        self.event_queue.schedule(
            probe_at, self._probe_l2, line, thread_id, rob_occupancy, iq_occupancy
        )
        return done

    # ------------------------------------------------------------------
    # functional warming (sampled engine's fast-forward path)

    def warm_access(self, addr: int, thread_id: int, write: bool = False) -> bool:
        """Advance cache/TLB/row-buffer state for one access, timelessly.

        Walks the same TLB -> translate -> L1D -> L2 -> L3 -> DRAM-row
        path as :meth:`load`/:meth:`store`, using the stat-less
        ``touch`` variants, so the warmed contents after a fast-forward
        region are what timed accesses would have built.  Returns
        whether the access missed all cache levels and reached DRAM —
        the sampled engine uses the per-region miss counts as the
        covariate of its gap-CPI predictor.  Differences from the timed
        path, by design:

        * no statistics, no events, no MSHR allocation -- lines already
          pending in the MSHR (left over from the previous detailed
          window) are skipped, exactly as a merged miss would be;
        * the whole miss path resolves instantly (simulated time does
          not advance during fast-forward);
        * L3 write-backs are dropped instead of queued to DRAM -- only
          the victim bank's row buffer would change, and the row state
          is warmed by the demand stream anyway.
        """
        self.dtlb.touch(addr)
        if self.translator is not None:
            addr = self.translator.translate(thread_id, addr)
        if self.params.perfect_l1:
            return False
        line = addr // self.params.line_bytes
        if self.mshr.pending(line):
            if write:
                self.l1d.mark_dirty_if_present(line)
            return False
        hit, writeback = self.l1d.touch(line, write=write)
        if writeback is not None:
            self.l2.mark_dirty_if_present(writeback)
        if hit or self.params.perfect_l2:
            return False
        hit, writeback = self.l2.touch(line)
        if writeback is not None:
            self.l3.mark_dirty_if_present(writeback)
        if hit or self.params.perfect_l3:
            return False
        hit, _writeback = self.l3.touch(line)  # dirty victims dropped
        if hit:
            return False
        self.memory.warm_line(line)
        return True

    # ------------------------------------------------------------------
    # miss path (event-driven)

    def _probe_l2(
        self, line: int, thread_id: int, rob_occupancy: int, iq_occupancy: int
    ) -> None:
        now = self.event_queue.now
        if self.params.perfect_l2:
            self._complete(line, now)
            return
        hit, writeback = self.l2.access(line)
        if writeback is not None:
            self.l3.mark_dirty_if_present(writeback)
        if hit:
            self._complete(line, now)
            return
        self.mshr.mark_dram(line)  # past the L2: long-latency for Fetch-Stall
        self._l2_miss_lines[thread_id] = self._l2_miss_lines.get(thread_id, 0) + 1
        self.l2_miss_version += 1
        self.event_queue.schedule(
            now + self.params.l3_latency,
            self._probe_l3,
            line,
            thread_id,
            rob_occupancy,
            iq_occupancy,
        )

    def _probe_l3(
        self, line: int, thread_id: int, rob_occupancy: int, iq_occupancy: int
    ) -> None:
        now = self.event_queue.now
        if self.params.perfect_l3:
            self._complete(line, now)
            return
        hit, writeback = self.l3.access(line)
        if writeback is not None:
            self.memory.write(writeback, thread_id)
        if hit:
            self._complete(line, now)
            return
        self.dram_reads_issued += 1
        self._dram_loads_per_thread[thread_id] = (
            self._dram_loads_per_thread.get(thread_id, 0) + 1
        )
        request = MemRequest(
            line,
            MemAccessType.READ,
            thread_id,
            arrival=now,
            rob_occupancy=rob_occupancy,
            iq_occupancy=iq_occupancy,
            callback=self._on_dram_fill,
        )
        self.memory.submit(request)

    def _on_dram_fill(self, finish: int, request: MemRequest) -> None:
        self._complete(request.line_addr, finish)

    def _complete(self, line: int, finish: int) -> None:
        initiator = self.mshr.initiator(line)
        if self.mshr.went_to_dram(line):
            self._decrement(self._l2_miss_lines, initiator)
            self.l2_miss_version += 1
        self._decrement(self._l1_miss_lines, initiator)
        self.mshr.complete(line, finish)

    @staticmethod
    def _decrement(counter: dict[int, int], thread_id: int) -> None:
        remaining = counter.get(thread_id, 0) - 1
        if remaining > 0:
            counter[thread_id] = remaining
        else:
            counter.pop(thread_id, None)

    # ------------------------------------------------------------------
    # prefetch path (parallel to the demand miss path; bounded by the
    # small prefetch MSHR quota, never blocking demand traffic)

    def _train_prefetcher(self, thread_id: int, line: int, now: int) -> None:
        for target in self.prefetcher.train(thread_id, line):
            if self.l1d.probe(target) or self.mshr.pending(target):
                continue
            if not self.prefetch_quota.try_acquire(target):
                continue
            probe_at = now + self.params.l1_latency + self.params.l2_latency
            self.event_queue.schedule(
                probe_at, self._prefetch_probe_l2, target, thread_id
            )

    def _prefetch_probe_l2(self, line: int, thread_id: int) -> None:
        now = self.event_queue.now
        if self.params.perfect_l2:
            self._prefetch_fill(line)
            return
        hit, writeback = self.l2.access(line)
        if writeback is not None:
            self.l3.mark_dirty_if_present(writeback)
        if hit:
            self._prefetch_fill(line)
            return
        self.event_queue.schedule(
            now + self.params.l3_latency, self._prefetch_probe_l3,
            line, thread_id,
        )

    def _prefetch_probe_l3(self, line: int, thread_id: int) -> None:
        if self.params.perfect_l3:
            self._prefetch_fill(line)
            return
        hit, writeback = self.l3.access(line)
        if writeback is not None:
            self.memory.write(writeback, thread_id)
        if hit:
            self._prefetch_fill(line)
            return
        self.prefetch_dram_reads += 1
        request = MemRequest(
            line,
            MemAccessType.READ,
            thread_id,
            arrival=self.event_queue.now,
            callback=lambda t, r: self._prefetch_fill(r.line_addr),
        )
        self.memory.submit(request)

    def _prefetch_fill(self, line: int) -> None:
        hit, writeback = self.l1d.access(line)
        if writeback is not None:
            self.l2.mark_dirty_if_present(writeback)
        self.prefetch_fills += 1
        self.prefetch_quota.release(line)

    # ------------------------------------------------------------------
    # statistics

    def snapshot(self) -> HierarchySnapshot:
        return HierarchySnapshot(
            l1d_hit_rate=self.l1d.stats.rate,
            l2_hit_rate=self.l2.stats.rate,
            l3_hit_rate=self.l3.stats.rate,
            dtlb_hit_rate=self.dtlb.stats.rate,
            loads=self.loads,
            stores=self.stores,
            dram_reads_issued=self.dram_reads_issued,
            mshr_merges=self.mshr.merges,
            mshr_rejections=self.mshr.rejections,
            store_bypasses=self.store_bypasses,
            prefetch_fills=self.prefetch_fills,
            prefetch_dram_reads=self.prefetch_dram_reads,
            dram_loads_per_thread=dict(self._dram_loads_per_thread),
        )

    def reset_stats(self) -> None:
        """Clear counters after warm-up; cache contents are kept."""
        from repro.common.stats import RateCounter

        self.l1d.stats = RateCounter()
        self.l2.stats = RateCounter()
        self.l3.stats = RateCounter()
        self.dtlb.stats = RateCounter()
        self.loads = 0
        self.stores = 0
        self.store_bypasses = 0
        self.dram_reads_issued = 0
        self._dram_loads_per_thread = {}
        self.mshr.merges = 0
        self.mshr.rejections = 0
        self.mshr.allocations = 0
        self.prefetch_fills = 0
        self.prefetch_dram_reads = 0
        if self.memory is not None:
            self.memory.reset_stats()
