"""A simple fully-associative LRU TLB (Table 1: 128-entry I/D TLBs).

Misses add a fixed refill penalty to the access that triggered them;
page-table walks are not modelled beyond that fixed cost.  Virtual
pages are mapped to physical pages sequentially per thread ("bin
hopping", which the paper also uses), so the TLB model only needs page
numbers.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import ConfigError
from repro.common.stats import RateCounter


class TLB:
    """Fully-associative translation buffer with true LRU replacement."""

    def __init__(
        self,
        entries: int = 128,
        page_bytes: int = 8192,
        miss_penalty: int = 30,
    ) -> None:
        if entries < 1:
            raise ConfigError(f"TLB entries must be >= 1, got {entries}")
        if page_bytes < 1 or page_bytes & (page_bytes - 1):
            raise ConfigError(f"page_bytes must be a power of two, got {page_bytes}")
        if miss_penalty < 0:
            raise ConfigError(f"miss_penalty must be >= 0, got {miss_penalty}")
        self.entries = entries
        self.page_bytes = page_bytes
        self.miss_penalty = miss_penalty
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.stats = RateCounter()

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns the added penalty (0 on a hit)."""
        page = addr // self.page_bytes
        pages = self._pages
        if page in pages:
            pages.move_to_end(page)
            self.stats.record(True)
            return 0
        self.stats.record(False)
        pages[page] = None
        if len(pages) > self.entries:
            pages.popitem(last=False)
        return self.miss_penalty

    def touch(self, addr: int) -> None:
        """Functional warming: :meth:`access` without stats or penalty.

        Same LRU movement and refill, so the resident set after a
        fast-forward region matches what timed accesses would have
        built; used by the sampled engine.
        """
        page = addr // self.page_bytes
        pages = self._pages
        if page in pages:
            pages.move_to_end(page)
            return
        pages[page] = None
        if len(pages) > self.entries:
            pages.popitem(last=False)

    @property
    def resident(self) -> int:
        return len(self._pages)
