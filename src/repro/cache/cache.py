"""A set-associative, write-back, write-allocate cache with true LRU.

Operates on cache-line addresses (byte address // line size); the
hierarchy does the division once so every level shares the same line
granularity (64 B, Table 1).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.common.errors import ConfigError
from repro.common.stats import RateCounter


class AccessResult(NamedTuple):
    """Outcome of one cache access.

    ``writeback`` is the line address of a dirty victim evicted to make
    room (``None`` when the access hit or the victim was clean).
    """

    hit: bool
    writeback: int | None


class SetAssocCache:
    """True-LRU set-associative cache over line addresses.

    Each set is a list of ``[tag, dirty]`` entries ordered LRU-first;
    associativities in this project are small (2/4-way) so list scans
    beat fancier structures.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 64,
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ConfigError("cache size, associativity and line size must be > 0")
        if size_bytes % (assoc * line_bytes):
            raise ConfigError(
                f"{name}: size {size_bytes} not a multiple of "
                f"assoc*line ({assoc}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]
        self.stats = RateCounter()

    # ------------------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def probe(self, line_addr: int) -> bool:
        """Check presence without touching LRU state or statistics."""
        tag = line_addr // self.num_sets
        return any(entry[0] == tag for entry in self._sets[self.set_index(line_addr)])

    def access(self, line_addr: int, write: bool = False) -> AccessResult:
        """Perform one access, allocating on miss (write-allocate).

        On a hit the line moves to MRU (and picks up the dirty bit for
        writes).  On a miss the line is inserted and the LRU victim
        evicted; a dirty victim's address is returned for write-back.
        """
        index = self.set_index(line_addr)
        tag = line_addr // self.num_sets
        entries = self._sets[index]
        for i, entry in enumerate(entries):
            if entry[0] == tag:
                del entries[i]
                entries.append(entry)
                if write:
                    entry[1] = True
                self.stats.record(True)
                return AccessResult(True, None)
        self.stats.record(False)
        writeback = None
        if len(entries) >= self.assoc:
            victim_tag, victim_dirty = entries.pop(0)
            if victim_dirty:
                writeback = victim_tag * self.num_sets + index
        entries.append([tag, write])
        return AccessResult(False, writeback)

    def touch(self, line_addr: int, write: bool = False) -> AccessResult:
        """Functional warming: :meth:`access` without statistics.

        Same LRU movement, allocation, and write-back surfacing as
        ``access`` so warmed contents are exactly what a timed access
        would have left behind -- but the hit/miss counters are not
        recorded, keeping measured-window hit rates uncontaminated.
        Used by the sampled engine's fast-forward path.
        """
        index = self.set_index(line_addr)
        tag = line_addr // self.num_sets
        entries = self._sets[index]
        for i, entry in enumerate(entries):
            if entry[0] == tag:
                del entries[i]
                entries.append(entry)
                if write:
                    entry[1] = True
                return AccessResult(True, None)
        writeback = None
        if len(entries) >= self.assoc:
            victim_tag, victim_dirty = entries.pop(0)
            if victim_dirty:
                writeback = victim_tag * self.num_sets + index
        entries.append([tag, write])
        return AccessResult(False, writeback)

    def mark_dirty_if_present(self, line_addr: int) -> bool:
        """Absorb a write-back from an upper level without allocating.

        Returns whether the line was present (and is now dirty).  Lost
        write-backs to absent lines are an accepted simplification --
        with an inclusive hierarchy they are rare.
        """
        index = self.set_index(line_addr)
        tag = line_addr // self.num_sets
        for entry in self._sets[index]:
            if entry[0] == tag:
                entry[1] = True
                return True
        return False

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line (returns whether it was present)."""
        index = self.set_index(line_addr)
        tag = line_addr // self.num_sets
        entries = self._sets[index]
        for i, entry in enumerate(entries):
            if entry[0] == tag:
                del entries[i]
                return True
        return False

    # ------------------------------------------------------------------

    @property
    def lines_resident(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssocCache({self.name}, {self.size_bytes // 1024}KB, "
            f"{self.assoc}-way)"
        )
