"""Structural cache pre-warming.

The paper fast-forwards each application to a SimPoint and warms the
caches during the fast-forward, so measurement starts from steady
state.  A pure-Python simulator cannot afford hundreds of millions of
warm-up instructions; instead, this module installs the steady-state
cache contents *structurally*: every workload region whose (scaled)
footprint can plausibly be cache-resident has its lines inserted into
the appropriate levels before the run starts.

Insertion order matters: colder (larger) regions go in first and hot
regions last, and threads are interleaved chunk-wise, so the final LRU
state approximates what competitive sharing would have produced.  A
short instruction warm-up (to settle TLBs, row buffers and MSHR
pipelines) is still recommended on top.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cache.hierarchy import MemoryHierarchy
from repro.workloads.profile import Region

#: Insert this many lines from one thread before rotating to the next.
_CHUNK = 64


def _capacity_lines(cache) -> int:
    return cache.num_sets * cache.assoc


def _interleaved_with_thread(
    chunks: Sequence[list[range]],
) -> Iterable[tuple[int, int]]:
    """Yield (thread index, line) pairs, ``_CHUNK`` lines at a time."""
    iters = [iter(_flatten(r)) for r in chunks]
    live = list(range(len(iters)))
    while live:
        next_live = []
        for idx in live:
            it = iters[idx]
            emitted = 0
            for line in it:
                yield idx, line
                emitted += 1
                if emitted >= _CHUNK:
                    next_live.append(idx)
                    break
        live = next_live


def _flatten(ranges: list[range]) -> Iterable[int]:
    for r in ranges:
        yield from r


def prewarm(
    hierarchy: MemoryHierarchy,
    thread_footprints: Sequence[list[tuple[int, int, Region]]],
) -> int:
    """Install steady-state contents for the given per-thread footprints.

    ``thread_footprints[i]`` is thread *i*'s list of
    ``(base_line, size_lines, region)`` tuples, as returned by
    :meth:`repro.workloads.generator.SyntheticStream.footprint`.
    Returns the number of lines inserted (for tests/diagnostics).

    Regions larger than the L3 are skipped entirely -- they are
    DRAM-resident and their steady-state cache share is transient.
    Regions are classified by the deepest level that could hold them
    outright; lines are inserted into that level and every level
    below it, colder classes first, hot (L1-resident) classes last.
    """
    if hierarchy.params.perfect_l1:
        return 0
    l1_cap = _capacity_lines(hierarchy.l1d)
    l2_cap = _capacity_lines(hierarchy.l2)
    l3_cap = _capacity_lines(hierarchy.l3)

    # classes[0] = L3-resident, classes[1] = L2-resident, classes[2] = L1.
    classes: list[list[list[range]]] = [
        [[] for _ in thread_footprints] for _ in range(3)
    ]
    for tid, footprint in enumerate(thread_footprints):
        for base_line, size, _region in footprint:
            lines = range(base_line, base_line + size)
            if size <= l1_cap:
                classes[2][tid].append(lines)
            elif size <= l2_cap:
                classes[1][tid].append(lines)
            elif size <= l3_cap:
                classes[0][tid].append(lines)
            # larger than L3: DRAM-resident, skip

    inserted = 0
    perfect_l2 = hierarchy.params.perfect_l2
    perfect_l3 = hierarchy.params.perfect_l3
    translator = hierarchy.translator
    line_bytes = hierarchy.params.line_bytes
    for class_idx, per_thread in enumerate(classes):
        for tid, line in _interleaved_with_thread(per_thread):
            if translator is not None:
                line = translator.translate(tid, line * line_bytes) // line_bytes
            if not perfect_l3 and not perfect_l2:
                hierarchy.l3.access(line)
            if class_idx >= 1 and not perfect_l2:
                hierarchy.l2.access(line)
            if class_idx >= 2:
                hierarchy.l1d.access(line)
            inserted += 1

    # Statistics polluted by the structural fill are meaningless.
    hierarchy.reset_stats()
    return inserted
